"""The control-plane observability facade — and its free no-op twin.

Every instrumentation point in the orchestrator, planner, journal and
API layers talks to one of two objects with the same surface:

- :class:`ControlPlaneObservability` — the real thing: a
  :class:`~repro.obs.span.Tracer`, lazily-created per-stage
  :class:`~repro.obs.histogram.LatencyHistogram` instances (every
  finished span auto-feeds the histogram named after it), plus plain
  counters and gauges.
- :class:`NoopObservability` — the default.  A *shared singleton*
  (:data:`NOOP_OBS`) whose every span-producing method returns the one
  shared :data:`NOOP_SPAN` and whose every recording method is a bare
  ``pass`` — the disabled path allocates nothing and takes no locks,
  so instrumentation can stay unconditional at most call sites.

Call sites that would otherwise pay for argument construction (an
extra ``perf_counter()``, a dict of attributes) guard on
``obs.enabled`` first; everything else calls straight through.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.histogram import DEFAULT_BUCKETS_MS, LatencyHistogram
from repro.obs.span import Span, SpanContext, Tracer


class _Timed:
    """Context manager: histogram the wall-clock time of a block."""

    __slots__ = ("_obs", "_name", "_label", "_start")

    def __init__(self, obs: "ControlPlaneObservability", name: str, label: str) -> None:
        self._obs = obs
        self._name = name
        self._label = label

    def __enter__(self) -> "_Timed":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._obs.observe(
            self._name, (perf_counter() - self._start) * 1000.0, label=self._label
        )
        return False


class _TimedLock:
    """Context manager: acquire ``lock`` while histogramming both the
    wait for it and the time it is held (``<name>.wait`` /
    ``<name>.hold``)."""

    __slots__ = ("_obs", "_lock", "_name", "_label", "_acquired")

    def __init__(
        self,
        obs: "ControlPlaneObservability",
        lock: "threading.Lock",
        name: str,
        label: str,
    ) -> None:
        self._obs = obs
        self._lock = lock
        self._name = name
        self._label = label

    def __enter__(self) -> "_TimedLock":
        requested = perf_counter()
        self._lock.acquire()
        self._acquired = perf_counter()
        self._obs.observe(
            self._name + ".wait",
            (self._acquired - requested) * 1000.0,
            label=self._label,
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        released = perf_counter()
        self._lock.release()
        self._obs.observe(
            self._name + ".hold",
            (released - self._acquired) * 1000.0,
            label=self._label,
        )
        return False


class ControlPlaneObservability:
    """Tracing + histograms + counters/gauges behind one object.

    Args:
        trace_capacity: Finished-trace (and slow-span) retention.
        slow_span_ms: Spans at least this slow enter the slow-op audit
            buffer with full ancestry.
        buckets_ms: Histogram bucket bounds (defaults to
            :data:`~repro.obs.histogram.DEFAULT_BUCKETS_MS`).
    """

    enabled = True

    def __init__(
        self,
        trace_capacity: int = 256,
        slow_span_ms: float = 250.0,
        buckets_ms: Optional[Sequence[float]] = None,
    ) -> None:
        self.slow_span_ms = float(slow_span_ms)
        self._buckets_ms = tuple(buckets_ms or DEFAULT_BUCKETS_MS)
        self.tracer = Tracer(
            capacity=trace_capacity,
            slow_threshold_ms=self.slow_span_ms,
            on_finish=self._span_finished,
        )
        self._lock = threading.Lock()
        self._hists: Dict[Tuple[str, str], LatencyHistogram] = {}
        self._counters: Dict[Tuple[str, str], float] = {}
        self._gauges: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        label: str = "",
        **attributes: Any,
    ) -> Span:
        """Open a span (finish it, or use it as a context manager)."""
        return self.tracer.start_span(
            name, parent=parent, label=label, attributes=attributes or None
        )

    def _span_finished(self, span: Span) -> None:
        # Every finished span feeds the histogram of its name — the
        # per-stage latency distributions fall out of tracing for free.
        self.observe(span.name, span.duration_ms or 0.0, label=span.label)

    def traces(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        return self.tracer.traces(limit)

    def slow_spans(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        return self.tracer.slow_spans(limit)

    # ------------------------------------------------------------------
    # Histograms / counters / gauges
    # ------------------------------------------------------------------
    def histogram(self, name: str, label: str = "") -> LatencyHistogram:
        key = (name, label)
        # Lock-free fast path: histograms are created once and never
        # removed, and dict reads are atomic under the GIL — every
        # observe() after the first skips the registry lock.
        hist = self._hists.get(key)
        if hist is not None:
            return hist
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = LatencyHistogram(name, label=label, buckets_ms=self._buckets_ms)
                self._hists[key] = hist
        return hist

    def observe(self, name: str, value_ms: float, label: str = "") -> None:
        self.histogram(name, label).observe(value_ms)

    def counter_add(self, name: str, amount: float = 1.0, label: str = "") -> None:
        key = (name, label)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def gauge_set(self, name: str, value: float, label: str = "") -> None:
        with self._lock:
            self._gauges[(name, label)] = float(value)

    def timed(self, name: str, label: str = "") -> _Timed:
        """Histogram a block's duration without creating a span."""
        return _Timed(self, name, label)

    def timed_lock(
        self, lock: "threading.Lock", name: str, label: str = ""
    ) -> _TimedLock:
        """Acquire ``lock`` for a block, histogramming wait and hold."""
        return _TimedLock(self, lock, name, label)

    # ------------------------------------------------------------------
    # Read side (export + breakdown tables)
    # ------------------------------------------------------------------
    def histograms(self) -> Dict[Tuple[str, str], LatencyHistogram]:
        with self._lock:
            return dict(self._hists)

    def counters(self) -> Dict[Tuple[str, str], float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[Tuple[str, str], float]:
        with self._lock:
            return dict(self._gauges)

    def merged_histogram(self, name: str) -> Optional[LatencyHistogram]:
        """One histogram folding every label of ``name`` together
        (e.g. ``driver.prepare`` across all domains)."""
        parts = [h for (n, _), h in self.histograms().items() if n == name]
        if not parts:
            return None
        merged = LatencyHistogram(name, buckets_ms=self._buckets_ms)
        for part in parts:
            part.merge_into(merged)
        return merged

    def stage_summary(self, names: Sequence[str]) -> Dict[str, Dict[str, Any]]:
        """Per-stage latency breakdown: ``name -> summary dict`` (labels
        merged), skipping stages with no observations."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in names:
            merged = self.merged_histogram(name)
            if merged is not None and merged.count:
                out[name] = merged.to_dict()
        return out

    def status(self) -> Dict[str, Any]:
        with self._lock:
            histograms = len(self._hists)
            counters = len(self._counters)
            gauges = len(self._gauges)
        return {
            "enabled": True,
            "histograms": histograms,
            "counters": counters,
            "gauges": gauges,
            "tracer": self.tracer.status(),
        }


class _NoopSpan:
    """The one span of the disabled path: inert, reusable, shared."""

    __slots__ = ()
    context: Optional[SpanContext] = None
    name = ""
    label = ""
    status = "noop"
    error: Optional[str] = None
    duration_ms: Optional[float] = None

    def finish(self, status: str = "ok", error: Optional[str] = None) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {}


class _NoopContext:
    """Shared do-nothing context manager for ``timed`` on the no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()
_NOOP_CONTEXT = _NoopContext()


class NoopObservability:
    """Same surface as :class:`ControlPlaneObservability`, zero cost.

    All span factories return the shared :data:`NOOP_SPAN`; nothing is
    allocated, locked, or timed.  One shared instance
    (:data:`NOOP_OBS`) serves every disabled orchestrator/planner in
    the process.
    """

    enabled = False
    slow_span_ms: Optional[float] = None
    tracer = None

    def span(self, name, parent=None, label="", **attributes) -> _NoopSpan:
        return NOOP_SPAN

    def traces(self, limit=None) -> List[Dict[str, Any]]:
        return []

    def slow_spans(self, limit=None) -> List[Dict[str, Any]]:
        return []

    def histogram(self, name, label="") -> None:
        return None

    def observe(self, name, value_ms, label="") -> None:
        pass

    def counter_add(self, name, amount=1.0, label="") -> None:
        pass

    def gauge_set(self, name, value, label="") -> None:
        pass

    def timed(self, name, label="") -> _NoopContext:
        return _NOOP_CONTEXT

    def timed_lock(self, lock, name, label=""):
        return lock  # still a context manager — correctness without timing

    def histograms(self) -> Dict[Tuple[str, str], LatencyHistogram]:
        return {}

    def counters(self) -> Dict[Tuple[str, str], float]:
        return {}

    def gauges(self) -> Dict[Tuple[str, str], float]:
        return {}

    def merged_histogram(self, name) -> None:
        return None

    def stage_summary(self, names) -> Dict[str, Dict[str, Any]]:
        return {}

    def status(self) -> Dict[str, Any]:
        return {"enabled": False}


NOOP_OBS = NoopObservability()


def default_observability() -> "ControlPlaneObservability | NoopObservability":
    """The process default: enabled only when ``REPRO_OBS_ENABLED=1``
    (how CI's concurrency-repeat and soak jobs switch it on without
    threading a config through every harness)."""
    if os.environ.get("REPRO_OBS_ENABLED", "") == "1":
        return ControlPlaneObservability()
    return NOOP_OBS


__all__ = [
    "ControlPlaneObservability",
    "NOOP_OBS",
    "NOOP_SPAN",
    "NoopObservability",
    "default_observability",
]
