"""Fixed-bucket wall-clock latency histograms.

Prometheus-style cumulative buckets over a fixed bound list.
``observe`` is a single lock-free deque append — the write path sits
directly on the install hot path (token-grant thunks, span finishes on
planner worker threads), where a contended lock acquisition costs a
futex wait that gets amplified by the GIL into pipeline-visible
latency.  Pending observations are folded into the bucket counts
lazily, under the lock, whenever a read-side method runs (or when the
pending queue grows past a backstop).  Percentiles (p50/p95/p99) are
estimated by linear interpolation inside the bucket that crosses the
target rank, which is exact enough for the "where did the
milliseconds go" question this subsystem answers; ``max`` is tracked
exactly.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: A writer that finds this many undrained observations folds them
#: itself (keeps memory bounded if nothing ever reads the histogram).
_DRAIN_BACKSTOP = 4096

#: Default bounds (milliseconds): sub-ms resolution for the in-process
#: simulator drivers up through multi-second southbound stalls.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class LatencyHistogram:
    """One fixed-bucket histogram (thread-safe).

    Attributes:
        name: Metric name, dotted (``"driver.prepare"``).
        label: Optional sub-label (the domain, for driver ops).
    """

    def __init__(
        self,
        name: str,
        label: str = "",
        buckets_ms: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.label = label
        self.bounds: Tuple[float, ...] = tuple(
            sorted(buckets_ms if buckets_ms is not None else DEFAULT_BUCKETS_MS)
        )
        # counts[i] = observations <= bounds[i] (non-cumulative here;
        # the final slot is the +Inf overflow bucket).
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum_ms = 0.0
        self._max_ms = 0.0
        self._min_ms = float("inf")
        # Lock-free write side: deque.append is atomic under the GIL.
        self._pending: deque = deque()
        self._lock = threading.Lock()

    def observe(self, value_ms: float) -> None:
        """Record one observation (lock-free; folded on read)."""
        self._pending.append(value_ms)
        if len(self._pending) >= _DRAIN_BACKSTOP:
            self._drain()

    def _drain(self) -> None:
        """Fold pending observations into the bucket counts.

        Safe against concurrent writers: popleft is atomic, so an
        append racing the drain either gets folded now or stays queued
        for the next one.
        """
        pending = self._pending
        if not pending:
            return
        with self._lock:
            while True:
                try:
                    value_ms = float(pending.popleft())
                except IndexError:
                    break
                self._counts[bisect_left(self.bounds, value_ms)] += 1
                self._count += 1
                self._sum_ms += value_ms
                if value_ms > self._max_ms:
                    self._max_ms = value_ms
                if value_ms < self._min_ms:
                    self._min_ms = value_ms

    @property
    def count(self) -> int:
        self._drain()
        return self._count

    @property
    def sum_ms(self) -> float:
        self._drain()
        return self._sum_ms

    @property
    def max_ms(self) -> float:
        self._drain()
        return self._max_ms

    @property
    def min_ms(self) -> float:
        self._drain()
        return self._min_ms

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound_ms, count)`` pairs, +Inf last."""
        self._drain()
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``) in milliseconds."""
        self._drain()
        with self._lock:
            counts = list(self._counts)
            total = self._count
            max_ms = self._max_ms
        if total == 0:
            return 0.0
        rank = q * total
        running = 0.0
        lower = 0.0
        for bound, count in zip(self.bounds, counts):
            if running + count >= rank:
                if count == 0:
                    return min(bound, max_ms)
                fraction = (rank - running) / count
                return min(lower + (bound - lower) * fraction, max_ms)
            running += count
            lower = bound
        return max_ms  # rank falls in the +Inf overflow bucket

    def to_dict(self) -> Dict[str, Any]:
        self._drain()
        with self._lock:
            counts = list(self._counts)
            count = self._count
            sum_ms = self._sum_ms
            max_ms = self._max_ms
            min_ms = self._min_ms if count else 0.0
        return {
            "name": self.name,
            "label": self.label,
            "count": count,
            "sum_ms": sum_ms,
            "max_ms": max_ms,
            "min_ms": min_ms,
            "mean_ms": (sum_ms / count) if count else 0.0,
            "p50_ms": self.quantile(0.50),
            "p95_ms": self.quantile(0.95),
            "p99_ms": self.quantile(0.99),
            "buckets": [
                [bound, cumulative] for bound, cumulative in self.bucket_counts()
            ],
        }

    def merge_into(self, other: "LatencyHistogram") -> None:
        """Fold this histogram's observations into ``other`` (must share
        bucket bounds) — used for the cross-label per-stage summary."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.name} vs {other.name})"
            )
        self._drain()
        other._drain()
        with self._lock:
            counts = list(self._counts)
            count = self._count
            sum_ms = self._sum_ms
            max_ms = self._max_ms
            min_ms = self._min_ms
        with other._lock:
            for i, c in enumerate(counts):
                other._counts[i] += c
            other._count += count
            other._sum_ms += sum_ms
            if max_ms > other._max_ms:
                other._max_ms = max_ms
            if min_ms < other._min_ms:
                other._min_ms = min_ms


__all__ = ["DEFAULT_BUCKETS_MS", "LatencyHistogram"]
