"""Control-plane observability: tracing, latency histograms, export.

Distinct from :mod:`repro.monitoring` (the *simulated world's*
telemetry — per-slice demand/utilization time series in simulation
time): this package profiles the orchestrator process itself, in
wall-clock time — where a 32-slice batch install actually spends its
milliseconds, stage by stage, across the planner's completion threads.

Enabled per orchestrator via ``OrchestratorConfig.observability``
(process-wide default: the ``REPRO_OBS_ENABLED=1`` environment
variable); the default-off path is the shared, allocation-free
:data:`NOOP_OBS` / :data:`NOOP_SPAN` pair.

See ``docs/ARCHITECTURE.md`` ("Observability") for the span model and
``docs/API.md`` for ``GET /v1/admin/metrics`` and ``/v1/admin/traces``.
"""

from repro.obs.histogram import DEFAULT_BUCKETS_MS, LatencyHistogram
from repro.obs.registry import (
    NOOP_OBS,
    NOOP_SPAN,
    ControlPlaneObservability,
    NoopObservability,
    default_observability,
)
from repro.obs.span import Span, SpanContext, Tracer

__all__ = [
    "ControlPlaneObservability",
    "DEFAULT_BUCKETS_MS",
    "LatencyHistogram",
    "NOOP_OBS",
    "NOOP_SPAN",
    "NoopObservability",
    "Span",
    "SpanContext",
    "Tracer",
    "default_observability",
]
