"""Prometheus text exposition for the control-plane observability data.

Two namespaces share one scrape (``GET /v1/admin/metrics``):

- ``cp_*`` — the control plane's own histograms/counters/gauges
  (this subsystem; wall-clock milliseconds, suffixed ``_ms``).
- ``sim_*`` — the pre-existing *sim telemetry*
  (:meth:`~repro.monitoring.metrics.MetricsRegistry.to_prometheus`:
  per-slice demand/delivery time series, simulation-time stamped),
  re-emitted under a prefix so the two cannot collide.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

#: The standard Prometheus text-format content type.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _sanitize(name: str) -> str:
    """Dotted metric name → Prometheus-legal name."""
    return name.replace(".", "_").replace("-", "_")


def _escape_label(value: str) -> str:
    return (
        str(value).replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels(label: str, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = []
    if label:
        pairs.append(f'label="{_escape_label(label)}"')
    for key, value in (extra or {}).items():
        pairs.append(f'{key}="{_escape_label(value)}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(obs: Any, sim_metrics: Any = None) -> str:
    """The full scrape body: ``cp_*`` control-plane metrics (empty when
    observability is disabled) + the ``sim_*`` telemetry namespace."""
    lines: List[str] = []
    if getattr(obs, "enabled", False):
        typed: set = set()

        def declare(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for (metric, label), hist in sorted(obs.histograms().items()):
            base = f"cp_{_sanitize(metric)}_ms"
            declare(base, "histogram")
            data = hist.to_dict()
            for bound, cumulative in data["buckets"]:
                lines.append(
                    f"{base}_bucket{_labels(label, {'le': _fmt(bound)})} {cumulative}"
                )
            lines.append(f"{base}_sum{_labels(label)} {_fmt(data['sum_ms'])}")
            lines.append(f"{base}_count{_labels(label)} {data['count']}")
            max_name = f"{base}_max"
            declare(max_name, "gauge")
            lines.append(f"{max_name}{_labels(label)} {_fmt(data['max_ms'])}")
        for (metric, label), value in sorted(obs.counters().items()):
            name = f"cp_{_sanitize(metric)}_total"
            declare(name, "counter")
            lines.append(f"{name}{_labels(label)} {_fmt(value)}")
        for (metric, label), value in sorted(obs.gauges().items()):
            name = f"cp_{_sanitize(metric)}"
            declare(name, "gauge")
            lines.append(f"{name}{_labels(label)} {_fmt(value)}")
        tracer = obs.status().get("tracer", {})
        for key in ("spans_started", "spans_finished", "spans_dropped"):
            name = f"cp_tracer_{key}_total"
            declare(name, "counter")
            lines.append(f"{name} {tracer.get(key, 0)}")
    if sim_metrics is not None:
        for line in sim_metrics.to_prometheus().splitlines():
            if not line:
                continue
            if line.startswith("#"):
                # `# TYPE name kind` / `# HELP name text`: the metric
                # name (third token) gets the prefix, not the line.
                parts = line.split(" ", 3)
                if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                    parts[2] = f"sim_{parts[2]}"
                    lines.append(" ".join(parts))
                else:
                    lines.append(line)
            else:
                lines.append(f"sim_{line}")
    return "\n".join(lines) + "\n"


__all__ = ["PROMETHEUS_CONTENT_TYPE", "render_prometheus"]
