"""Prometheus text exposition for the control-plane observability data.

Two namespaces share one scrape (``GET /v1/admin/metrics``):

- ``cp_*`` — the control plane's own histograms/counters/gauges
  (this subsystem; wall-clock milliseconds, suffixed ``_ms``).
- ``sim_*`` — the pre-existing *sim telemetry*
  (:meth:`~repro.monitoring.metrics.MetricsRegistry.to_prometheus`:
  per-slice demand/delivery time series, simulation-time stamped),
  re-emitted under a prefix so the two cannot collide.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional

#: The standard Prometheus text-format content type.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _sanitize(name: str) -> str:
    """Dotted metric name → Prometheus-legal name."""
    return name.replace(".", "_").replace("-", "_")


def _escape_label(value: str) -> str:
    return (
        str(value).replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels(label: str, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = []
    if label:
        pairs.append(f'label="{_escape_label(label)}"')
    for key, value in (extra or {}).items():
        pairs.append(f'{key}="{_escape_label(value)}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(obs: Any, sim_metrics: Any = None) -> str:
    """The full scrape body: ``cp_*`` control-plane metrics (empty when
    observability is disabled) + the ``sim_*`` telemetry namespace."""
    lines: List[str] = []
    if getattr(obs, "enabled", False):
        typed: set = set()

        def declare(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for (metric, label), hist in sorted(obs.histograms().items()):
            base = f"cp_{_sanitize(metric)}_ms"
            declare(base, "histogram")
            data = hist.to_dict()
            for bound, cumulative in data["buckets"]:
                lines.append(
                    f"{base}_bucket{_labels(label, {'le': _fmt(bound)})} {cumulative}"
                )
            lines.append(f"{base}_sum{_labels(label)} {_fmt(data['sum_ms'])}")
            lines.append(f"{base}_count{_labels(label)} {data['count']}")
            max_name = f"{base}_max"
            declare(max_name, "gauge")
            lines.append(f"{max_name}{_labels(label)} {_fmt(data['max_ms'])}")
        for (metric, label), value in sorted(obs.counters().items()):
            name = f"cp_{_sanitize(metric)}_total"
            declare(name, "counter")
            lines.append(f"{name}{_labels(label)} {_fmt(value)}")
        for (metric, label), value in sorted(obs.gauges().items()):
            name = f"cp_{_sanitize(metric)}"
            declare(name, "gauge")
            lines.append(f"{name}{_labels(label)} {_fmt(value)}")
        tracer = obs.status().get("tracer", {})
        for key in ("spans_started", "spans_finished", "spans_dropped"):
            name = f"cp_tracer_{key}_total"
            declare(name, "counter")
            lines.append(f"{name} {tracer.get(key, 0)}")
    if sim_metrics is not None:
        for line in sim_metrics.to_prometheus().splitlines():
            if not line:
                continue
            if line.startswith("#"):
                # `# TYPE name kind` / `# HELP name text`: the metric
                # name (third token) gets the prefix, not the line.
                parts = line.split(" ", 3)
                if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                    parts[2] = f"sim_{parts[2]}"
                    lines.append(" ".join(parts))
                else:
                    lines.append(line)
            else:
                lines.append(f"sim_{line}")
    return "\n".join(lines) + "\n"


#: ``name{labels} value`` / ``name value`` sample line (our exposition
#: never emits timestamps, so the value is the last field).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{.*\})?\s+(?P<value>\S+)$"
)


def inject_label(text: str, key: str, value: str) -> str:
    """Add ``key="value"`` to every sample line of an exposition.

    The sharded control plane's router serves one merged ``GET
    /v1/admin/metrics`` scrape over N per-shard expositions; injecting
    a ``shard`` label keeps same-named series (every shard runs the
    same pipeline) distinguishable instead of silently colliding.
    Comment lines (``# TYPE`` / ``# HELP``) pass through untouched.
    """
    escaped = _escape_label(str(value))
    out: List[str] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            out.append(line)
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:  # not a sample line we understand — keep as-is
            out.append(line)
            continue
        name, labels, sample = match.group("name", "labels", "value")
        inner = (labels or "{}")[1:-1]
        if inner:
            inner += ","
        out.append(f'{name}{{{inner}{key}="{escaped}"}} {sample}')
    return "\n".join(out) + ("\n" if text.endswith("\n") else "")


def merge_expositions(shard_texts: Dict[int, str]) -> str:
    """One scrape body over per-shard expositions: every sample gains a
    ``shard`` label; duplicate ``# TYPE``/``# HELP`` declarations (each
    shard declares the same metric families) keep their first
    occurrence only, as the text format requires."""
    lines: List[str] = []
    declared: set = set()
    for shard_id in sorted(shard_texts):
        labelled = inject_label(shard_texts[shard_id], "shard", str(shard_id))
        for line in labelled.splitlines():
            if line.startswith("#"):
                if line in declared:
                    continue
                declared.add(line)
            lines.append(line)
    return "\n".join(lines) + "\n"


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "inject_label",
    "merge_expositions",
    "render_prometheus",
]
