"""Tracing spans with explicit context propagation.

The control plane hops threads constantly: the async install planner
advances jobs from ``add_done_callback`` continuations, blocking
drivers complete on daemon shim threads, and per-operation deadlines
fire on timer threads.  Thread-local "current span" tricks are useless
there, so propagation is *explicit*: a :class:`SpanContext` (trace id,
span id, parent id) is carried through job state machines
(``InstallJob.span_context``) and handed to every child span at
creation time.  Whatever thread finishes the span, its ancestry is
already pinned.

The :class:`Tracer` keeps two bounded buffers:

- **traces** — when a *root* span finishes, its whole span tree is
  assembled into one JSON-safe payload and retained (newest first,
  ``capacity`` deep).  This is what ``GET /v1/admin/traces`` serves.
- **slow spans** — any span whose duration exceeds
  ``slow_threshold_ms`` is retained individually *with its ancestry*
  (the chain of span names up to the root), so a slow journal fsync is
  attributable to the batch that caused it even after the trace itself
  aged out of the buffer.

Everything is wall-clock (``time.perf_counter``): this subsystem
profiles the orchestrator process itself, not the simulated world.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional


class SpanContext:
    """The portable identity of a span — everything a child (possibly
    created on another thread) needs to attach itself correctly.

    A plain ``__slots__`` class rather than a dataclass, and the ids
    are plain ints: one context is created per span on the install hot
    path, and the measured overhead budget (ci_gate's ≤5% bar) is
    tight enough that dataclass ``__init__`` machinery and per-span
    string formatting show up.  Ids are rendered to their external
    string form (``t00000007`` / ``s00000042``) only at read time.
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(
        self, trace_id: int, span_id: int, parent_id: Optional[int] = None
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, parent_id={self.parent_id!r})"
        )


def _trace_name(trace_id: int) -> str:
    return f"t{trace_id:08d}"


def _span_name(span_id: Optional[int]) -> Optional[str]:
    return None if span_id is None else f"s{span_id:08d}"


class Span:
    """One timed operation inside a trace.

    Created via :meth:`Tracer.start_span` (or the observability
    registry's ``span``), finished exactly once via :meth:`finish` —
    idempotent, because a completion callback and a deadline timer may
    race to close the same operation.  Usable as a context manager; an
    exception escaping the block marks the span as an error.
    """

    __slots__ = (
        "name", "label", "context", "attributes",
        "start", "duration_ms", "status", "error", "_tracer", "_open",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        context: SpanContext,
        label: str = "",
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.label = label
        self.context = context
        self.attributes = attributes
        # Atomic close claim: list.pop() is atomic under the GIL, so
        # whichever of a completion callback and a deadline timer pops
        # first owns the close — no lock on the finish fast path.
        self._open = [True]
        self.start = perf_counter()
        self.duration_ms: Optional[float] = None
        self.status = "in_flight"
        self.error: Optional[str] = None

    def finish(self, status: str = "ok", error: Optional[str] = None) -> "Span":
        """Close the span (idempotent — the first close wins)."""
        self._tracer._finish(self, status, error)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is None:
            self.finish()
        else:
            self.finish("error", error=f"{exc_type.__name__}: {exc}")
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": _trace_name(self.context.trace_id),
            "span_id": _span_name(self.context.span_id),
            "parent_id": _span_name(self.context.parent_id),
            "name": self.name,
            "label": self.label,
            "status": self.status,
            "error": self.error,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes) if self.attributes else {},
        }


class Tracer:
    """Thread-safe span factory + bounded trace/slow-span retention.

    Args:
        capacity: How many finished traces (and, separately, slow
            spans) to retain, newest first.
        slow_threshold_ms: Finished spans at least this slow enter the
            slow-span audit buffer with their ancestry.
        max_active_traces: Backstop against leaked roots — when more
            traces than this are in flight, the oldest is dropped.
        max_spans_per_trace: Backstop against runaway fan-out inside
            one trace; surplus spans are counted, not retained.
        on_finish: Hook fired for every finished span (the registry
            feeds per-stage latency histograms through this).
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_threshold_ms: float = 250.0,
        max_active_traces: int = 1024,
        max_spans_per_trace: int = 4096,
        on_finish: Optional[Callable[[Span], None]] = None,
    ) -> None:
        self.capacity = int(capacity)
        self.slow_threshold_ms = float(slow_threshold_ms)
        self.max_active_traces = int(max_active_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self.on_finish = on_finish
        # The lock guards the *structural* slow paths only: root
        # creation/eviction, root finish (trace retention), and the
        # slow-span buffer.  Non-root span start/finish — the install
        # hot path, hit from every planner worker thread — is lock-free:
        # single dict reads/writes are atomic under the GIL, and the
        # counters below are maintained by storing the value of an
        # atomic itertools.count (a read may transiently observe a
        # slightly stale value mid-flight; they are exact at quiescence,
        # which is when tests and the status endpoint read them).
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._started_ids = itertools.count(1)
        self._finished_ids = itertools.count(1)
        self._dropped_ids = itertools.count(1)
        # trace_id -> span_id -> Span, in creation order (root first);
        # plain dicts — insertion-ordered since 3.7 and cheaper than
        # OrderedDict on this hot path.
        self._active: Dict[int, Dict[int, Span]] = {}
        self._traces: deque = deque(maxlen=self.capacity)
        self._slow: deque = deque(maxlen=self.capacity)
        self.spans_started = 0
        self.spans_finished = 0
        #: Spans discarded by a bound (overfull trace, evicted trace,
        #: or a finish that arrived after its trace was assembled).
        self.spans_dropped = 0

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        label: str = "",
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span; a ``parent`` context attaches it to that trace,
        no parent starts a new trace rooted here."""
        # Id generation and span construction stay outside the lock:
        # next() on itertools.count is atomic under the GIL, and eight
        # planner worker threads finishing driver ops all funnel
        # through this tracer.
        serial = next(self._ids)
        if parent is None:
            context = SpanContext(trace_id=serial, span_id=serial)
        else:
            context = SpanContext(
                trace_id=parent.trace_id,
                span_id=serial,
                parent_id=parent.span_id,
            )
        span = Span(self, name, context, label=label, attributes=attributes)
        self.spans_started = next(self._started_ids)
        if parent is None:
            # Roots are rare (one per batch): take the lock to register
            # the trace and enforce the active-trace bound.
            with self._lock:
                spans = {context.span_id: span}
                self._active[context.trace_id] = spans
                while len(self._active) > self.max_active_traces:
                    del self._active[next(iter(self._active))]
                    self.spans_dropped = next(self._dropped_ids)
            return span
        spans = self._active.get(context.trace_id)
        if spans is None:
            # Child of an already-assembled (or evicted) trace: still
            # timed and histogrammed, just not retained.
            self.spans_dropped = next(self._dropped_ids)
            return span
        if len(spans) >= self.max_spans_per_trace:
            self.spans_dropped = next(self._dropped_ids)
            return span
        # Lock-free insert: dict __setitem__ is atomic under the GIL.
        # If the root finishes concurrently, `spans` is the same dict
        # the retained trace references, so the child still lands in
        # the assembled payload; the size bound above is approximate
        # under that race, which is fine for a backstop.
        spans[context.span_id] = span
        return span

    def _finish(self, span: Span, status: str, error: Optional[str]) -> None:
        ended = perf_counter()
        try:
            span._open.pop()  # atomic claim — first close wins
        except IndexError:
            return  # completion/timeout race: the other side closed it
        span.duration_ms = (ended - span.start) * 1000.0
        span.status = status
        span.error = error
        self.spans_finished = next(self._finished_ids)
        if span.duration_ms >= self.slow_threshold_ms:
            with self._lock:
                entry = span.to_dict()
                entry["ancestry"] = self._ancestry_locked(span)
                self._slow.append(entry)
        if span.context.parent_id is None:
            with self._lock:
                spans = self._active.pop(span.context.trace_id, None)
                if spans is not None and span.context.span_id in spans:
                    # Retention is lazy: keep the live span tree and
                    # assemble the JSON payload only when traces() is
                    # read — root finish sits on the install critical
                    # path.
                    self._traces.append((span, spans))
        if self.on_finish is not None:
            try:
                self.on_finish(span)
            except Exception:  # pragma: no cover - metrics never fail ops
                pass

    def _ancestry_locked(self, span: Span) -> List[Dict[str, str]]:
        """Root→parent chain of span names/ids, for slow-span triage."""
        spans = self._active.get(span.context.trace_id, {})
        chain: List[Dict[str, str]] = []
        parent_id = span.context.parent_id
        seen = set()
        while parent_id is not None and parent_id not in seen:
            seen.add(parent_id)
            parent = spans.get(parent_id)
            if parent is None:
                break
            chain.append(
                {
                    "span_id": _span_name(parent.context.span_id),
                    "name": parent.name,
                    "label": parent.label,
                }
            )
            parent_id = parent.context.parent_id
        chain.reverse()
        return chain

    @staticmethod
    def _assemble(root: Span, spans: Dict[int, Span]) -> Dict[str, Any]:
        """Fold a finished trace into one JSON-safe payload (spans in
        creation order; an unfinished child is visible as in_flight)."""
        out = []
        for span in spans.values():
            entry = span.to_dict()
            entry["start_offset_ms"] = (span.start - root.start) * 1000.0
            out.append(entry)
        return {
            "trace_id": _trace_name(root.context.trace_id),
            "root": root.name,
            "status": root.status,
            "duration_ms": root.duration_ms,
            "span_count": len(out),
            "spans": out,
        }

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def traces(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Finished traces, newest first."""
        with self._lock:
            raw = list(self._traces)
        raw.reverse()
        if limit is not None:
            raw = raw[:limit]
        return [self._assemble(root, spans) for root, spans in raw]

    def slow_spans(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Slow-op audit entries, newest first."""
        with self._lock:
            out = list(self._slow)
        out.reverse()
        return out[:limit] if limit is not None else out

    @property
    def active_span_count(self) -> int:
        """Unfinished spans of still-active traces (leak detector)."""
        with self._lock:
            return sum(
                1
                for spans in self._active.values()
                for span in spans.values()
                if span.duration_ms is None
            )

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "spans_started": self.spans_started,
                "spans_finished": self.spans_finished,
                "spans_dropped": self.spans_dropped,
                "active_traces": len(self._active),
                "retained_traces": len(self._traces),
                "slow_spans": len(self._slow),
                "slow_threshold_ms": self.slow_threshold_ms,
            }


__all__ = ["Span", "SpanContext", "Tracer"]
