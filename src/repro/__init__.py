"""repro — end-to-end network slice overbooking orchestrator.

A faithful, fully-simulated reproduction of *"Overbooking Network Slices
End-to-End: Implementation and Demonstration"* (Zanzi et al., ACM
SIGCOMM Posters and Demos 2018): a slice broker that admits
heterogeneous slice requests for revenue, allocates them across RAN /
transport / cloud domains, and uses traffic forecasting to overbook
reservations — trading statistical-multiplexing gain against SLA
penalties.

Quickstart::

    from repro.experiments import ScenarioConfig, ScenarioRunner
    from repro.core.admission import KnapsackPolicy
    from repro.core.overbooking import AdaptiveOverbooking

    config = ScenarioConfig(
        horizon_s=2 * 3600,
        admission=KnapsackPolicy(),
        overbooking=AdaptiveOverbooking(violation_budget=0.05),
    )
    result = ScenarioRunner(config).run()
    print(result.row())

Package map:

- :mod:`repro.core` — admission, forecasting, overbooking, allocation,
  pricing, orchestrator (the paper's contribution).
- :mod:`repro.ran`, :mod:`repro.transport`, :mod:`repro.cloud`,
  :mod:`repro.epc` — the simulated testbed substrates.
- :mod:`repro.monitoring`, :mod:`repro.traffic`, :mod:`repro.sim` —
  telemetry, workloads and the event engine.
- :mod:`repro.api`, :mod:`repro.dashboard` — the demo's REST surface
  and control dashboard.
- :mod:`repro.experiments` — testbed builder and scenario runner used
  by every benchmark.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
