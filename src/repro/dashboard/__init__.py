"""Control dashboard.

Text/JSON rendering of what the demo GUI shows: the installed slices
with their state and SLA, per-domain resource utilization, and —
front and center — the achieved multiplexing gain vs. accrued SLA
penalties.
"""

from repro.dashboard.dashboard import Dashboard
from repro.dashboard.reports import format_table, gain_vs_penalty_report

__all__ = ["Dashboard", "format_table", "gain_vs_penalty_report"]
