"""The control dashboard.

Consumes :meth:`repro.core.orchestrator.Orchestrator.snapshot` and
renders the three panels the demo shows live: the slice table, the
per-domain utilization bars, and the gain-vs-penalty headline.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.orchestrator import Orchestrator
from repro.dashboard.reports import format_table, gain_vs_penalty_report


class Dashboard:
    """Text/JSON views over a live orchestrator."""

    def __init__(self, orchestrator: Orchestrator) -> None:
        self.orchestrator = orchestrator

    # ------------------------------------------------------------------
    # Panels
    # ------------------------------------------------------------------
    def slice_table(self) -> str:
        """The installed-slices panel."""
        snapshot = self.orchestrator.snapshot()
        headers = [
            "slice", "tenant", "type", "state", "plmn",
            "thr(Mb/s)", "lat(ms)", "price", "viol", "sla",
        ]
        rows = [
            [
                s["slice_id"],
                s["tenant"],
                s["service_type"],
                s["state"],
                s["plmn"] or "-",
                s["throughput_mbps"],
                s["max_latency_ms"],
                s["price"],
                s["violation_epochs"],
                "ok" if s["sla_met"] else "BREACH",
            ]
            for s in snapshot["slices"]
        ]
        return format_table(headers, rows)

    def domain_panel(self) -> str:
        """Per-domain utilization bars (effective vs. nominal)."""
        snapshot = self.orchestrator.snapshot()
        ran = snapshot["domains"]["ran"]
        transport = snapshot["domains"]["transport"]
        cloud = snapshot["domains"]["cloud"]
        rows = [
            [
                "ran (PRBs)",
                f"{ran['effective_reserved']}/{ran['total_prbs']}",
                f"{ran['nominal_reserved']}/{ran['total_prbs']}",
                self._bar(ran["effective_reserved"], ran["total_prbs"]),
            ],
            [
                "transport (Mb/s)",
                f"{transport['effective_reserved_mbps']:.0f}/{transport['total_capacity_mbps']:.0f}",
                f"{transport['nominal_reserved_mbps']:.0f}/{transport['total_capacity_mbps']:.0f}",
                self._bar(
                    transport["effective_reserved_mbps"],
                    transport["total_capacity_mbps"],
                ),
            ],
            [
                "cloud (vCPUs)",
                f"{cloud['total_vcpus'] - cloud['free_vcpus']}/{cloud['total_vcpus']}",
                "-",
                self._bar(
                    cloud["total_vcpus"] - cloud["free_vcpus"], cloud["total_vcpus"]
                ),
            ],
        ]
        return format_table(["domain", "effective", "nominal", "load"], rows)

    @staticmethod
    def _bar(used: float, total: float, width: int = 20) -> str:
        if total <= 0:
            return "." * width
        filled = int(round(width * min(1.0, used / total)))
        return "#" * filled + "." * (width - filled)

    def headline(self) -> str:
        """The gains-vs-penalties headline box (with a gain sparkline)."""
        snapshot = self.orchestrator.snapshot()
        ledger = snapshot["ledger"]
        report = gain_vs_penalty_report(
            gain=snapshot["multiplexing_gain"],
            gross_revenue=ledger["gross_revenue"],
            penalties=ledger["total_penalties"],
            violation_rate=snapshot["violation_rate"],
        )
        spark = self.gain_sparkline()
        if spark:
            report += f"\ngain history           : {spark}"
        return report

    def gain_sparkline(self, width: int = 40) -> str:
        """Sparkline of the recorded multiplexing-gain series."""
        from repro.experiments.export import sparkline

        series = self.orchestrator.gain_tracker.series
        if series.empty:
            return ""
        return sparkline(series.values().tolist(), width=width)

    def calendar_panel(self) -> str:
        """Upcoming advance bookings (empty string when none pending)."""
        now = self.orchestrator.sim.now
        upcoming = [
            b for b in self.orchestrator.calendar.bookings() if b.start > now
        ]
        if not upcoming:
            return ""
        rows = [
            [b.booking_id, b.start, b.end, b.demand.prbs, b.demand.mbps]
            for b in upcoming
        ]
        return format_table(
            ["booking", "start_s", "end_s", "prbs", "mbps"], rows
        )

    # ------------------------------------------------------------------
    # Full views
    # ------------------------------------------------------------------
    def render(self) -> str:
        """All panels, ready to print."""
        snapshot = self.orchestrator.snapshot()
        parts = [
            f"t = {snapshot['time']:.0f} s   active slices: {snapshot['active']}   "
            f"acceptance: {snapshot['ledger']['acceptance_ratio']:.0%}",
            "",
            self.headline(),
            "",
            "--- Domains ---",
            self.domain_panel(),
            "",
            "--- Slices ---",
            self.slice_table(),
        ]
        calendar = self.calendar_panel()
        if calendar:
            parts.extend(["", "--- Upcoming bookings ---", calendar])
        return "\n".join(parts)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Machine-readable snapshot (what a web UI would poll)."""
        return json.dumps(self.orchestrator.snapshot(), indent=indent, sort_keys=True)


__all__ = ["Dashboard"]
