"""Plain-text report formatting helpers."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table.

    Column widths adapt to content; numeric cells are right-aligned,
    text cells left-aligned.
    """
    str_rows: List[List[str]] = [
        [_fmt_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    numeric = [
        all(_is_numeric(row[i]) for row in str_rows if i < len(row)) if str_rows else False
        for i in range(len(headers))
    ]

    def render_row(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            if i >= len(widths):
                break
            out.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(out).rstrip()

    lines = [render_row(list(headers)), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def _fmt_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def gain_vs_penalty_report(
    gain: float,
    gross_revenue: float,
    penalties: float,
    violation_rate: float,
) -> str:
    """The headline box of the demo dashboard: gains vs. penalties."""
    net = gross_revenue - penalties
    lines = [
        "=== Overbooking: gains vs. penalties ===",
        f"multiplexing gain      : {gain:6.2f}x",
        f"gross revenue          : {gross_revenue:10.2f}",
        f"SLA penalties          : {penalties:10.2f}",
        f"net revenue            : {net:10.2f}",
        f"violation rate         : {violation_rate:8.2%}",
    ]
    return "\n".join(lines)


__all__ = ["format_table", "gain_vs_penalty_report"]
