"""Synthetic mobility models: per-user cell-attachment timelines.

No measurement traces ship with the repo, so both models are
*synthetic-but-parameterized*: seeded generators shaped like the two
canonical workloads a metro deployment sees —

* :class:`CommuterTides` — the residential/business tide: users start
  on the edge (residential) cells, surge onto the core (business)
  cells across a morning window and ebb back across an evening window;
* :class:`VehicularCorridor` — convoys traversing the eNB chain in
  order, producing the ordered handover chains a highway corridor
  generates.

Both emit the same artifact, a :class:`MobilityTimeline`: initial
attachments plus a time-sorted list of :class:`HandoverEvent`.  The
``trace`` model (:func:`load_trace_timeline`) reads the identical
artifact from a JSONL attachment log, which is the seam real traces
plug into later.

Determinism: models draw only from the ``numpy`` generator they are
handed; the same generator state yields the same timeline.  Ties in
handover times are broken by (time, user index) so sorting is total.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.scenarios.spec import MobilitySpec, ScenarioError

__all__ = [
    "CommuterTides",
    "HandoverEvent",
    "MobilityModel",
    "MobilityTimeline",
    "VehicularCorridor",
    "build_model",
    "load_trace_timeline",
]


@dataclass(frozen=True)
class HandoverEvent:
    """One user re-attaching from one cell to another."""

    time_s: float
    user: int
    from_cell: int
    to_cell: int


@dataclass(frozen=True)
class MobilityTimeline:
    """Initial attachments + time-ordered handovers for one scenario."""

    n_cells: int
    initial_cells: Sequence[int]  # cell index per user
    handovers: Sequence[HandoverEvent]  # sorted by (time_s, user)

    def users_per_cell_initial(self) -> List[int]:
        counts = [0] * self.n_cells
        for cell in self.initial_cells:
            counts[cell] += 1
        return counts

    def validate(self) -> None:
        clock: dict = {}
        current = list(self.initial_cells)
        for event in self.handovers:
            if not 0 <= event.from_cell < self.n_cells:
                raise ScenarioError(f"handover from unknown cell {event.from_cell}")
            if not 0 <= event.to_cell < self.n_cells:
                raise ScenarioError(f"handover to unknown cell {event.to_cell}")
            if current[event.user] != event.from_cell:
                raise ScenarioError(
                    f"user {event.user} hands over from cell {event.from_cell} "
                    f"but is attached to {current[event.user]}"
                )
            if event.time_s < clock.get(event.user, 0.0):
                raise ScenarioError(f"user {event.user} timeline not ordered")
            clock[event.user] = event.time_s
            current[event.user] = event.to_cell


class MobilityModel:
    """Interface: produce a timeline for ``n_users`` over ``n_cells``."""

    def timeline(
        self,
        n_users: int,
        n_cells: int,
        horizon_s: float,
        rng: np.random.Generator,
    ) -> MobilityTimeline:
        raise NotImplementedError


class CommuterTides(MobilityModel):
    """Morning edge→core surge, evening reverse.

    The fleet is split into *edge* cells (first half, residential) and
    *core* cells (second half, business).  Each commuter:

    * starts on a random edge cell;
    * moves to a random core cell at a time drawn uniformly inside the
      morning window;
    * returns to a (possibly different) edge cell inside the evening
      window — when the horizon reaches that far.

    Windows are fractions of the horizon so the same shape scales from
    a CI smoke hour to a full simulated day:
    ``morning=(0.20, 0.35)``, ``evening=(0.70, 0.85)`` by default.
    ``commuter_fraction`` (default 0.85) of users commute; the rest
    stay home and only anchor the edge-zone baseline.
    """

    def __init__(
        self,
        morning: tuple = (0.20, 0.35),
        evening: tuple = (0.70, 0.85),
        commuter_fraction: float = 0.85,
    ) -> None:
        if not 0.0 <= morning[0] < morning[1] <= evening[0] < evening[1] <= 1.0:
            raise ScenarioError(
                f"windows must satisfy 0 <= morning < evening <= 1, "
                f"got {morning} / {evening}"
            )
        if not 0.0 < commuter_fraction <= 1.0:
            raise ScenarioError(
                f"commuter_fraction must be in (0, 1], got {commuter_fraction}"
            )
        self.morning = morning
        self.evening = evening
        self.commuter_fraction = commuter_fraction

    def timeline(
        self,
        n_users: int,
        n_cells: int,
        horizon_s: float,
        rng: np.random.Generator,
    ) -> MobilityTimeline:
        edge_cells = list(range(n_cells // 2))
        core_cells = list(range(n_cells // 2, n_cells))
        initial = [int(rng.choice(edge_cells)) for _ in range(n_users)]
        commutes = rng.random(n_users) < self.commuter_fraction
        events: List[HandoverEvent] = []
        for user in range(n_users):
            if not commutes[user]:
                continue
            work_cell = int(rng.choice(core_cells))
            out_t = float(rng.uniform(*self.morning)) * horizon_s
            events.append(HandoverEvent(out_t, user, initial[user], work_cell))
            back_t = float(rng.uniform(*self.evening)) * horizon_s
            if back_t < horizon_s:
                home_cell = int(rng.choice(edge_cells))
                events.append(HandoverEvent(back_t, user, work_cell, home_cell))
        events.sort(key=lambda e: (e.time_s, e.user))
        return MobilityTimeline(n_cells, initial, events)


class VehicularCorridor(MobilityModel):
    """Convoys traversing the eNB chain ``0 → 1 → ... → n-1`` in order.

    Each vehicle departs at a staggered time (uniform inside
    ``depart=(0.05, 0.45)`` of the horizon) and dwells
    ``dwell_fraction / n_cells`` of the horizon per cell, jittered
    ±``dwell_jitter`` relatively — so every vehicle emits the full
    ordered handover chain along the corridor, and chains from
    different vehicles interleave.
    """

    def __init__(
        self,
        depart: tuple = (0.05, 0.45),
        dwell_fraction: float = 0.45,
        dwell_jitter: float = 0.2,
    ) -> None:
        if not 0.0 <= depart[0] < depart[1] < 1.0:
            raise ScenarioError(f"depart window must be inside (0, 1), got {depart}")
        if not 0.0 < dwell_fraction < 1.0:
            raise ScenarioError(
                f"dwell_fraction must be in (0, 1), got {dwell_fraction}"
            )
        if not 0.0 <= dwell_jitter < 1.0:
            raise ScenarioError(
                f"dwell_jitter must be in [0, 1), got {dwell_jitter}"
            )
        self.depart = depart
        self.dwell_fraction = dwell_fraction
        self.dwell_jitter = dwell_jitter

    def timeline(
        self,
        n_users: int,
        n_cells: int,
        horizon_s: float,
        rng: np.random.Generator,
    ) -> MobilityTimeline:
        initial = [0] * n_users
        dwell_base = self.dwell_fraction * horizon_s / max(1, n_cells)
        events: List[HandoverEvent] = []
        for vehicle in range(n_users):
            t = float(rng.uniform(*self.depart)) * horizon_s
            for cell in range(n_cells - 1):
                jitter = 1.0 + float(
                    rng.uniform(-self.dwell_jitter, self.dwell_jitter)
                )
                t += dwell_base * jitter
                if t >= horizon_s:
                    break  # vehicle leaves the corridor past the horizon
                events.append(HandoverEvent(t, vehicle, cell, cell + 1))
        events.sort(key=lambda e: (e.time_s, e.user))
        return MobilityTimeline(n_cells, initial, events)


class TraceMobility(MobilityModel):
    """A pre-loaded timeline (from a trace file) behind the model API."""

    def __init__(self, timeline: MobilityTimeline) -> None:
        self._timeline = timeline

    def timeline(
        self,
        n_users: int,
        n_cells: int,
        horizon_s: float,
        rng: np.random.Generator,
    ) -> MobilityTimeline:
        if self._timeline.n_cells > n_cells:
            raise ScenarioError(
                f"trace references {self._timeline.n_cells} cells but the "
                f"testbed has {n_cells}"
            )
        return self._timeline


def load_trace_timeline(path: str) -> MobilityTimeline:
    """Read a JSONL attachment log into a :class:`MobilityTimeline`.

    Each line is ``{"t": seconds, "user": str|int, "cell": int}``; a
    user's first record is their initial attachment, every later record
    a handover.  This is the loader real commuter/vehicular traces
    (e.g. the wifi-vehicles or commuter datasets referenced in
    ROADMAP.md) convert into.
    """
    attachments: dict = {}
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                records.append((float(row["t"]), row["user"], int(row["cell"])))
            except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
                raise ScenarioError(f"{path}:{line_no}: bad trace row: {exc}")
    records.sort(key=lambda r: (r[0], str(r[1])))
    user_index: dict = {}
    initial: List[int] = []
    events: List[HandoverEvent] = []
    n_cells = 0
    for t, user, cell in records:
        n_cells = max(n_cells, cell + 1)
        if user not in user_index:
            user_index[user] = len(initial)
            initial.append(cell)
            attachments[user] = cell
            continue
        idx = user_index[user]
        events.append(HandoverEvent(t, idx, attachments[user], cell))
        attachments[user] = cell
    timeline = MobilityTimeline(n_cells, initial, events)
    timeline.validate()
    return timeline


def build_model(spec: MobilitySpec) -> MobilityModel:
    """Instantiate the model a :class:`MobilitySpec` names."""
    params = dict(spec.params)
    if spec.model == "commuter-tides":
        return CommuterTides(
            morning=tuple(params.get("morning", (0.20, 0.35))),
            evening=tuple(params.get("evening", (0.70, 0.85))),
            commuter_fraction=float(params.get("commuter_fraction", 0.85)),
        )
    if spec.model == "vehicular-corridor":
        return VehicularCorridor(
            depart=tuple(params.get("depart", (0.05, 0.45))),
            dwell_fraction=float(params.get("dwell_fraction", 0.45)),
            dwell_jitter=float(params.get("dwell_jitter", 0.2)),
        )
    if spec.model == "trace":
        return TraceMobility(load_trace_timeline(spec.trace_path))
    raise ScenarioError(f"unknown mobility model {spec.model!r}")
