"""Declarative scenario specs: mobility + failures + tenant mix.

A :class:`ScenarioSpec` is the reproducibility unit of the scenario
engine: everything a run needs — testbed sizing, the tenant/slice mix,
the mobility model and the failure schedule — lives in one seeded,
JSON-serialisable value.  Two runs of the same spec with the same seed
produce the identical event timeline and the identical
:class:`~repro.scenarios.report.ScenarioReport` digest; that contract
is what the determinism property suite pins.

Specs come from three places:

* the built-in named packs (:func:`named_scenarios` /
  :func:`build_named`), e.g. ``commuter-failure``;
* a plain dict (:meth:`ScenarioSpec.from_dict`), e.g. parsed from a
  config service;
* a JSON file on disk (:func:`load_scenario_file`), the interface real
  trace-derived packs plug into.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

__all__ = [
    "FailureSpec",
    "MobilitySpec",
    "ScenarioError",
    "ScenarioSpec",
    "TenantSpec",
    "build_named",
    "load_scenario_file",
    "named_scenarios",
]

#: Failure kinds the pack knows how to translate onto the testbed.
FAILURE_KINDS = ("link", "dc", "enb", "driver-stall")

#: Mobility models shipped with the engine ("trace" loads a file).
MOBILITY_MODELS = ("commuter-tides", "vehicular-corridor", "trace")


class ScenarioError(ValueError):
    """A scenario spec failed validation."""


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the scenario's slice mix.

    Every tenant runs one *zone slice* per cell, sized to the zone's
    attached-user count: ``clamp(min_mbps, base_mbps_per_user x users,
    max_mbps)``.  Mobility re-sizes those slices; the tenant spec fixes
    the economics and SLA shape.
    """

    tenant_id: str
    service_type: str = "embb"
    base_mbps_per_user: float = 0.25
    min_mbps: float = 4.0
    max_mbps: float = 30.0
    max_latency_ms: float = 50.0
    price_per_slice: float = 120.0
    penalty_rate: float = 1.0

    def validate(self) -> None:
        if not self.tenant_id:
            raise ScenarioError("tenant_id must be non-empty")
        if self.base_mbps_per_user <= 0:
            raise ScenarioError(
                f"{self.tenant_id}: base_mbps_per_user must be positive"
            )
        if not 0 < self.min_mbps <= self.max_mbps:
            raise ScenarioError(
                f"{self.tenant_id}: need 0 < min_mbps <= max_mbps, "
                f"got [{self.min_mbps}, {self.max_mbps}]"
            )


@dataclass(frozen=True)
class MobilitySpec:
    """Which mobility model shapes the user timelines, and how.

    ``params`` is model-specific (window fractions for the commuter
    tides, dwell times for the corridor); ``trace_path`` points the
    ``trace`` model at a JSONL attachment log — the loader interface
    real measurement traces plug into.
    """

    model: str = "commuter-tides"
    n_users: int = 60
    params: Mapping[str, float] = field(default_factory=dict)
    trace_path: Optional[str] = None

    def validate(self) -> None:
        if self.model not in MOBILITY_MODELS:
            raise ScenarioError(
                f"unknown mobility model {self.model!r}; "
                f"expected one of {MOBILITY_MODELS}"
            )
        if self.model == "trace" and not self.trace_path:
            raise ScenarioError("trace mobility requires trace_path")
        if self.model != "trace" and self.n_users <= 0:
            raise ScenarioError(f"n_users must be positive, got {self.n_users}")


@dataclass(frozen=True)
class FailureSpec:
    """One scheduled outage *with restoration*.

    Kinds:
        ``link``  — one duplex transport link (target: base link id,
                    e.g. ``enb1-mmwave``).
        ``dc``    — a datacenter's attachment links (target: dc id,
                    e.g. ``edge-dc``).
        ``enb``   — both of an eNB's uplinks, isolating the cell
                    (target: enb id, e.g. ``enb2``).
        ``driver-stall`` — a chaos :class:`~repro.drivers.mock.MockDriver`
                    domain stalls its southbound ops for the window
                    (target: driver domain name).
    """

    kind: str
    target: str
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def validate(self, horizon_s: float) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ScenarioError(
                f"unknown failure kind {self.kind!r}; expected {FAILURE_KINDS}"
            )
        if not self.target:
            raise ScenarioError("failure target must be non-empty")
        if self.start_s <= 0:
            raise ScenarioError(
                f"failure start must be positive, got {self.start_s}"
            )
        if self.duration_s <= 0:
            raise ScenarioError(
                f"failure duration must be positive, got {self.duration_s}"
            )
        if self.end_s >= horizon_s:
            raise ScenarioError(
                f"failure {self.kind}:{self.target} must restore inside the "
                f"horizon (ends {self.end_s}, horizon {horizon_s}) — heal "
                f"convergence is unmeasurable otherwise"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """The reproducibility unit: one complete scenario.

    Attributes:
        name: Pack name (reported, and part of the digest).
        seed: Root seed for every random stream the run uses.
        horizon_s: Simulated duration.
        epoch_s: Orchestrator monitoring epoch (also the heal-poll
            cadence).
        n_enbs: Fleet size; the first half are *edge* (residential)
            cells, the second half *core* (business) cells.
        rescale_hysteresis: Relative throughput change below which a
            handover does not re-dimension the zone slice.
        tenants: The slice mix (one zone slice per tenant per cell).
        mobility: User movement model.
        failures: Scheduled outages with restoration.
        testbed: Extra :class:`~repro.experiments.testbed.TestbedConfig`
            overrides (capacities, DC sizing, ...).
    """

    name: str
    seed: int = 0
    horizon_s: float = 6 * 3_600.0
    epoch_s: float = 60.0
    n_enbs: int = 4
    rescale_hysteresis: float = 0.10
    tenants: Tuple[TenantSpec, ...] = ()
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    failures: Tuple[FailureSpec, ...] = ()
    testbed: Mapping[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if self.horizon_s <= 0:
            raise ScenarioError(f"horizon must be positive, got {self.horizon_s}")
        if self.epoch_s <= 0:
            raise ScenarioError(f"epoch must be positive, got {self.epoch_s}")
        if self.n_enbs < 2:
            raise ScenarioError(
                f"need >= 2 eNBs for an edge/core split, got {self.n_enbs}"
            )
        if not 0.0 <= self.rescale_hysteresis < 1.0:
            raise ScenarioError(
                f"hysteresis must be in [0, 1), got {self.rescale_hysteresis}"
            )
        if not self.tenants:
            raise ScenarioError("at least one tenant is required")
        seen = set()
        for tenant in self.tenants:
            tenant.validate()
            if tenant.tenant_id in seen:
                raise ScenarioError(f"duplicate tenant {tenant.tenant_id}")
            seen.add(tenant.tenant_id)
        self.mobility.validate()
        for failure in self.failures:
            failure.validate(self.horizon_s)
            if failure.kind == "enb":
                index = _enb_index(failure.target)
                if index is None or not 1 <= index <= self.n_enbs:
                    raise ScenarioError(
                        f"enb failure target {failure.target!r} outside the "
                        f"{self.n_enbs}-cell fleet"
                    )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (round-trips through :meth:`from_dict`)."""
        payload = asdict(self)
        payload["tenants"] = [asdict(t) for t in self.tenants]
        payload["mobility"] = asdict(self.mobility)
        payload["mobility"]["params"] = dict(self.mobility.params)
        payload["failures"] = [asdict(f) for f in self.failures]
        payload["testbed"] = dict(self.testbed)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Build and validate a spec from a plain dict."""
        data = dict(payload)
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ScenarioError(f"unknown scenario fields: {sorted(unknown)}")
        tenants = tuple(
            t if isinstance(t, TenantSpec) else TenantSpec(**t)
            for t in data.pop("tenants", ())
        )
        mobility = data.pop("mobility", None)
        if mobility is not None and not isinstance(mobility, MobilitySpec):
            mobility = MobilitySpec(**mobility)
        failures = tuple(
            f if isinstance(f, FailureSpec) else FailureSpec(**f)
            for f in data.pop("failures", ())
        )
        spec = cls(
            tenants=tenants,
            mobility=mobility or MobilitySpec(),
            failures=failures,
            **data,
        )
        spec.validate()
        return spec

    def canonical_json(self) -> str:
        """Stable serialisation — the digest input."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def load_scenario_file(path: str) -> ScenarioSpec:
    """Load a spec from a JSON file (the external-pack interface)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ScenarioError(f"{path}: expected a JSON object at top level")
    return ScenarioSpec.from_dict(payload)


def _enb_index(enb_id: str) -> Optional[int]:
    if not enb_id.startswith("enb"):
        return None
    try:
        return int(enb_id[3:])
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Built-in packs
# ----------------------------------------------------------------------
def _commuter_failure(seed: int) -> ScenarioSpec:
    """The flagship pack: a 6-hour commuter day over six cells.

    The slice mix pins both DCs — placement is core-first when latency
    allows, so the eMBB tenant lands on the core DC while the 10 ms
    URLLC tenant is forced onto the edge DC.  The failure schedule then
    hits both (neither DC attachment has a detour, so those heals must
    wait for restoration), cuts a backhaul link (heals by re-route to
    the parallel µwave hop) and isolates one cell."""
    horizon = 6 * 3_600.0
    return ScenarioSpec(
        name="commuter-failure",
        seed=seed,
        horizon_s=horizon,
        n_enbs=6,
        tenants=(
            TenantSpec(
                tenant_id="metro-embb",
                service_type="embb",
                base_mbps_per_user=0.25,
                min_mbps=4.0,
                max_mbps=30.0,
                max_latency_ms=50.0,
            ),
            TenantSpec(
                tenant_id="city-urllc",
                service_type="urllc",
                base_mbps_per_user=0.10,
                min_mbps=2.0,
                max_mbps=12.0,
                max_latency_ms=10.0,
                price_per_slice=180.0,
                penalty_rate=2.0,
            ),
        ),
        mobility=MobilitySpec(model="commuter-tides", n_users=120),
        failures=(
            FailureSpec("dc", "edge-dc", start_s=0.38 * horizon, duration_s=900.0),
            FailureSpec("dc", "core-dc", start_s=0.48 * horizon, duration_s=1_200.0),
            FailureSpec(
                "link", "enb1-mmwave", start_s=0.60 * horizon, duration_s=900.0
            ),
            FailureSpec("enb", "enb3", start_s=0.68 * horizon, duration_s=600.0),
        ),
        testbed={"plmn_pool_size": 16},
    )


def _commuter_failure_smoke(seed: int) -> ScenarioSpec:
    """Tiny-scale variant of the flagship pack for the per-push CI
    matrix: one simulated hour, two cells, both outage classes."""
    return ScenarioSpec(
        name="commuter-failure-smoke",
        seed=seed,
        horizon_s=3_600.0,
        n_enbs=2,
        tenants=(
            TenantSpec(
                tenant_id="metro-embb",
                service_type="embb",
                base_mbps_per_user=0.4,
                min_mbps=4.0,
                max_mbps=24.0,
            ),
        ),
        mobility=MobilitySpec(model="commuter-tides", n_users=24),
        failures=(
            FailureSpec("dc", "core-dc", start_s=1_505.0, duration_s=600.0),
            FailureSpec("link", "enb1-mmwave", start_s=2_705.0, duration_s=300.0),
        ),
    )


def _vehicular_corridor(seed: int) -> ScenarioSpec:
    """Convoys traversing the eNB chain in order (handover chains),
    with a mid-corridor backhaul cut that the heal path re-routes."""
    horizon = 2 * 3_600.0
    return ScenarioSpec(
        name="vehicular-corridor",
        seed=seed,
        horizon_s=horizon,
        n_enbs=6,
        tenants=(
            TenantSpec(
                tenant_id="fleet-auto",
                service_type="automotive",
                base_mbps_per_user=0.8,
                min_mbps=4.0,
                max_mbps=25.0,
                max_latency_ms=30.0,
            ),
        ),
        mobility=MobilitySpec(model="vehicular-corridor", n_users=16),
        failures=(
            FailureSpec(
                "link", "enb3-mmwave", start_s=0.42 * horizon, duration_s=600.0
            ),
        ),
        testbed={"plmn_pool_size": 12},
    )


def _commuter_quiet(seed: int) -> ScenarioSpec:
    """Commuter tides with no failures — the mobility-only baseline the
    property and unit suites lean on (fast, small)."""
    return ScenarioSpec(
        name="commuter-quiet",
        seed=seed,
        horizon_s=1_800.0,
        n_enbs=2,
        tenants=(
            TenantSpec(tenant_id="metro-embb", base_mbps_per_user=0.4),
        ),
        mobility=MobilitySpec(model="commuter-tides", n_users=16),
    )


_NAMED: Dict[str, Callable[[int], ScenarioSpec]] = {
    "commuter-failure": _commuter_failure,
    "commuter-failure-smoke": _commuter_failure_smoke,
    "vehicular-corridor": _vehicular_corridor,
    "commuter-quiet": _commuter_quiet,
}


def named_scenarios() -> Tuple[str, ...]:
    """The built-in pack names, stable order."""
    return tuple(sorted(_NAMED))


def build_named(name: str, seed: int = 0) -> ScenarioSpec:
    """Instantiate a built-in pack at a seed.

    Raises:
        ScenarioError: If the name is unknown.
    """
    try:
        builder = _NAMED[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {', '.join(named_scenarios())}"
        ) from None
    spec = builder(seed)
    spec.validate()
    return spec
