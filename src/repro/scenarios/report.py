"""Scenario scoring: the :class:`ScenarioReport` and its digest.

The report is the scenario engine's output contract: every score the
CI gate or a benchmark table consumes lives here, split into

* **deterministic** fields — functions of the spec + seed only (event
  counts, SLA violations, lost/leaked audits, heal convergence in sim
  time).  These are hashed into :attr:`ScenarioReport.digest`, the
  value the determinism property suite pins: same spec + same seed ⇒
  same digest.
* **wall-clock** fields — handover/rescale control-plane latencies
  measured with ``perf_counter``.  Reported (they are the point of the
  handover-latency score) but *excluded* from the digest, since wall
  time varies run to run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ScenarioReport", "percentile"]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a sample list (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return float(ordered[rank])


@dataclass
class ScenarioReport:
    """Scores of one scenario run (see module docstring for the
    deterministic/wall-clock split)."""

    name: str
    seed: int
    horizon_s: float

    # Admission yield -------------------------------------------------
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0

    # Mobility / handover ---------------------------------------------
    handovers: int = 0
    rescales_attempted: int = 0
    rescales_applied: int = 0
    rescales_rejected: int = 0

    # SLA --------------------------------------------------------------
    sla_epochs: int = 0
    sla_violations: int = 0

    # Failures / heal --------------------------------------------------
    outages: int = 0
    outages_healed: int = 0
    heal_convergence_s: List[Optional[float]] = field(default_factory=list)
    repairs_performed: int = 0

    # End-of-run audit -------------------------------------------------
    lost_slices: List[str] = field(default_factory=list)
    leaked_reservations: List[str] = field(default_factory=list)

    # Bookkeeping ------------------------------------------------------
    events_processed: int = 0
    net_revenue: float = 0.0
    outage_detail: List[dict] = field(default_factory=list)
    timeline: List[list] = field(default_factory=list)
    spec_json: str = ""

    # Wall-clock (excluded from the digest) ----------------------------
    handover_latency_ms: List[float] = field(default_factory=list)
    wall_s: float = 0.0

    # ------------------------------------------------------------------
    # Derived scores
    # ------------------------------------------------------------------
    @property
    def admission_yield(self) -> float:
        return self.admitted / self.submitted if self.submitted else 0.0

    @property
    def violation_rate(self) -> float:
        return self.sla_violations / self.sla_epochs if self.sla_epochs else 0.0

    @property
    def heal_convergence_max_s(self) -> float:
        known = [c for c in self.heal_convergence_s if c is not None]
        return max(known) if known else 0.0

    @property
    def handover_p50_ms(self) -> float:
        return percentile(self.handover_latency_ms, 0.50)

    @property
    def handover_p95_ms(self) -> float:
        return percentile(self.handover_latency_ms, 0.95)

    @property
    def clean(self) -> bool:
        """Zero lost slices and zero leaked reservations."""
        return not self.lost_slices and not self.leaked_reservations

    # ------------------------------------------------------------------
    # Digest + serialisation
    # ------------------------------------------------------------------
    def deterministic_dict(self) -> Dict[str, Any]:
        """The digest input: every field that is a pure function of
        spec + seed (no wall-clock measurements)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "spec": self.spec_json,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "handovers": self.handovers,
            "rescales_attempted": self.rescales_attempted,
            "rescales_applied": self.rescales_applied,
            "rescales_rejected": self.rescales_rejected,
            "sla_epochs": self.sla_epochs,
            "sla_violations": self.sla_violations,
            "outages": self.outages,
            "outages_healed": self.outages_healed,
            "heal_convergence_s": self.heal_convergence_s,
            "repairs_performed": self.repairs_performed,
            "lost_slices": self.lost_slices,
            "leaked_reservations": self.leaked_reservations,
            "events_processed": self.events_processed,
            "net_revenue": round(self.net_revenue, 6),
            "timeline": self.timeline,
        }

    @property
    def digest(self) -> str:
        """sha256 over the canonical deterministic payload."""
        canonical = json.dumps(
            self.deterministic_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON artifact (``scenario_report.json``)."""
        payload = self.deterministic_dict()
        payload.update(
            {
                "digest": self.digest,
                "admission_yield": round(self.admission_yield, 4),
                "violation_rate": round(self.violation_rate, 4),
                "heal_convergence_max_s": self.heal_convergence_max_s,
                "outage_detail": self.outage_detail,
                "lost": len(self.lost_slices),
                "leaked": len(self.leaked_reservations),
                "clean": self.clean,
                "handover_p50_ms": round(self.handover_p50_ms, 3),
                "handover_p95_ms": round(self.handover_p95_ms, 3),
                "wall_s": round(self.wall_s, 3),
            }
        )
        return payload

    def summary(self) -> str:
        """One human-readable block for the CLI."""
        lines = [
            f"scenario {self.name} (seed {self.seed}, "
            f"{self.horizon_s / 3600.0:.1f} h simulated, "
            f"{self.wall_s:.1f} s wall)",
            f"  admission   {self.admitted}/{self.submitted} admitted "
            f"(yield {self.admission_yield:.2f})",
            f"  handovers   {self.handovers} "
            f"(rescales {self.rescales_applied}/{self.rescales_attempted} applied, "
            f"p50 {self.handover_p50_ms:.2f} ms, p95 {self.handover_p95_ms:.2f} ms)",
            f"  sla         {self.sla_violations}/{self.sla_epochs} epochs violated "
            f"(rate {self.violation_rate:.4f})",
            f"  outages     {self.outages_healed}/{self.outages} healed, "
            f"max convergence {self.heal_convergence_max_s:.0f} s, "
            f"{self.repairs_performed} path repairs",
            f"  audit       lost={len(self.lost_slices)} "
            f"leaked={len(self.leaked_reservations)} "
            f"({'clean' if self.clean else 'DIRTY'})",
            f"  digest      {self.digest[:16]}…",
        ]
        return "\n".join(lines)
