"""Scenario engine: declarative mobility + failure packs with scoring.

The subsystem that stresses the control plane the way a real metro
deployment does — users *moving* (commuter tides, vehicular corridors)
and infrastructure *failing with restoration* — and scores each run
into a deterministic :class:`~repro.scenarios.report.ScenarioReport`.

Entry points:

* :func:`~repro.scenarios.spec.build_named` /
  :func:`~repro.scenarios.runner.run_named` — the built-in packs
  (``repro scenarios list`` on the CLI);
* :class:`~repro.scenarios.spec.ScenarioSpec` +
  :class:`~repro.scenarios.runner.ScenarioRunner` — custom specs from
  dicts or JSON files.
"""

from repro.scenarios.failures import FailurePack, OutageRecord
from repro.scenarios.mobility import (
    CommuterTides,
    HandoverEvent,
    MobilityModel,
    MobilityTimeline,
    VehicularCorridor,
    build_model,
    load_trace_timeline,
)
from repro.scenarios.report import ScenarioReport
from repro.scenarios.runner import ScenarioRunner, run_named, run_scenario
from repro.scenarios.spec import (
    FailureSpec,
    MobilitySpec,
    ScenarioError,
    ScenarioSpec,
    TenantSpec,
    build_named,
    load_scenario_file,
    named_scenarios,
)

__all__ = [
    "CommuterTides",
    "FailurePack",
    "FailureSpec",
    "HandoverEvent",
    "MobilityModel",
    "MobilitySpec",
    "MobilityTimeline",
    "OutageRecord",
    "ScenarioError",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "TenantSpec",
    "VehicularCorridor",
    "build_model",
    "build_named",
    "load_scenario_file",
    "load_trace_timeline",
    "named_scenarios",
    "run_named",
    "run_scenario",
]
