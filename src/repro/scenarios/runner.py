"""Scenario execution: compile spec → events, run, score.

The runner is the piece that turns a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` into orchestrator traffic:

* each tenant runs one **zone slice** per cell, sized to the zone's
  attached-user count (``clamp(min, base x users, max)``) — the
  scenario abstraction that turns *mobility* into *control-plane
  load*: the orchestrator is free to place the slice wherever its
  policies like, but its SLA follows the zone's population;
* every :class:`~repro.scenarios.mobility.HandoverEvent` moves one
  user between zones and re-dimensions the affected zone slices
  through :meth:`Orchestrator.modify_slice` (with hysteresis, so the
  commuter rush produces the characteristic rescale storm rather than
  per-user noise);
* the :class:`~repro.scenarios.failures.FailurePack` injects outages
  with restoration, and an epoch-aligned health poll watches
  ``TransportController.path_healthy`` to timestamp when *service*
  (not the physical link) converges — a re-routed path counts as
  healed even while the struck link is still down.

Everything is scheduled on the shared simulator in timestamp order and
scored into a :class:`~repro.scenarios.report.ScenarioReport` whose
digest is reproducible for (spec, seed).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from repro.core.admission import FcfsPolicy
from repro.core.forecasting import HoltWintersForecaster
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.overbooking import NoOverbooking
from repro.core.slices import SLA, ServiceType, SliceRequest, slice_id_for
from repro.drivers.base import DomainDriver, ReservationState
from repro.drivers.mock import MockDriver
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.scenarios.failures import FailurePack
from repro.scenarios.mobility import HandoverEvent, build_model
from repro.scenarios.report import ScenarioReport
from repro.scenarios.spec import (
    ScenarioError,
    ScenarioSpec,
    TenantSpec,
    build_named,
)
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import ConstantProfile

__all__ = ["ScenarioRunner", "run_named", "run_scenario"]

#: Zone slices outlive the horizon by a day so nothing expires mid-run —
#: the end-of-run audit can then assert live == admitted exactly.
_DURATION_MARGIN_S = 86_400.0


class ScenarioRunner:
    """Runs one :class:`ScenarioSpec` end-to-end on a fresh testbed.

    Distinct from :class:`repro.experiments.runner.ScenarioRunner`
    (Poisson arrival sweeps for the D-experiments): this runner drives
    *mobility- and failure-shaped* workloads and scores survivability.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        extra_drivers: Optional[List[DomainDriver]] = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.streams = RandomStreams(seed=spec.seed)
        self.sim = Simulator()
        testbed_kwargs = dict(spec.testbed)
        testbed_kwargs.setdefault(
            "plmn_pool_size", max(12, len(spec.tenants) * spec.n_enbs + 4)
        )
        self.testbed: Testbed = build_testbed(
            TestbedConfig(n_enbs=spec.n_enbs, **testbed_kwargs)
        )
        for driver in extra_drivers or []:
            self.testbed.registry.register(driver)
        chaos = {
            driver.domain: driver
            for driver in self.testbed.registry.drivers()
            if isinstance(driver, MockDriver)
        }
        self.orchestrator = Orchestrator(
            sim=self.sim,
            allocator=self.testbed.allocator,
            registry=self.testbed.registry,
            plmn_pool=self.testbed.plmn_pool,
            admission=FcfsPolicy(),
            overbooking=NoOverbooking(),
            forecaster_factory=lambda: HoltWintersForecaster(season_length=24),
            config=OrchestratorConfig(monitoring_epoch_s=spec.epoch_s),
            streams=self.streams,
        )
        self.report = ScenarioReport(
            name=spec.name,
            seed=spec.seed,
            horizon_s=spec.horizon_s,
            spec_json=spec.canonical_json(),
        )
        self.pack = FailurePack(
            self.sim,
            self.testbed.transport.topology,
            spec.failures,
            chaos_drivers=chaos,
            on_event=lambda event, f: self._note(event, f.kind, f.target),
        )
        # Engine-side zone state -----------------------------------------
        self._users_per_cell: List[int] = [0] * spec.n_enbs
        self._zone_slices: Dict[Tuple[str, int], Optional[str]] = {}
        self._zone_targets: Dict[Tuple[str, int], float] = {}
        self._expected_live: Set[str] = set()

    # ------------------------------------------------------------------
    # Timeline (digest input): sim-time events only, no wall clock.
    # ------------------------------------------------------------------
    def _note(self, kind: str, *detail) -> None:
        self.report.timeline.append([round(self.sim.now, 3), kind, *detail])

    # ------------------------------------------------------------------
    # Zone sizing
    # ------------------------------------------------------------------
    def _zone_mbps(self, tenant: TenantSpec, cell: int) -> float:
        demand = tenant.base_mbps_per_user * self._users_per_cell[cell]
        return round(min(tenant.max_mbps, max(tenant.min_mbps, demand)), 3)

    def _submit_zone_slices(self) -> None:
        for tenant in self.spec.tenants:
            service_type = ServiceType[tenant.service_type.upper()]
            for cell in range(self.spec.n_enbs):
                target = self._zone_mbps(tenant, cell)
                request_id = f"req-zone-{tenant.tenant_id}-c{cell}"
                request = SliceRequest(
                    tenant_id=tenant.tenant_id,
                    service_type=service_type,
                    sla=SLA(
                        throughput_mbps=target,
                        max_latency_ms=tenant.max_latency_ms,
                        duration_s=self.spec.horizon_s + _DURATION_MARGIN_S,
                    ),
                    price=tenant.price_per_slice,
                    penalty_rate=tenant.penalty_rate,
                    arrival_time=self.sim.now,
                    n_users=max(1, self._users_per_cell[cell]),
                    request_id=request_id,
                )
                profile = ConstantProfile(target, noise_std=0.02)
                decision = self.orchestrator.submit(request, profile)
                self.report.submitted += 1
                key = (tenant.tenant_id, cell)
                if decision.admitted:
                    slice_id = slice_id_for(request_id)
                    self._zone_slices[key] = slice_id
                    self._zone_targets[key] = target
                    self._expected_live.add(slice_id)
                    self.report.admitted += 1
                else:
                    self._zone_slices[key] = None
                    self.report.rejected += 1
                self._note(
                    "submit", request_id, target, bool(decision.admitted)
                )

    # ------------------------------------------------------------------
    # Handovers → rescale storm
    # ------------------------------------------------------------------
    def _on_handover(self, event: HandoverEvent) -> None:
        started = perf_counter()
        self._users_per_cell[event.from_cell] -= 1
        self._users_per_cell[event.to_cell] += 1
        rescales = 0
        for tenant in self.spec.tenants:
            for cell in (event.from_cell, event.to_cell):
                rescales += self._maybe_rescale(tenant, cell)
        self.report.handovers += 1
        self.report.handover_latency_ms.append(
            (perf_counter() - started) * 1000.0
        )
        self._note(
            "handover", event.user, event.from_cell, event.to_cell, rescales
        )

    def _maybe_rescale(self, tenant: TenantSpec, cell: int) -> int:
        key = (tenant.tenant_id, cell)
        slice_id = self._zone_slices.get(key)
        if slice_id is None:
            return 0  # zone slice was rejected at admission; nothing to size
        target = self._zone_mbps(tenant, cell)
        current = self._zone_targets[key]
        if current > 0 and abs(target - current) / current < self.spec.rescale_hysteresis:
            return 0
        self.report.rescales_attempted += 1
        decision = self.orchestrator.modify_slice(slice_id, target)
        if decision.admitted:
            self._zone_targets[key] = target
            self.report.rescales_applied += 1
        else:
            # A grow that does not fit (or a resize across a struck
            # domain) leaves the slice unchanged — exactly the
            # congestion/outage pressure the score should show.
            self.report.rescales_rejected += 1
        self._note("rescale", slice_id, target, bool(decision.admitted))
        return 1

    # ------------------------------------------------------------------
    # Heal convergence poll
    # ------------------------------------------------------------------
    def _poll_health(self) -> None:
        active = self.orchestrator.active_slices()
        if not active:
            return
        transport = self.testbed.transport
        for network_slice in active:
            try:
                if not transport.path_healthy(network_slice.slice_id):
                    return
            except Exception:
                return  # unknown to transport ⇒ not converged yet
        self.pack.note_all_healthy(self.sim.now)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> ScenarioReport:
        spec = self.spec
        started = perf_counter()
        model = build_model(spec.mobility)
        timeline = model.timeline(
            n_users=spec.mobility.n_users,
            n_cells=spec.n_enbs,
            horizon_s=spec.horizon_s,
            rng=self.streams.stream("mobility"),
        )
        timeline.validate()
        self._users_per_cell = timeline.users_per_cell_initial()

        self.orchestrator.start()
        self.sim.schedule_at(1.0, self._submit_zone_slices, name="zone-submits")
        for event in timeline.handovers:
            # Trace rows may start at t=0; keep every injected event
            # after the zone submits.
            at = max(event.time_s, 1.5)
            if at >= spec.horizon_s:
                continue
            self.sim.schedule_at(
                at, lambda e=event: self._on_handover(e), name="handover"
            )
        self.pack.schedule()
        if self.pack.records:
            # Poll just after each monitoring epoch (the heal pass runs
            # inside the epoch), so convergence lands on the epoch grid.
            poll_t = spec.epoch_s + 1.0
            while poll_t < spec.horizon_s:
                self.sim.schedule_at(poll_t, self._poll_health, name="heal-poll")
                poll_t += spec.epoch_s
        self.sim.run_until(spec.horizon_s)
        self.orchestrator.stop()
        self._score()
        self.report.wall_s = perf_counter() - started
        return self.report

    def _score(self) -> None:
        report = self.report
        orchestrator = self.orchestrator
        live_ids = {s.slice_id for s in orchestrator.live_slices()}
        report.lost_slices = sorted(self._expected_live - live_ids)
        leaked: List[str] = []
        for driver in self.testbed.registry.drivers():
            for reservation in driver.list_reservations():
                if reservation.slice_id not in live_ids:
                    leaked.append(f"{driver.domain}:{reservation.slice_id}")
                elif reservation.state is not ReservationState.COMMITTED:
                    leaked.append(
                        f"{driver.domain}:{reservation.slice_id}:"
                        f"{reservation.state.name.lower()}"
                    )
        report.leaked_reservations = sorted(leaked)
        monitor = orchestrator.sla_monitor
        report.sla_epochs = monitor.total_epochs
        report.sla_violations = monitor.total_violations
        report.outages = len(self.pack.records)
        report.outages_healed = sum(1 for r in self.pack.records if r.healed)
        report.heal_convergence_s = [
            r.convergence_s for r in self.pack.records
        ]
        report.outage_detail = [r.to_dict() for r in self.pack.records]
        report.repairs_performed = self.testbed.transport.repairs_performed
        report.events_processed = self.sim.events_processed
        report.net_revenue = orchestrator.ledger.net_revenue


def run_scenario(
    spec: ScenarioSpec,
    extra_drivers: Optional[List[DomainDriver]] = None,
) -> ScenarioReport:
    """One-shot: build a runner for the spec and run it."""
    return ScenarioRunner(spec, extra_drivers=extra_drivers).run()


def run_named(name: str, seed: int = 0, **overrides) -> ScenarioReport:
    """Run a built-in pack at a seed (optionally overriding spec fields).

    Raises:
        ScenarioError: If the name (or an override field) is unknown.
    """
    spec = build_named(name, seed=seed)
    if overrides:
        payload = spec.to_dict()
        unknown = set(overrides) - set(payload)
        if unknown:
            raise ScenarioError(f"unknown override fields: {sorted(unknown)}")
        payload.update(overrides)
        spec = ScenarioSpec.from_dict(payload)
    return run_scenario(spec)
