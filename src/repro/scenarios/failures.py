"""Failure packs: scheduled DC/link/eNB outages *with restoration*.

A :class:`FailurePack` translates the declarative
:class:`~repro.scenarios.spec.FailureSpec` entries onto the concrete
testbed and schedules the fail/restore pairs on the simulator:

* ``link``  → both directions of one duplex transport link
  (``<target>-fwd`` / ``<target>-rev``);
* ``dc``    → the datacenter's attachment links (``switch-edge`` for
  the edge DC — which has *no detour*, so the heal path can only wait
  for restoration; ``core-rtr-dc`` for the core DC);
* ``enb``   → all four directed links of the cell's two uplinks
  (mmWave + µwave), isolating the cell;
* ``driver-stall`` → arms the stall gate of a chaos
  :class:`~repro.drivers.mock.MockDriver` for the window.

Overlapping windows are safe: link state is reference-counted, so a
link shared by two concurrent outages only restores when the *last*
window ends — the "failure strikes again mid-heal" case the chaos
suites pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.drivers.mock import MockDriver
from repro.scenarios.spec import FailureSpec, ScenarioError
from repro.sim.engine import Simulator
from repro.transport.topology import Topology, TopologyError

__all__ = ["FailurePack", "OutageRecord"]

#: Huge stall budget ≈ "every op during the window hangs".
_STALL_ALL = 1_000_000


@dataclass
class OutageRecord:
    """One scheduled outage, annotated by the runner as it progresses."""

    kind: str
    target: str
    start_s: float
    end_s: float
    link_ids: Sequence[str] = ()
    #: Sim time the runner first observed every active path healthy
    #: again after ``start_s`` (None = never converged inside the run).
    converged_at: Optional[float] = None

    @property
    def healed(self) -> bool:
        return self.converged_at is not None

    @property
    def convergence_s(self) -> Optional[float]:
        if self.converged_at is None:
            return None
        return self.converged_at - self.start_s

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "links": list(self.link_ids),
            "converged_at": self.converged_at,
            "convergence_s": self.convergence_s,
            "healed": self.healed,
        }


#: DC id → base link id of its (sole) attachment in the canonical testbed.
_DC_ATTACHMENT = {
    "edge-dc": ("switch-edge",),
    "core-dc": ("core-rtr-dc",),
}


class FailurePack:
    """Schedules a spec's outages onto one testbed + simulator."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        failures: Sequence[FailureSpec],
        chaos_drivers: Optional[Dict[str, MockDriver]] = None,
        on_event: Optional[Callable[[str, FailureSpec], None]] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.chaos_drivers = chaos_drivers or {}
        self.on_event = on_event
        #: link id → number of outage windows currently holding it down.
        self._down_count: Dict[str, int] = {}
        self.records: List[OutageRecord] = [
            OutageRecord(
                kind=f.kind,
                target=f.target,
                start_s=f.start_s,
                end_s=f.end_s,
                link_ids=self._resolve_links(f),
            )
            for f in failures
        ]
        self._specs = list(failures)

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------
    def _resolve_links(self, failure: FailureSpec) -> List[str]:
        """Concrete directed link ids a failure takes down (empty for
        driver-stall outages)."""
        if failure.kind == "link":
            return self._duplex(failure.target)
        if failure.kind == "dc":
            bases = _DC_ATTACHMENT.get(failure.target)
            if bases is None:
                raise ScenarioError(
                    f"unknown dc {failure.target!r}; "
                    f"expected one of {sorted(_DC_ATTACHMENT)}"
                )
            return [lid for base in bases for lid in self._duplex(base)]
        if failure.kind == "enb":
            return [
                lid
                for base in (f"{failure.target}-mmwave", f"{failure.target}-uwave")
                for lid in self._duplex(base)
            ]
        if failure.kind == "driver-stall":
            if failure.target not in self.chaos_drivers:
                raise ScenarioError(
                    f"driver-stall target {failure.target!r} is not a "
                    f"registered chaos driver"
                )
            return []
        raise ScenarioError(f"unknown failure kind {failure.kind!r}")

    def _duplex(self, base: str) -> List[str]:
        """Both directions of a duplex link; accepts an already-directed
        id verbatim."""
        if base.endswith("-fwd") or base.endswith("-rev"):
            ids = [base]
        else:
            ids = [f"{base}-fwd", f"{base}-rev"]
        for lid in ids:
            try:
                self.topology.link(lid)
            except TopologyError:
                raise ScenarioError(f"no such transport link {lid!r}") from None
        return ids

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self) -> None:
        """Put every fail/restore pair on the simulator."""
        for record, spec in zip(self.records, self._specs):
            self.sim.schedule_at(
                record.start_s,
                lambda r=record, s=spec: self._strike(r, s),
                name=f"fail-{record.kind}-{record.target}",
            )
            self.sim.schedule_at(
                record.end_s,
                lambda r=record, s=spec: self._restore(r, s),
                name=f"restore-{record.kind}-{record.target}",
            )

    def _strike(self, record: OutageRecord, spec: FailureSpec) -> None:
        for lid in record.link_ids:
            count = self._down_count.get(lid, 0)
            if count == 0:
                self.topology.link(lid).fail()
            self._down_count[lid] = count + 1
        if record.kind == "driver-stall":
            self.chaos_drivers[record.target].stall(count=_STALL_ALL)
        if self.on_event is not None:
            self.on_event("failure.strike", spec)

    def _restore(self, record: OutageRecord, spec: FailureSpec) -> None:
        for lid in record.link_ids:
            count = self._down_count.get(lid, 0) - 1
            if count <= 0:
                self._down_count.pop(lid, None)
                # Reference count reached zero: no other window holds
                # the link, bring it back.
                self.topology.link(lid).restore()
            else:
                self._down_count[lid] = count
        if record.kind == "driver-stall":
            self.chaos_drivers[record.target].release_stall()
        if self.on_event is not None:
            self.on_event("failure.restore", spec)

    # ------------------------------------------------------------------
    # Runner hooks
    # ------------------------------------------------------------------
    def note_all_healthy(self, now: float) -> None:
        """Mark outages converged: every active path is healthy at ``now``."""
        for record in self.records:
            if record.converged_at is None and record.start_s <= now:
                record.converged_at = now

    def any_links_down(self) -> bool:
        return bool(self._down_count)
