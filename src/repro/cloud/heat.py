"""Heat-style stack orchestration.

The demo performs "dynamic configurations of computational resources
through Heat".  A :class:`HeatTemplate` declares a named group of VM
resources; launching it creates a :class:`HeatStack` whose lifecycle is
atomic: either every VM boots or none stays.  The orchestrator deploys
one stack per slice (its vEPC) and deletes it on slice expiry.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List

from repro.cloud.datacenter import CloudError, Datacenter, VirtualMachine
from repro.cloud.flavors import Flavor
from repro.cloud.placement import PlacementError, PlacementPolicy


class StackState(enum.Enum):
    """Heat stack lifecycle."""

    CREATE_IN_PROGRESS = "create_in_progress"
    CREATE_COMPLETE = "create_complete"
    CREATE_FAILED = "create_failed"
    DELETE_COMPLETE = "delete_complete"


@dataclass(frozen=True)
class StackResource:
    """One resource declaration inside a template (a VM to boot)."""

    name: str
    flavor: Flavor


@dataclass(frozen=True)
class HeatTemplate:
    """Declarative description of a stack.

    Attributes:
        name: Template name (e.g. ``"vEPC"``).
        resources: VM declarations to instantiate.
    """

    name: str
    resources: tuple

    def __post_init__(self) -> None:
        if not self.resources:
            raise CloudError(f"template {self.name} declares no resources")

    @property
    def total_vcpus(self) -> int:
        """Aggregate vCPUs the template needs."""
        return sum(r.flavor.vcpus for r in self.resources)

    @property
    def total_ram_gb(self) -> float:
        """Aggregate RAM the template needs."""
        return sum(r.flavor.ram_gb for r in self.resources)

    def flavors(self) -> List[Flavor]:
        """Flavor list, one entry per resource."""
        return [r.flavor for r in self.resources]


_stack_counter = itertools.count(1)


class HeatStack:
    """A launched instance of a template inside one datacenter."""

    def __init__(self, template: HeatTemplate, datacenter: Datacenter, owner: str = "") -> None:
        self.stack_id = f"stack-{next(_stack_counter):06d}"
        self.template = template
        self.datacenter = datacenter
        self.owner = owner
        self.state = StackState.CREATE_IN_PROGRESS
        self.vms: Dict[str, VirtualMachine] = {}

    def create(self, policy: PlacementPolicy) -> None:
        """Boot every declared VM atomically.

        Raises:
            CloudError: If capacity is insufficient (state →
                CREATE_FAILED, nothing placed).
        """
        if self.state is not StackState.CREATE_IN_PROGRESS:
            raise CloudError(f"stack {self.stack_id} already {self.state.value}")
        vms = [
            VirtualMachine(f"{self.owner or self.template.name}-{r.name}", r.flavor, owner=self.stack_id)
            for r in self.template.resources
        ]
        try:
            policy.place_all(self.datacenter.nodes(), vms, datacenter=self.datacenter)
        except PlacementError as exc:
            self.state = StackState.CREATE_FAILED
            raise CloudError(
                f"stack {self.stack_id} failed in {self.datacenter.dc_id}: {exc}"
            ) from exc
        # Keyed by *resource* name so callers address VMs as declared in
        # the template ("mme", "pgw", ...), not by the prefixed VM name.
        self.vms = {
            resource.name: vm
            for resource, vm in zip(self.template.resources, vms)
        }
        self.state = StackState.CREATE_COMPLETE

    def delete(self) -> None:
        """Destroy every VM of the stack (idempotent once deleted)."""
        if self.state is StackState.DELETE_COMPLETE:
            return
        for vm in self.vms.values():
            if vm.node_id is not None:
                self.datacenter.node(vm.node_id).destroy(vm.vm_id)
        self.state = StackState.DELETE_COMPLETE

    def vm(self, name: str) -> VirtualMachine:
        """Lookup a stack VM by resource name.

        Raises:
            CloudError: If the stack has no such VM.
        """
        try:
            return self.vms[name]
        except KeyError:
            raise CloudError(f"stack {self.stack_id} has no VM {name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeatStack({self.stack_id}, {self.template.name}, {self.state.value})"


__all__ = ["HeatStack", "HeatTemplate", "StackResource", "StackState"]
