"""Compute nodes, VMs and datacenters.

Two tiers mirror the demo testbed: a small EDGE datacenter co-located
with the access network (low added latency, scarce capacity) and a large
CORE datacenter behind extra transport hops.  The latency-vs-capacity
tension between the tiers is what makes DC selection a real decision in
the multi-domain allocator.
"""

from __future__ import annotations

import enum
import itertools
from bisect import bisect_left, insort
from typing import Callable, Dict, List, Optional

from repro.cloud.flavors import Flavor


class CloudError(RuntimeError):
    """Raised on compute-capacity or lifecycle violations."""


class VmState(enum.Enum):
    """Nova-ish VM lifecycle."""

    BUILDING = "building"
    ACTIVE = "active"
    DELETED = "deleted"
    ERROR = "error"


_vm_counter = itertools.count(1)


class VirtualMachine:
    """A placed VM instance."""

    def __init__(self, name: str, flavor: Flavor, owner: str = "") -> None:
        self.vm_id = f"vm-{next(_vm_counter):06d}"
        self.name = name
        self.flavor = flavor
        self.owner = owner  # slice or stack that created the VM
        self.state = VmState.BUILDING
        self.node_id: Optional[str] = None

    def activate(self) -> None:
        """BUILDING → ACTIVE (boot complete)."""
        if self.state is not VmState.BUILDING:
            raise CloudError(f"cannot activate VM in state {self.state.value}")
        self.state = VmState.ACTIVE

    def mark_error(self) -> None:
        """Any state → ERROR (failure injection)."""
        self.state = VmState.ERROR

    def delete(self) -> None:
        """Terminal delete."""
        self.state = VmState.DELETED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VM({self.vm_id}, {self.name}, {self.flavor.name}, {self.state.value})"


class ComputeNode:
    """One hypervisor with fixed vCPU/RAM/disk capacity."""

    def __init__(
        self,
        node_id: str,
        vcpus: int = 32,
        ram_gb: float = 128.0,
        disk_gb: float = 1_000.0,
    ) -> None:
        if vcpus <= 0 or ram_gb <= 0 or disk_gb <= 0:
            raise CloudError("node capacities must be positive")
        self.node_id = node_id
        self.total_vcpus = int(vcpus)
        self.total_ram_gb = float(ram_gb)
        self.total_disk_gb = float(disk_gb)
        self._vms: Dict[str, VirtualMachine] = {}
        # Running usage totals maintained by boot/destroy so the
        # accounting properties below are O(1) instead of O(#VMs);
        # ``check_invariants`` recomputes and cross-checks them.  Float
        # totals reset to exact zero whenever the node empties so drift
        # cannot accumulate across VM churn.
        self._used_vcpus = 0
        self._used_ram_gb = 0.0
        self._used_disk_gb = 0.0
        #: Invoked with (Δvcpus, Δram, Δdisk) after boot/destroy; the
        #: owning Datacenter hooks this to keep its aggregates O(1).
        self.on_change: Optional[Callable[[int, float, float], None]] = None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def used_vcpus(self) -> int:
        """vCPUs consumed by non-deleted VMs."""
        return self._used_vcpus

    @property
    def used_ram_gb(self) -> float:
        """RAM consumed by non-deleted VMs."""
        return self._used_ram_gb

    @property
    def used_disk_gb(self) -> float:
        """Disk consumed by non-deleted VMs."""
        return self._used_disk_gb

    @property
    def free_vcpus(self) -> int:
        """Uncommitted vCPUs."""
        return self.total_vcpus - self.used_vcpus

    @property
    def free_ram_gb(self) -> float:
        """Uncommitted RAM."""
        return self.total_ram_gb - self.used_ram_gb

    @property
    def free_disk_gb(self) -> float:
        """Uncommitted disk."""
        return self.total_disk_gb - self.used_disk_gb

    def can_host(self, flavor: Flavor) -> bool:
        """Whether the flavor fits in current free resources."""
        return flavor.fits_within(self.free_vcpus, self.free_ram_gb, self.free_disk_gb)

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------
    def boot(self, vm: VirtualMachine) -> None:
        """Place and activate a VM on this node.

        Raises:
            CloudError: If capacity is insufficient.
        """
        if not self.can_host(vm.flavor):
            raise CloudError(
                f"node {self.node_id} cannot host {vm.flavor.name} "
                f"(free: {self.free_vcpus} vCPU, {self.free_ram_gb:.1f} GiB RAM)"
            )
        vm.node_id = self.node_id
        self._vms[vm.vm_id] = vm
        vm.activate()
        flavor = vm.flavor
        self._used_vcpus += flavor.vcpus
        self._used_ram_gb += flavor.ram_gb
        self._used_disk_gb += flavor.disk_gb
        if self.on_change is not None:
            self.on_change(flavor.vcpus, flavor.ram_gb, flavor.disk_gb)

    def destroy(self, vm_id: str) -> None:
        """Delete a VM and reclaim its resources.

        Raises:
            CloudError: If the VM is not on this node.
        """
        vm = self._vms.pop(vm_id, None)
        if vm is None:
            raise CloudError(f"VM {vm_id} not on node {self.node_id}")
        vm.delete()
        flavor = vm.flavor
        self._used_vcpus -= flavor.vcpus
        self._used_ram_gb -= flavor.ram_gb
        self._used_disk_gb -= flavor.disk_gb
        if not self._vms:
            self._used_ram_gb = 0.0
            self._used_disk_gb = 0.0
        if self.on_change is not None:
            self.on_change(-flavor.vcpus, -flavor.ram_gb, -flavor.disk_gb)

    def vms(self) -> List[VirtualMachine]:
        """VMs currently accounted on this node."""
        return list(self._vms.values())

    def check_invariants(self) -> None:
        """Assert capacity invariants (used by property tests).

        Also recomputes the delta-maintained usage totals from the VM
        table and fails if they drifted from ground truth.
        """
        vcpus = sum(
            vm.flavor.vcpus for vm in self._vms.values() if vm.state is not VmState.DELETED
        )
        ram = sum(
            vm.flavor.ram_gb for vm in self._vms.values() if vm.state is not VmState.DELETED
        )
        disk = sum(
            vm.flavor.disk_gb for vm in self._vms.values() if vm.state is not VmState.DELETED
        )
        if (
            vcpus != self._used_vcpus
            or abs(ram - self._used_ram_gb) > 1e-6
            or abs(disk - self._used_disk_gb) > 1e-6
        ):
            raise CloudError(
                f"{self.node_id}: running usage totals "
                f"({self._used_vcpus} vCPU, {self._used_ram_gb} GiB RAM, "
                f"{self._used_disk_gb} GiB disk) drifted from recomputed "
                f"({vcpus} vCPU, {ram} GiB RAM, {disk} GiB disk)"
            )
        if self.used_vcpus > self.total_vcpus:
            raise CloudError(f"{self.node_id}: vCPU overcommit")
        if self.used_ram_gb > self.total_ram_gb + 1e-9:
            raise CloudError(f"{self.node_id}: RAM overcommit")
        if self.used_disk_gb > self.total_disk_gb + 1e-9:
            raise CloudError(f"{self.node_id}: disk overcommit")


class DatacenterTier(enum.Enum):
    """Edge (near RAN, scarce) vs. core (far, plentiful)."""

    EDGE = "edge"
    CORE = "core"


class Datacenter:
    """A named pool of compute nodes at one network location.

    Attributes:
        dc_id: Identifier.
        tier: EDGE or CORE.
        gateway_node: Transport-graph node where this DC attaches.
        processing_delay_ms: Added user-plane latency of services hosted
            here (virtualization + DC fabric), used in the latency budget.
    """

    def __init__(
        self,
        dc_id: str,
        tier: DatacenterTier,
        nodes: List[ComputeNode],
        gateway_node: Optional[str] = None,
        processing_delay_ms: float = 1.0,
    ) -> None:
        if not nodes:
            raise CloudError(f"datacenter {dc_id} needs at least one node")
        if processing_delay_ms < 0:
            raise CloudError("processing delay cannot be negative")
        self.dc_id = dc_id
        self.tier = tier
        self.gateway_node = gateway_node or f"{dc_id}-gw"
        self.processing_delay_ms = float(processing_delay_ms)
        self._nodes: Dict[str, ComputeNode] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise CloudError(f"duplicate node id {node.node_id}")
            self._nodes[node.node_id] = node
        # DC-level aggregates maintained from node boot/destroy deltas
        # so the fleet-wide capacity queries are O(1) per DC instead of
        # O(#nodes); the node inventory is fixed after construction.
        self._total_vcpus = sum(n.total_vcpus for n in self._nodes.values())
        self._free_vcpus = sum(n.free_vcpus for n in self._nodes.values())
        self._free_ram_gb = sum(n.free_ram_gb for n in self._nodes.values())
        # Delta-maintained best-fit index: nodes sorted by
        # (free_vcpus, free_ram_gb, node_id) — exactly the key
        # BestFitPlacement minimizes over — so a placement query walks
        # forward from the first node with enough vCPUs instead of
        # scanning the whole inventory per VM.
        self._fit_index: List[tuple] = []
        self._fit_entry: Dict[str, tuple] = {}
        for node in self._nodes.values():
            entry = (node.free_vcpus, node.free_ram_gb, node.node_id)
            insort(self._fit_index, entry)
            self._fit_entry[node.node_id] = entry
            node.on_change = (
                lambda dv, dr, dd, node_id=node.node_id: self._node_changed(
                    node_id, dv, dr, dd
                )
            )

    def _node_changed(
        self, node_id: str, d_vcpus: int, d_ram_gb: float, d_disk_gb: float
    ) -> None:
        self._free_vcpus -= d_vcpus
        self._free_ram_gb -= d_ram_gb
        node = self._nodes[node_id]
        old = self._fit_entry[node_id]
        entry = (node.free_vcpus, node.free_ram_gb, node_id)
        if entry == old:
            return
        self._fit_index.pop(bisect_left(self._fit_index, old))
        insort(self._fit_index, entry)
        self._fit_entry[node_id] = entry

    def best_fit_node(self, flavor: Flavor) -> Optional[ComputeNode]:
        """Least-free node that can host ``flavor`` (best-fit order).

        Walks the sorted index forward from the first node with enough
        free vCPUs; the first node whose RAM/disk also fit is exactly
        ``min(fitting, key=(free_vcpus, free_ram_gb, node_id))`` — the
        node :class:`~repro.cloud.placement.BestFitPlacement` picks.
        Returns None when nothing fits.
        """
        start = bisect_left(self._fit_index, (flavor.vcpus,))
        for free_vcpus, _free_ram, node_id in self._fit_index[start:]:
            node = self._nodes[node_id]
            if node.can_host(flavor):
                return node
        return None

    def verify_fit_index(self) -> None:
        """Cross-check the best-fit index against a recompute.

        Raises:
            CloudError: If any entry, the sort order, or the DC-level
                aggregates drifted from ground truth (property tests
                call this after randomized boot/destroy schedules).
        """
        if sorted(self._fit_index) != self._fit_index:
            raise CloudError(f"{self.dc_id}: best-fit index out of order")
        if len(self._fit_index) != len(self._nodes):
            raise CloudError(f"{self.dc_id}: best-fit index size drifted")
        for node_id, node in self._nodes.items():
            expected = (node.free_vcpus, node.free_ram_gb, node_id)
            if self._fit_entry.get(node_id) != expected:
                raise CloudError(
                    f"{self.dc_id}: index entry for {node_id} is "
                    f"{self._fit_entry.get(node_id)}, expected {expected}"
                )
        if self._free_vcpus != sum(n.free_vcpus for n in self._nodes.values()):
            raise CloudError(f"{self.dc_id}: free-vCPU aggregate drifted")
        if (
            abs(self._free_ram_gb - sum(n.free_ram_gb for n in self._nodes.values()))
            > 1e-6
        ):
            raise CloudError(f"{self.dc_id}: free-RAM aggregate drifted")

    def nodes(self) -> List[ComputeNode]:
        """All hypervisors in this DC."""
        return list(self._nodes.values())

    def node(self, node_id: str) -> ComputeNode:
        """Lookup a hypervisor."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise CloudError(f"unknown node {node_id} in {self.dc_id}") from None

    @property
    def total_vcpus(self) -> int:
        """Aggregate vCPU capacity."""
        return self._total_vcpus

    @property
    def free_vcpus(self) -> int:
        """Aggregate free vCPUs."""
        return self._free_vcpus

    @property
    def free_ram_gb(self) -> float:
        """Aggregate free RAM."""
        return self._free_ram_gb

    def can_host_flavors(self, flavors: List[Flavor]) -> bool:
        """Whether the flavor list fits via first-fit-decreasing (no state change)."""
        if not flavors:
            return True
        need_vcpus = sum(f.vcpus for f in flavors)
        # Exact negative fast path: vCPUs are integers (no epsilon in
        # ``fits_within``), so FFD cannot place more than the aggregate.
        if need_vcpus > self._free_vcpus:
            return False
        # O(1) positive fast path: if the roomiest node alone hosts the
        # whole set, FFD provably succeeds — at every step the flavors
        # not yet placed on that node still fit in its remaining free
        # space, so no flavor can fail to place.
        if self._fit_index:
            roomiest = self._nodes[self._fit_index[-1][2]]
            if (
                need_vcpus <= roomiest.free_vcpus
                and sum(f.ram_gb for f in flavors) <= roomiest.free_ram_gb
                and sum(f.disk_gb for f in flavors) <= roomiest.free_disk_gb
            ):
                return True
        free = [
            [n.free_vcpus, n.free_ram_gb, n.free_disk_gb] for n in self._nodes.values()
        ]
        for flv in sorted(flavors, key=lambda f: f.vcpus, reverse=True):
            placed = False
            for slot in free:
                if flv.fits_within(slot[0], slot[1], slot[2]):
                    slot[0] -= flv.vcpus
                    slot[1] -= flv.ram_gb
                    slot[2] -= flv.disk_gb
                    placed = True
                    break
            if not placed:
                return False
        return True

    def utilization(self) -> dict:
        """Telemetry snapshot for the cloud controller."""
        return {
            "dc_id": self.dc_id,
            "tier": self.tier.value,
            "total_vcpus": self.total_vcpus,
            "free_vcpus": self.free_vcpus,
            "free_ram_gb": self.free_ram_gb,
            "nodes": [
                {
                    "node_id": n.node_id,
                    "used_vcpus": n.used_vcpus,
                    "total_vcpus": n.total_vcpus,
                    "n_vms": len(n.vms()),
                }
                for n in self._nodes.values()
            ],
        }


__all__ = [
    "CloudError",
    "ComputeNode",
    "Datacenter",
    "DatacenterTier",
    "VirtualMachine",
    "VmState",
]
