"""VM placement policies (bin packing over compute nodes).

The demo's OpenStack scheduler places vEPC VMs; we provide the three
classic heuristics so the placement ablation (bench D6) can compare
consolidation (best-fit) against load spreading (worst-fit).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.cloud.datacenter import ComputeNode, Datacenter, VirtualMachine
from repro.cloud.flavors import Flavor


class PlacementError(RuntimeError):
    """Raised when a VM set cannot be placed."""


class PlacementPolicy(ABC):
    """Chooses a compute node for each VM to boot."""

    #: Policies whose choice order matches the datacenter's
    #: delta-maintained best-fit index set this True; ``place_all`` then
    #: answers each pick from the index instead of scanning ``nodes``.
    uses_dc_index = False

    @abstractmethod
    def choose_node(self, nodes: List[ComputeNode], flavor: Flavor) -> Optional[ComputeNode]:
        """Node to host ``flavor``, or None if nothing fits."""

    def place_all(
        self,
        nodes: List[ComputeNode],
        vms: List[VirtualMachine],
        datacenter: Optional[Datacenter] = None,
    ) -> List[ComputeNode]:
        """Boot every VM, atomically: on any failure, roll back all boots.

        Args:
            nodes: Candidate hypervisors, in inventory order.
            vms: VMs to boot, in order.
            datacenter: When given (and it owns exactly ``nodes``),
                index-aware policies answer each pick from the DC's
                sorted free-capacity index instead of scanning.

        Returns:
            The node chosen for each VM, parallel to ``vms``.

        Raises:
            PlacementError: If any VM cannot be placed (state unchanged).
        """
        use_index = datacenter is not None and self.uses_dc_index
        booted: List[tuple] = []
        chosen: List[ComputeNode] = []
        try:
            for vm in vms:
                if use_index:
                    node = datacenter.best_fit_node(vm.flavor)
                else:
                    node = self.choose_node(nodes, vm.flavor)
                if node is None:
                    raise PlacementError(
                        f"no node fits {vm.flavor.name} for VM {vm.name}"
                    )
                node.boot(vm)
                booted.append((node, vm))
                chosen.append(node)
        except PlacementError:
            for node, vm in booted:
                node.destroy(vm.vm_id)
            raise
        return chosen

    @staticmethod
    def _fitting(nodes: List[ComputeNode], flavor: Flavor) -> List[ComputeNode]:
        return [n for n in nodes if n.can_host(flavor)]


class FirstFitPlacement(PlacementPolicy):
    """First node (in inventory order) that fits — fastest decision."""

    def choose_node(self, nodes: List[ComputeNode], flavor: Flavor) -> Optional[ComputeNode]:
        fitting = self._fitting(nodes, flavor)
        return fitting[0] if fitting else None


class BestFitPlacement(PlacementPolicy):
    """Node with least free vCPUs that still fits — consolidates load.

    When ``place_all`` is handed the owning datacenter the pick comes
    from the DC's sorted free-capacity index (same order as the ``min``
    below) instead of re-scanning every node per VM.
    """

    uses_dc_index = True

    def choose_node(self, nodes: List[ComputeNode], flavor: Flavor) -> Optional[ComputeNode]:
        fitting = self._fitting(nodes, flavor)
        if not fitting:
            return None
        return min(fitting, key=lambda n: (n.free_vcpus, n.free_ram_gb, n.node_id))


class WorstFitPlacement(PlacementPolicy):
    """Node with most free vCPUs — spreads load, leaves headroom."""

    def choose_node(self, nodes: List[ComputeNode], flavor: Flavor) -> Optional[ComputeNode]:
        fitting = self._fitting(nodes, flavor)
        if not fitting:
            return None
        return max(fitting, key=lambda n: (n.free_vcpus, n.free_ram_gb, n.node_id))


__all__ = [
    "BestFitPlacement",
    "FirstFitPlacement",
    "PlacementError",
    "PlacementPolicy",
    "WorstFitPlacement",
]
