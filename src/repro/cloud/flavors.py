"""OpenStack-style instance flavors.

A flavor fixes the vCPU/RAM/disk footprint of a VM.  The preset table
covers the sizes the per-slice vEPC components need plus generic sizes
for edge-application workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Flavor:
    """Resource footprint of one VM.

    Attributes:
        name: Flavor identifier (OpenStack naming convention).
        vcpus: Virtual CPU cores.
        ram_gb: Memory in GiB.
        disk_gb: Root disk in GiB.
    """

    name: str
    vcpus: int
    ram_gb: float
    disk_gb: float

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ValueError(f"vcpus must be positive, got {self.vcpus}")
        if self.ram_gb <= 0:
            raise ValueError(f"ram must be positive, got {self.ram_gb}")
        if self.disk_gb <= 0:
            raise ValueError(f"disk must be positive, got {self.disk_gb}")

    def fits_within(self, vcpus: int, ram_gb: float, disk_gb: float) -> bool:
        """Whether this flavor fits in the given free resources."""
        return (
            self.vcpus <= vcpus
            and self.ram_gb <= ram_gb + 1e-9
            and self.disk_gb <= disk_gb + 1e-9
        )


FLAVORS: Dict[str, Flavor] = {
    "m1.tiny": Flavor("m1.tiny", vcpus=1, ram_gb=0.5, disk_gb=1.0),
    "m1.small": Flavor("m1.small", vcpus=1, ram_gb=2.0, disk_gb=20.0),
    "m1.medium": Flavor("m1.medium", vcpus=2, ram_gb=4.0, disk_gb=40.0),
    "m1.large": Flavor("m1.large", vcpus=4, ram_gb=8.0, disk_gb=80.0),
    "m1.xlarge": Flavor("m1.xlarge", vcpus=8, ram_gb=16.0, disk_gb=160.0),
}


def flavor(name: str) -> Flavor:
    """Lookup a preset flavor by name.

    Raises:
        KeyError: If no preset with that name exists.
    """
    if name not in FLAVORS:
        raise KeyError(f"unknown flavor {name!r}; presets: {sorted(FLAVORS)}")
    return FLAVORS[name]


__all__ = ["FLAVORS", "Flavor", "flavor"]
