"""Cloud/edge datacenter substrate.

Replaces the demo's two OpenStack deployments (edge + core) and their
Heat orchestration: compute nodes with vCPU/RAM/disk capacity, OpenStack
style flavors, bin-packing VM placement policies, Heat-like stack
templates that instantiate groups of VMs atomically, and the cloud
domain controller the orchestrator calls to deploy per-slice vEPCs.
"""

from repro.cloud.flavors import Flavor, FLAVORS
from repro.cloud.datacenter import (
    CloudError,
    ComputeNode,
    Datacenter,
    DatacenterTier,
    VirtualMachine,
    VmState,
)
from repro.cloud.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    PlacementError,
    PlacementPolicy,
    WorstFitPlacement,
)
from repro.cloud.heat import HeatStack, HeatTemplate, StackResource, StackState
from repro.cloud.controller import CloudAllocation, CloudController

__all__ = [
    "BestFitPlacement",
    "CloudAllocation",
    "CloudController",
    "CloudError",
    "ComputeNode",
    "Datacenter",
    "DatacenterTier",
    "FirstFitPlacement",
    "Flavor",
    "FLAVORS",
    "HeatStack",
    "HeatTemplate",
    "PlacementError",
    "PlacementPolicy",
    "StackResource",
    "StackState",
    "VirtualMachine",
    "VmState",
    "WorstFitPlacement",
]
