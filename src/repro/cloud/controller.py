"""Cloud domain controller.

Third hierarchical controller of Fig. 1.  Owns the edge and core
datacenters, answers placement feasibility queries, launches per-slice
Heat stacks (the vEPC) in the datacenter the multi-domain allocator
selected, and reports utilization.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.datacenter import CloudError, Datacenter, DatacenterTier
from repro.cloud.heat import HeatStack, HeatTemplate
from repro.cloud.placement import BestFitPlacement, PlacementPolicy


@dataclass(frozen=True)
class CloudAllocation:
    """Result of deploying a slice's compute.

    Attributes:
        dc_id: Hosting datacenter.
        stack_id: The Heat stack instantiated for the slice.
        vcpus: Total vCPUs committed.
        processing_delay_ms: DC's user-plane latency contribution.
    """

    dc_id: str
    stack_id: str
    vcpus: int
    processing_delay_ms: float


class CloudController:
    """Controller for the edge + core datacenters."""

    def __init__(
        self,
        datacenters: List[Datacenter],
        placement: Optional[PlacementPolicy] = None,
    ) -> None:
        if not datacenters:
            raise CloudError("cloud controller needs at least one datacenter")
        self._dcs: Dict[str, Datacenter] = {}
        for dc in datacenters:
            if dc.dc_id in self._dcs:
                raise CloudError(f"duplicate datacenter id {dc.dc_id}")
            self._dcs[dc.dc_id] = dc
        self.placement = placement or BestFitPlacement()
        self._stacks: Dict[str, HeatStack] = {}  # slice_id -> stack
        #: Serialization lock for this controller: the methods here are
        #: not thread-safe, so every concurrent caller must hold it
        #: across a call.  ``build_default_registry`` wires it as the
        #: serial lock of *both* the cloud and EPC drivers (the EPC
        #: binds to the stacks deployed here), so under the batch
        #: install planner this controller sees one caller at a time.
        self.lock = threading.RLock()

    # ------------------------------------------------------------------
    # Inventory / queries
    # ------------------------------------------------------------------
    def datacenter(self, dc_id: str) -> Datacenter:
        """Lookup a datacenter."""
        try:
            return self._dcs[dc_id]
        except KeyError:
            raise CloudError(f"unknown datacenter {dc_id}") from None

    def datacenters(self, tier: Optional[DatacenterTier] = None) -> List[Datacenter]:
        """All datacenters, optionally filtered by tier."""
        dcs = list(self._dcs.values())
        if tier is not None:
            dcs = [dc for dc in dcs if dc.tier is tier]
        return dcs

    def feasible_dcs(self, template: HeatTemplate) -> List[Datacenter]:
        """Datacenters that can currently host the template."""
        return [dc for dc in self._dcs.values() if dc.can_host_flavors(template.flavors())]

    def stack_of(self, slice_id: str) -> Optional[HeatStack]:
        """The slice's Heat stack (None if absent)."""
        return self._stacks.get(slice_id)

    # ------------------------------------------------------------------
    # Slice lifecycle
    # ------------------------------------------------------------------
    def deploy(self, slice_id: str, template: HeatTemplate, dc_id: str) -> CloudAllocation:
        """Launch the slice's stack in ``dc_id``.

        Raises:
            CloudError: If the slice already has a stack or the DC lacks
                capacity (stack creation is atomic).
        """
        if slice_id in self._stacks:
            raise CloudError(f"slice {slice_id} already has a stack")
        dc = self.datacenter(dc_id)
        stack = HeatStack(template, dc, owner=slice_id)
        stack.create(self.placement)
        self._stacks[slice_id] = stack
        return CloudAllocation(
            dc_id=dc_id,
            stack_id=stack.stack_id,
            vcpus=template.total_vcpus,
            processing_delay_ms=dc.processing_delay_ms,
        )

    def teardown(self, slice_id: str) -> None:
        """Delete the slice's stack and reclaim its resources."""
        stack = self._stacks.pop(slice_id, None)
        if stack is None:
            raise CloudError(f"slice {slice_id} has no stack")
        stack.delete()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def utilization(self) -> dict:
        """Domain telemetry for the monitoring collector."""
        return {
            "domain": "cloud",
            "datacenters": [dc.utilization() for dc in self._dcs.values()],
            "total_vcpus": sum(dc.total_vcpus for dc in self._dcs.values()),
            "free_vcpus": sum(dc.free_vcpus for dc in self._dcs.values()),
            "active_stacks": len(self._stacks),
        }


__all__ = ["CloudAllocation", "CloudController"]
