"""Discrete-event simulation substrate.

The demo paper runs on a live LTE testbed; every reproduction experiment
here instead advances a deterministic discrete-event simulator.  The
engine is deliberately small: a time-ordered event heap, named timers and
periodic processes, and a seeded random-stream registry so that every
experiment is reproducible bit-for-bit from its seed.
"""

from repro.sim.engine import Event, EventHandle, Simulator
from repro.sim.processes import PeriodicProcess
from repro.sim.randomness import RandomStreams

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "PeriodicProcess",
    "RandomStreams",
]
