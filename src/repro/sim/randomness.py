"""Seeded random-stream registry.

Every stochastic component (traffic sampling, CQI processes, request
arrivals, ...) draws from its own named :class:`numpy.random.Generator`.
Streams are derived from a single experiment seed with
``numpy.random.SeedSequence.spawn``-style keying, so adding a new
component never perturbs the draws of existing ones — a property the
regression tests rely on.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """Registry of independent, reproducibly-derived random generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root experiment seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The per-stream seed mixes the root seed with a CRC32 of the
        stream name, so the mapping name→stream is stable across runs
        and independent of creation order.
        """
        if name not in self._streams:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def names(self) -> list[str]:
        """Names of streams created so far, in creation order."""
        return list(self._streams)

    def fork(self, salt: int) -> "RandomStreams":
        """Derive a fresh registry for a sub-experiment (e.g. one sweep point)."""
        return RandomStreams(seed=(self._seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)


__all__ = ["RandomStreams"]
