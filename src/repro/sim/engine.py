"""Core discrete-event simulation engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
guarantees a deterministic total order for events scheduled at the same
instant with the same priority, which in turn makes every experiment in
this repository reproducible from its random seed alone.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: Absolute simulation time (seconds) at which the event fires.
        priority: Tie-break among events at the same time; lower fires first.
        seq: Monotonic sequence number assigned by the simulator.
        callback: Zero-argument callable invoked when the event fires.
        name: Optional human-readable label used in traces.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle that allows cancelling a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time of the underlying event."""
        return self._event.time

    @property
    def name(self) -> str:
        """Label of the underlying event."""
        return self._event.name

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True


class Simulator:
    """Minimal but complete discrete-event simulator.

    The simulator owns the virtual clock.  Components schedule callbacks
    with :meth:`schedule` (relative delay) or :meth:`schedule_at`
    (absolute time) and the experiment driver advances the clock with
    :meth:`run_until`, :meth:`run` or :meth:`step`.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
        >>> sim.run_until(5.0)
        >>> fired
        [2.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._trace: Optional[list[tuple[float, str]]] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for event in self._queue if not event.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Args:
            delay: Non-negative offset from the current time.
            callback: Zero-argument callable.
            priority: Tie-break among simultaneous events (lower first).
            name: Optional label recorded in traces.

        Returns:
            Handle that can cancel the event.

        Raises:
            SimulationError: If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, priority=priority, name=name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``.

        Raises:
            SimulationError: If ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = Event(
            time=float(time),
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            name=name,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single earliest pending event.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            if self._trace is not None:
                self._trace.append((event.time, event.name))
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Fire all events with time ≤ ``end_time`` and advance the clock.

        The clock ends exactly at ``end_time`` even if the queue drains
        earlier, so periodic reporting aligned to the horizon is easy.
        """
        if end_time < self._now:
            raise SimulationError(
                f"cannot run backwards to t={end_time} (now t={self._now})"
            )
        self._running = True
        try:
            while self._queue and not self._peek_cancelled_pruned_empty():
                if self._queue[0].time > end_time:
                    break
                if not self._running:
                    break
                self.step()
        finally:
            self._running = False
        self._now = max(self._now, end_time)

    def run(self, max_events: Optional[int] = None) -> int:
        """Fire events until the queue drains (or ``max_events`` fire).

        Returns:
            Number of events fired by this call.
        """
        fired = 0
        self._running = True
        try:
            while self._running and (max_events is None or fired < max_events):
                if not self.step():
                    break
                fired += 1
        finally:
            self._running = False
        return fired

    def stop(self) -> None:
        """Request that the current :meth:`run`/:meth:`run_until` stop."""
        self._running = False

    def _peek_cancelled_pruned_empty(self) -> bool:
        """Drop leading cancelled events; return True if queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return not self._queue

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def enable_trace(self) -> None:
        """Start recording ``(time, name)`` pairs for every fired event."""
        self._trace = []

    def trace(self) -> list[tuple[float, str]]:
        """Return the recorded trace (empty if tracing is disabled)."""
        return list(self._trace or [])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={self.pending}, "
            f"processed={self._events_processed})"
        )


def every(
    sim: Simulator,
    period: float,
    callback: Callable[[], None],
    *,
    start: Optional[float] = None,
    name: str = "periodic",
) -> "PeriodicHandle":
    """Schedule ``callback`` to fire every ``period`` seconds.

    Returns a :class:`PeriodicHandle` that can stop the recurrence.
    """
    if period <= 0:
        raise SimulationError(f"period must be positive, got {period}")
    handle = PeriodicHandle()

    first = sim.now + period if start is None else start

    def _fire() -> None:
        if handle.stopped:
            return
        callback()
        if not handle.stopped:
            handle._event = sim.schedule(period, _fire, name=name)

    handle._event = sim.schedule_at(first, _fire, name=name)
    return handle


class PeriodicHandle:
    """Handle controlling a recurrence created by :func:`every`."""

    def __init__(self) -> None:
        self._event: Optional[EventHandle] = None
        self.stopped = False

    def stop(self) -> None:
        """Stop the recurrence (idempotent)."""
        self.stopped = True
        if self._event is not None:
            self._event.cancel()


__all__ = [
    "Event",
    "EventHandle",
    "PeriodicHandle",
    "SimulationError",
    "Simulator",
    "every",
]
