"""Reusable process abstractions on top of the event engine."""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import EventHandle, SimulationError, Simulator


class PeriodicProcess:
    """A restartable periodic activity bound to a simulator.

    Unlike :func:`repro.sim.engine.every`, this class supports
    start/stop/restart cycles and exposes how many times it has fired,
    which the monitoring collector uses to align telemetry epochs.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        *,
        name: str = "process",
        immediate: bool = False,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._name = name
        self._immediate = immediate
        self._handle: Optional[EventHandle] = None
        self._running = False
        self.fire_count = 0

    @property
    def period(self) -> float:
        """Interval between firings in seconds."""
        return self._period

    @property
    def running(self) -> bool:
        """Whether the process is currently scheduled."""
        return self._running

    def start(self) -> None:
        """Begin firing; the first firing is now (if ``immediate``) or one period out."""
        if self._running:
            return
        self._running = True
        delay = 0.0 if self._immediate else self._period
        self._handle = self._sim.schedule(delay, self._tick, name=self._name)

    def stop(self) -> None:
        """Cease firing (idempotent); :meth:`start` may be called again."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        self.fire_count += 1
        self._callback()
        if self._running:
            self._handle = self._sim.schedule(self._period, self._tick, name=self._name)


__all__ = ["PeriodicProcess"]
