"""Two-phase multi-domain install transaction.

The broker admits a slice only when it embeds end-to-end; a partial
install (radio reserved, path reserved, but no compute) must leave
*zero* residue.  :class:`InstallTransaction` runs the reserve-then-
commit discipline across every registered driver:

1. **Prepare phase** — drivers are prepared in registry order; each
   returns a PREPARED :class:`~repro.drivers.base.Reservation`.
2. **Validation** — an optional cross-domain check (e.g. the end-to-end
   latency budget) runs over the full reservation set.
3. **Commit phase** — every reservation is committed, again in order.

Any :class:`~repro.drivers.base.DriverError` in any phase unwinds the
transaction in reverse order: PREPARED reservations are rolled back,
already-COMMITTED ones released.  The ``on_rollback`` callback fires
per unwound domain so the orchestrator can emit rollback events on the
northbound feed.  Unwind is best-effort: a failing compensation is
reported in the final error but never stops the remaining unwinds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.drivers.base import (
    DomainDriver,
    DomainSpec,
    DriverError,
    Reservation,
    ReservationState,
)
from repro.drivers.registry import DriverRegistry

#: Callback fired for each unwound reservation: (domain, reservation, reason).
RollbackHook = Callable[[str, Reservation, str], None]


class TransactionError(RuntimeError):
    """A multi-domain install failed (after full unwind); names the
    domain whose prepare/validate/commit step broke the transaction."""

    def __init__(self, domain: str, message: str) -> None:
        super().__init__(f"[{domain}] {message}")
        self.domain = domain
        self.message = message


class OperationTimeout(TransactionError):
    """A southbound operation exceeded its per-operation deadline
    (``DriverCapabilities.operation_timeout_s``): the domain is treated
    as hung, the owning job unwinds, and the straggling operation is
    compensated in the background when it eventually completes."""


def compose_unwind_error(
    exc: Exception, failed_domain: str, unwind_errors: List[str]
) -> TransactionError:
    """The one place a transaction-failure message (including
    compensation failures) is composed — shared by the blocking
    :meth:`InstallTransaction.unwind_and_raise` and the async planner's
    deadline-covered unwind chain.  A deadline failure keeps its type
    through the unwind, so callers can tell "domain hung" from "domain
    refused"."""
    if isinstance(exc, (DriverError, TransactionError)):
        message = exc.message
    else:
        message = f"unexpected {type(exc).__name__}: {exc}"
    if unwind_errors:
        message += f" (unwind also failed: {'; '.join(unwind_errors)})"
    error_cls = OperationTimeout if isinstance(exc, OperationTimeout) else TransactionError
    return error_cls(getattr(exc, "domain", failed_domain), message)


class InstallTransaction:
    """Prepare/commit coordinator over a :class:`DriverRegistry`."""

    def __init__(
        self,
        registry: DriverRegistry,
        on_rollback: Optional[RollbackHook] = None,
    ) -> None:
        self.registry = registry
        self.on_rollback = on_rollback

    def run(
        self,
        specs: Mapping[str, DomainSpec],
        validate: Optional[Callable[[Dict[str, Reservation]], None]] = None,
    ) -> Dict[str, Reservation]:
        """Execute the transaction; returns COMMITTED reservations by domain.

        Args:
            specs: One :class:`DomainSpec` per *registered* domain; a
                missing or surplus domain is a caller bug and fails the
                transaction before anything is prepared.
            validate: Optional cross-domain check run after all prepares
                (raise :class:`DriverError` to abort and unwind).

        Raises:
            TransactionError: On any failure, after unwinding every
                already-prepared/committed domain.
        """
        domains = self.registry.domains()
        missing = [d for d in domains if d not in specs]
        surplus = [d for d in specs if d not in domains]
        if missing or surplus:
            raise TransactionError(
                "orchestrator",
                f"spec/domain mismatch (missing={missing}, surplus={surplus})",
            )
        prepared = self.prepare_domains(domains, specs)
        reservations = {res.domain: res for _, res in prepared}
        failed_domain = "orchestrator"
        try:
            if validate is not None:
                validate(reservations)
            for driver, reservation in prepared:
                failed_domain = driver.domain
                driver.commit(reservation)
        except Exception as exc:
            self.unwind_and_raise(prepared, exc, failed_domain)
        return reservations

    def prepare_domains(
        self, domains: List[str], specs: Mapping[str, DomainSpec]
    ) -> List[Tuple[DomainDriver, Reservation]]:
        """Prepare ``domains`` in order; the transaction's prepare phase.

        Exposed so callers staging a transaction in segments (the
        orchestrator's DC-independent prefix) reuse the one
        implementation of the discipline: any failure — including a
        third-party driver raising something other than
        :class:`DriverError` — unwinds everything this call prepared.

        Raises:
            TransactionError: On any failure, after unwinding.
        """
        prepared: List[Tuple[DomainDriver, Reservation]] = []
        failed_domain = "orchestrator"
        try:
            for domain in domains:
                failed_domain = domain
                driver = self.registry.get(domain)
                prepared.append((driver, driver.prepare(specs[domain])))
        except Exception as exc:
            self.unwind_and_raise(prepared, exc, failed_domain)
        return prepared

    def unwind_and_raise(
        self,
        prepared: List[Tuple[DomainDriver, Reservation]],
        exc: Exception,
        failed_domain: str,
    ) -> None:
        """Unwind ``prepared`` and re-raise ``exc`` as TransactionError —
        the one place the failure message (including compensation
        failures) is composed, shared with the batch planner's attempts.
        """
        unwind_errors = self.unwind(prepared, reason=str(exc))
        raise compose_unwind_error(exc, failed_domain, unwind_errors) from exc

    # Backwards-compatible private alias (pre-planner name).
    _unwind_and_raise = unwind_and_raise

    def unwind(
        self, prepared: List[Tuple[DomainDriver, Reservation]], reason: str
    ) -> List[str]:
        """Best-effort reverse unwind of ``(driver, reservation)`` pairs —
        COMMITTED ones released, PREPARED ones rolled back, each firing
        ``on_rollback``.  Returns compensation failures (the single
        implementation of the discipline; the orchestrator reuses it for
        segments it prepares outside :meth:`run`)."""
        errors: List[str] = []
        for driver, reservation in reversed(prepared):
            try:
                if reservation.state is ReservationState.COMMITTED:
                    driver.release(reservation.slice_id)
                elif reservation.state is ReservationState.PREPARED:
                    driver.rollback(reservation)
                else:  # already unwound — nothing to do
                    continue
            except Exception as exc:  # a failing compensation never stops
                errors.append(f"[{driver.domain}] {exc}")  # the remaining unwinds
                continue
            if self.on_rollback is not None:
                self.on_rollback(driver.domain, reservation, reason)
        return errors


__all__ = [
    "InstallTransaction",
    "OperationTimeout",
    "RollbackHook",
    "TransactionError",
    "compose_unwind_error",
]
