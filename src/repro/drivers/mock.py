"""In-memory mock backend honouring the full driver contract.

Three uses:

1. **Conformance reference** — the driver conformance suite runs the
   identical contract tests against :class:`MockDriver` and the four
   real adapters, so any future backend (a real SDN controller, an
   alternate simulator) has an executable specification to pass.
2. **Failure injection** — ``fail_next_prepare`` / ``fail_next_commit``
   let tests (and chaos experiments) break the install transaction at a
   chosen domain and verify the rollback discipline leaves zero
   residue in the other domains.
3. **Concurrency harness** — the mock declares
   ``max_concurrent_installs > 1`` and implements thread-safe hooks, so
   the batch planner's parallel prepare path (and the concurrency
   conformance suite) can hammer it from a thread pool.  The
   ``*_latency_s`` knobs emulate the southbound RPC time a real
   controller would cost; the sleep happens *outside* the pool lock, so
   concurrent operations genuinely overlap (this is what the batched
   install benchmarks measure).
4. **Native async backend** — the mock overrides the futures-based
   lifecycle (``prepare_async``/``commit_async``/``release_async``)
   with *true* asynchronous completion: the emulated southbound latency
   elapses on a background daemon timer that then performs the quick
   bookkeeping and resolves the future, instead of parking a shim
   thread in ``time.sleep``.  A future cancelled before its timer fires
   never touches the backend at all.  The :meth:`stall` chaos hook
   makes the next N operations hang — blocking callers park on a gate,
   async futures simply never resolve — until :meth:`release_stall`,
   which is how the "one hung domain, N healthy jobs" scenario of the
   async planner is driven in tests and in benchmark D8d.

Capacity is a single scalar pool accounted in ``throughput_mbps``
(``effective_fraction`` applied), which is enough to exercise both the
"fits" and "does not fit" branches of every lifecycle path.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, Optional

from repro.drivers.base import (
    BaseDriver,
    DomainSpec,
    DriverCapabilities,
    DriverError,
    Reservation,
)


class MockDriver(BaseDriver):
    """A self-contained driver with a scalar capacity pool."""

    def __init__(
        self,
        domain: str = "mock",
        capacity_mbps: float = 1_000.0,
        max_concurrent_installs: int = 4,
        prepare_latency_s: float = 0.0,
        commit_latency_s: float = 0.0,
        release_latency_s: float = 0.0,
        prepare_after: tuple = (),
        operation_timeout_s: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.domain = domain
        self.capacity_mbps = float(capacity_mbps)
        self.max_concurrent_installs = int(max_concurrent_installs)
        self.prepare_latency_s = float(prepare_latency_s)
        self.commit_latency_s = float(commit_latency_s)
        self.release_latency_s = float(release_latency_s)
        self.prepare_after = tuple(prepare_after)
        self.operation_timeout_s = operation_timeout_s
        #: Guards the capacity pool, the counters and the injection
        #: knobs — *not* held while sleeping, so concurrency overlaps.
        self._pool_lock = threading.RLock()
        self._held: Dict[str, float] = {}  # slice_id -> held mbps
        #: Remaining prepare calls to fail (failure injection).
        self.fail_next_prepare = 0
        #: Remaining commit calls to fail (failure injection).
        self.fail_next_commit = 0
        #: Remaining release calls to fail (failure injection).
        self.fail_next_release = 0
        self.prepares = 0
        self.commits = 0
        self.rollbacks = 0
        self.releases = 0
        # Stall injection: the next `_stall_remaining` operations (of
        # `_stall_kinds`, when set) hang on `_stall_gate` until
        # release_stall() opens it.
        self._stall_gate = threading.Event()
        self._stall_gate.set()
        self._stall_remaining = 0
        self._stall_kinds: Optional[frozenset] = None
        #: Operations that hit the stall gate so far (telemetry).
        self.stalled_ops = 0
        # Set on threads completing an async operation: the emulated
        # latency already elapsed on the timer, so `_nap` skips it.
        self._async_ctx = threading.local()

    # ------------------------------------------------------------------
    # Contract
    # ------------------------------------------------------------------
    def capabilities(self) -> DriverCapabilities:
        return DriverCapabilities(
            domain=self.domain,
            resource_units=("mbps",),
            supports_resize=True,
            supports_repair=True,
            max_concurrent_installs=self.max_concurrent_installs,
            prepare_after=self.prepare_after,
            operation_timeout_s=self.operation_timeout_s,
        )

    # ------------------------------------------------------------------
    # Chaos: stall injection
    # ------------------------------------------------------------------
    def stall(self, count: int = 1, kinds: Optional[tuple] = None) -> None:
        """Make the next ``count`` lifecycle operations hang.

        A stalled operation parks on an internal gate *after* claiming
        its in-flight slot: blocking callers block, async futures stay
        unresolved — exactly a hung southbound controller.  Nothing
        completes until :meth:`release_stall`.

        Args:
            count: How many operations to stall.
            kinds: Restrict which operations consume stall tokens
                (subset of ``{"prepare", "commit", "rollback",
                "release"}``); ``None`` stalls whichever comes next.
                This is how a hang *during the unwind* is driven: e.g.
                ``stall(kinds=("rollback",))`` lets the forward path
                run and hangs the compensation instead.
        """
        with self._pool_lock:
            self._stall_remaining += int(count)
            self._stall_kinds = frozenset(kinds) if kinds is not None else None
            self._stall_gate.clear()

    def release_stall(self) -> None:
        """Open the stall gate: parked operations resume and complete,
        and no further operations stall."""
        with self._pool_lock:
            self._stall_remaining = 0
            self._stall_gate.set()

    @property
    def stalled(self) -> bool:
        """Whether some upcoming operation would hit the stall gate."""
        with self._pool_lock:
            return self._stall_remaining > 0

    def _maybe_stall(self, kind: str) -> None:
        """Consume one stall token (if armed and the kind matches) and
        park until released.  Called at the top of every ``_do_*``
        hook, outside the pool lock, so a stalled operation never
        wedges healthy ones."""
        with self._pool_lock:
            if self._stall_remaining <= 0:
                return
            if self._stall_kinds is not None and kind not in self._stall_kinds:
                return
            self._stall_remaining -= 1
            self.stalled_ops += 1
            gate = self._stall_gate
        gate.wait()

    def _nap(self, seconds: float) -> None:
        """Emulate southbound RPC latency — skipped on async completion
        threads, where the delay already elapsed on the timer."""
        if seconds > 0 and not getattr(self._async_ctx, "active", False):
            time.sleep(seconds)

    # ------------------------------------------------------------------
    # Native async lifecycle
    # ------------------------------------------------------------------
    def _async_op(self, label: str, latency_s: float,
                  fn: Callable[..., Any], *args: Any) -> Future:
        """True async completion: the emulated latency elapses on a
        daemon timer, then the quick bookkeeping runs and resolves the
        future.  A future cancelled before the timer fires never
        touches the backend."""
        future: Future = Future()

        def complete() -> None:
            if not future.set_running_or_notify_cancel():
                return  # cancelled while pending — no side effects
            self._async_ctx.active = True
            try:
                result = fn(*args)
            except BaseException as exc:
                future.set_exception(exc)
            else:
                future.set_result(result)
            finally:
                self._async_ctx.active = False

        if latency_s > 0:
            timer = threading.Timer(latency_s, complete)
            timer.daemon = True
            timer.name = f"{self.domain}-{label}-timer"
            timer.start()
        elif self.stalled:
            # Zero latency but armed to stall: completing inline would
            # park the *caller* — hang a background thread instead.
            threading.Thread(
                target=complete, name=f"{self.domain}-{label}-stalled", daemon=True
            ).start()
        else:
            complete()
        return future

    def prepare_async(self, spec: DomainSpec) -> Future:
        return self._async_op("prepare", self.prepare_latency_s, self.prepare, spec)

    def commit_async(self, reservation: Reservation) -> Future:
        return self._async_op("commit", self.commit_latency_s, self.commit, reservation)

    def rollback_async(self, reservation: Reservation) -> Future:
        return self._async_op("rollback", 0.0, self.rollback, reservation)

    def release_async(self, slice_id: str) -> Future:
        return self._async_op("release", self.release_latency_s, self.release, slice_id)

    @property
    def held_mbps(self) -> float:
        """Total capacity currently held or committed."""
        with self._pool_lock:
            return sum(self._held.values())

    def _demand(self, spec: DomainSpec) -> float:
        return spec.throughput_mbps * spec.effective_fraction

    def feasible(self, spec: DomainSpec) -> bool:
        return self._demand(spec) <= self.capacity_mbps - self.held_mbps + 1e-9

    def _do_prepare(self, spec: DomainSpec) -> Dict[str, Any]:
        self._maybe_stall("prepare")
        self._nap(self.prepare_latency_s)
        with self._pool_lock:
            self.prepares += 1
            if self.fail_next_prepare > 0:
                self.fail_next_prepare -= 1
                raise DriverError(self.domain, "injected prepare failure")
            demand = self._demand(spec)
            free = self.capacity_mbps - sum(self._held.values())
            if demand > free + 1e-9:
                raise DriverError(
                    self.domain,
                    f"{demand:.1f} Mb/s requested but only {free:.1f} free",
                )
            self._held[spec.slice_id] = demand
            return {"held_mbps": demand}

    def _do_commit(self, reservation: Reservation) -> None:
        self._maybe_stall("commit")
        self._nap(self.commit_latency_s)
        with self._pool_lock:
            self.commits += 1
            if self.fail_next_commit > 0:
                self.fail_next_commit -= 1
                # The failed commit loses the hold; the reservation stays
                # PREPARED so the transaction's unwind rolls it back.
                self._held.pop(reservation.slice_id, None)
                raise DriverError(self.domain, "injected commit failure")

    def _native_present(self, slice_id: str) -> bool:
        with self._pool_lock:
            return slice_id in self._held

    def _do_rollback(self, reservation: Reservation) -> None:
        self._maybe_stall("rollback")
        with self._pool_lock:
            self.rollbacks += 1
            self._held.pop(reservation.slice_id, None)

    def _do_release(self, slice_id: str) -> None:
        self._maybe_stall("release")
        self._nap(self.release_latency_s)
        with self._pool_lock:
            self.releases += 1
            if self.fail_next_release > 0:
                self.fail_next_release -= 1
                raise DriverError(self.domain, "injected release failure")
            if slice_id not in self._held:
                raise DriverError(self.domain, f"slice {slice_id} holds nothing")
            del self._held[slice_id]

    def _do_resize(self, slice_id: str, spec: DomainSpec,
                   reservation: Optional[Reservation]) -> Dict[str, Any]:
        with self._pool_lock:
            if slice_id not in self._held:
                raise DriverError(self.domain, f"slice {slice_id} holds nothing")
            new_demand = self._demand(spec)
            others = sum(self._held.values()) - self._held[slice_id]
            if others + new_demand > self.capacity_mbps + 1e-9:
                raise DriverError(self.domain, "resize does not fit")
            self._held[slice_id] = new_demand
            return {"held_mbps": new_demand}

    def repair(self, slice_id: str) -> Reservation:
        reservation = self.reservation_of(slice_id)
        if reservation is None:
            raise DriverError(self.domain, f"slice {slice_id} holds nothing")
        return reservation

    def utilization(self) -> dict:
        with self._pool_lock:
            return {
                "domain": self.domain,
                "capacity_mbps": self.capacity_mbps,
                "held_mbps": sum(self._held.values()),
                "active_reservations": len(self._held),
            }


#: Back-compat friendly alias: a registry wired purely from mocks is a
#: "null" backend (nothing simulated, everything accounted).
NullDriver = MockDriver


__all__ = ["MockDriver", "NullDriver"]
