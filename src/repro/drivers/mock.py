"""In-memory mock backend honouring the full driver contract.

Three uses:

1. **Conformance reference** — the driver conformance suite runs the
   identical contract tests against :class:`MockDriver` and the four
   real adapters, so any future backend (a real SDN controller, an
   alternate simulator) has an executable specification to pass.
2. **Failure injection** — ``fail_next_prepare`` / ``fail_next_commit``
   let tests (and chaos experiments) break the install transaction at a
   chosen domain and verify the rollback discipline leaves zero
   residue in the other domains.
3. **Concurrency harness** — the mock declares
   ``max_concurrent_installs > 1`` and implements thread-safe hooks, so
   the batch planner's parallel prepare path (and the concurrency
   conformance suite) can hammer it from a thread pool.  The
   ``*_latency_s`` knobs emulate the southbound RPC time a real
   controller would cost; the sleep happens *outside* the pool lock, so
   concurrent operations genuinely overlap (this is what the batched
   install benchmarks measure).

Capacity is a single scalar pool accounted in ``throughput_mbps``
(``effective_fraction`` applied), which is enough to exercise both the
"fits" and "does not fit" branches of every lifecycle path.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from repro.drivers.base import (
    BaseDriver,
    DomainSpec,
    DriverCapabilities,
    DriverError,
    Reservation,
)


class MockDriver(BaseDriver):
    """A self-contained driver with a scalar capacity pool."""

    def __init__(
        self,
        domain: str = "mock",
        capacity_mbps: float = 1_000.0,
        max_concurrent_installs: int = 4,
        prepare_latency_s: float = 0.0,
        commit_latency_s: float = 0.0,
        release_latency_s: float = 0.0,
        prepare_after: tuple = (),
    ) -> None:
        super().__init__()
        self.domain = domain
        self.capacity_mbps = float(capacity_mbps)
        self.max_concurrent_installs = int(max_concurrent_installs)
        self.prepare_latency_s = float(prepare_latency_s)
        self.commit_latency_s = float(commit_latency_s)
        self.release_latency_s = float(release_latency_s)
        self.prepare_after = tuple(prepare_after)
        #: Guards the capacity pool, the counters and the injection
        #: knobs — *not* held while sleeping, so concurrency overlaps.
        self._pool_lock = threading.RLock()
        self._held: Dict[str, float] = {}  # slice_id -> held mbps
        #: Remaining prepare calls to fail (failure injection).
        self.fail_next_prepare = 0
        #: Remaining commit calls to fail (failure injection).
        self.fail_next_commit = 0
        #: Remaining release calls to fail (failure injection).
        self.fail_next_release = 0
        self.prepares = 0
        self.commits = 0
        self.rollbacks = 0
        self.releases = 0

    # ------------------------------------------------------------------
    # Contract
    # ------------------------------------------------------------------
    def capabilities(self) -> DriverCapabilities:
        return DriverCapabilities(
            domain=self.domain,
            resource_units=("mbps",),
            supports_resize=True,
            supports_repair=True,
            max_concurrent_installs=self.max_concurrent_installs,
            prepare_after=self.prepare_after,
        )

    @property
    def held_mbps(self) -> float:
        """Total capacity currently held or committed."""
        with self._pool_lock:
            return sum(self._held.values())

    def _demand(self, spec: DomainSpec) -> float:
        return spec.throughput_mbps * spec.effective_fraction

    def feasible(self, spec: DomainSpec) -> bool:
        return self._demand(spec) <= self.capacity_mbps - self.held_mbps + 1e-9

    def _do_prepare(self, spec: DomainSpec) -> Dict[str, Any]:
        if self.prepare_latency_s > 0:
            time.sleep(self.prepare_latency_s)
        with self._pool_lock:
            self.prepares += 1
            if self.fail_next_prepare > 0:
                self.fail_next_prepare -= 1
                raise DriverError(self.domain, "injected prepare failure")
            demand = self._demand(spec)
            free = self.capacity_mbps - sum(self._held.values())
            if demand > free + 1e-9:
                raise DriverError(
                    self.domain,
                    f"{demand:.1f} Mb/s requested but only {free:.1f} free",
                )
            self._held[spec.slice_id] = demand
            return {"held_mbps": demand}

    def _do_commit(self, reservation: Reservation) -> None:
        if self.commit_latency_s > 0:
            time.sleep(self.commit_latency_s)
        with self._pool_lock:
            self.commits += 1
            if self.fail_next_commit > 0:
                self.fail_next_commit -= 1
                # The failed commit loses the hold; the reservation stays
                # PREPARED so the transaction's unwind rolls it back.
                self._held.pop(reservation.slice_id, None)
                raise DriverError(self.domain, "injected commit failure")

    def _native_present(self, slice_id: str) -> bool:
        with self._pool_lock:
            return slice_id in self._held

    def _do_rollback(self, reservation: Reservation) -> None:
        with self._pool_lock:
            self.rollbacks += 1
            self._held.pop(reservation.slice_id, None)

    def _do_release(self, slice_id: str) -> None:
        if self.release_latency_s > 0:
            time.sleep(self.release_latency_s)
        with self._pool_lock:
            self.releases += 1
            if self.fail_next_release > 0:
                self.fail_next_release -= 1
                raise DriverError(self.domain, "injected release failure")
            if slice_id not in self._held:
                raise DriverError(self.domain, f"slice {slice_id} holds nothing")
            del self._held[slice_id]

    def _do_resize(self, slice_id: str, spec: DomainSpec,
                   reservation: Optional[Reservation]) -> Dict[str, Any]:
        with self._pool_lock:
            if slice_id not in self._held:
                raise DriverError(self.domain, f"slice {slice_id} holds nothing")
            new_demand = self._demand(spec)
            others = sum(self._held.values()) - self._held[slice_id]
            if others + new_demand > self.capacity_mbps + 1e-9:
                raise DriverError(self.domain, "resize does not fit")
            self._held[slice_id] = new_demand
            return {"held_mbps": new_demand}

    def repair(self, slice_id: str) -> Reservation:
        reservation = self.reservation_of(slice_id)
        if reservation is None:
            raise DriverError(self.domain, f"slice {slice_id} holds nothing")
        return reservation

    def utilization(self) -> dict:
        with self._pool_lock:
            return {
                "domain": self.domain,
                "capacity_mbps": self.capacity_mbps,
                "held_mbps": sum(self._held.values()),
                "active_reservations": len(self._held),
            }


#: Back-compat friendly alias: a registry wired purely from mocks is a
#: "null" backend (nothing simulated, everything accounted).
NullDriver = MockDriver


__all__ = ["MockDriver", "NullDriver"]
