"""In-memory mock backend honouring the full driver contract.

Two uses:

1. **Conformance reference** — the driver conformance suite runs the
   identical contract tests against :class:`MockDriver` and the four
   real adapters, so any future backend (a real SDN controller, an
   alternate simulator) has an executable specification to pass.
2. **Failure injection** — ``fail_next_prepare`` / ``fail_next_commit``
   let tests (and chaos experiments) break the install transaction at a
   chosen domain and verify the rollback discipline leaves zero
   residue in the other domains.

Capacity is a single scalar pool accounted in ``throughput_mbps``
(``effective_fraction`` applied), which is enough to exercise both the
"fits" and "does not fit" branches of every lifecycle path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.drivers.base import (
    BaseDriver,
    DomainSpec,
    DriverCapabilities,
    DriverError,
    Reservation,
)


class MockDriver(BaseDriver):
    """A self-contained driver with a scalar capacity pool."""

    def __init__(
        self,
        domain: str = "mock",
        capacity_mbps: float = 1_000.0,
    ) -> None:
        super().__init__()
        self.domain = domain
        self.capacity_mbps = float(capacity_mbps)
        self._held: Dict[str, float] = {}  # slice_id -> held mbps
        #: Remaining prepare calls to fail (failure injection).
        self.fail_next_prepare = 0
        #: Remaining commit calls to fail (failure injection).
        self.fail_next_commit = 0
        #: Remaining release calls to fail (failure injection).
        self.fail_next_release = 0
        self.prepares = 0
        self.commits = 0
        self.rollbacks = 0
        self.releases = 0

    # ------------------------------------------------------------------
    # Contract
    # ------------------------------------------------------------------
    def capabilities(self) -> DriverCapabilities:
        return DriverCapabilities(
            domain=self.domain,
            resource_units=("mbps",),
            supports_resize=True,
            supports_repair=True,
        )

    @property
    def held_mbps(self) -> float:
        """Total capacity currently held or committed."""
        return sum(self._held.values())

    def _demand(self, spec: DomainSpec) -> float:
        return spec.throughput_mbps * spec.effective_fraction

    def feasible(self, spec: DomainSpec) -> bool:
        return self._demand(spec) <= self.capacity_mbps - self.held_mbps + 1e-9

    def _do_prepare(self, spec: DomainSpec) -> Dict[str, Any]:
        self.prepares += 1
        if self.fail_next_prepare > 0:
            self.fail_next_prepare -= 1
            raise DriverError(self.domain, "injected prepare failure")
        demand = self._demand(spec)
        if not self.feasible(spec):
            raise DriverError(
                self.domain,
                f"{demand:.1f} Mb/s requested but only "
                f"{self.capacity_mbps - self.held_mbps:.1f} free",
            )
        self._held[spec.slice_id] = demand
        return {"held_mbps": demand}

    def _do_commit(self, reservation: Reservation) -> None:
        self.commits += 1
        if self.fail_next_commit > 0:
            self.fail_next_commit -= 1
            # The failed commit loses the hold; the reservation stays
            # PREPARED so the transaction's unwind rolls it back.
            self._held.pop(reservation.slice_id, None)
            raise DriverError(self.domain, "injected commit failure")

    def _native_present(self, slice_id: str) -> bool:
        return slice_id in self._held

    def _do_rollback(self, reservation: Reservation) -> None:
        self.rollbacks += 1
        self._held.pop(reservation.slice_id, None)

    def _do_release(self, slice_id: str) -> None:
        self.releases += 1
        if self.fail_next_release > 0:
            self.fail_next_release -= 1
            raise DriverError(self.domain, "injected release failure")
        if slice_id not in self._held:
            raise DriverError(self.domain, f"slice {slice_id} holds nothing")
        del self._held[slice_id]

    def _do_resize(self, slice_id: str, spec: DomainSpec,
                   reservation: Optional[Reservation]) -> Dict[str, Any]:
        if slice_id not in self._held:
            raise DriverError(self.domain, f"slice {slice_id} holds nothing")
        new_demand = self._demand(spec)
        others = self.held_mbps - self._held[slice_id]
        if others + new_demand > self.capacity_mbps + 1e-9:
            raise DriverError(self.domain, "resize does not fit")
        self._held[slice_id] = new_demand
        return {"held_mbps": new_demand}

    def repair(self, slice_id: str) -> Reservation:
        reservation = self.reservation_of(slice_id)
        if reservation is None:
            raise DriverError(self.domain, f"slice {slice_id} holds nothing")
        return reservation

    def utilization(self) -> dict:
        return {
            "domain": self.domain,
            "capacity_mbps": self.capacity_mbps,
            "held_mbps": self.held_mbps,
            "active_reservations": len(self._held),
        }


#: Back-compat friendly alias: a registry wired purely from mocks is a
#: "null" backend (nothing simulated, everything accounted).
NullDriver = MockDriver


__all__ = ["MockDriver", "NullDriver"]
