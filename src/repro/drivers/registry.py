"""Pluggable registry of southbound domain drivers.

The orchestrator's lifecycle operations (install, resize, release,
heal) go through the registry, not the controllers.  Registration
order is *install order*: the two-phase install transaction prepares
domains in the order they were registered and unwinds them in reverse,
so register ingress-first (RAN → transport → cloud → EPC in the
default wiring).  Any backend honouring the
:class:`~repro.drivers.base.DomainDriver` contract — a real SDN
controller adapter, an alternate simulator, a mock — plugs in with one
``register`` call; note that *placement planning* (cell/DC selection,
admission free vectors) still consults the allocator's topology views,
so fully replacing the RAN/cloud backend also needs a matching
placement provider (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from repro.drivers.base import DomainDriver, DriverError


class DriverRegistry:
    """Ordered mapping of domain name → :class:`DomainDriver`.

    Thread-safe: registration, lookup and iteration take an internal
    lock, and every iteration surface hands out a point-in-time
    *snapshot*, so the batch install planner's worker threads never
    observe a half-applied ``register``/``unregister``.
    """

    def __init__(self, drivers: Optional[List[DomainDriver]] = None) -> None:
        self._drivers: Dict[str, DomainDriver] = {}
        self._lock = threading.RLock()
        #: Bumped on every register/unregister — lets callers (the batch
        #: planner's prepare-wave cache) invalidate derived plans cheaply.
        self.version = 0
        for driver in drivers or []:
            self.register(driver)

    def register(self, driver: DomainDriver, replace: bool = False) -> DomainDriver:
        """Add a driver under its ``domain`` name.

        Args:
            driver: The backend to plug in.
            replace: Allow swapping out an already-registered domain —
                the *previous* driver is then returned to the caller's
                care (it may still track reservations to drain).

        Returns:
            The displaced driver when one was replaced, else ``driver``.

        Raises:
            DriverError: On a duplicate domain without ``replace``.
        """
        domain = driver.domain
        with self._lock:
            previous = self._drivers.get(domain)
            if previous is not None and not replace:
                raise DriverError(domain, "domain already registered")
            self._drivers[domain] = driver
            self.version += 1
            return previous if previous is not None else driver

    def unregister(self, domain: str) -> DomainDriver:
        """Remove and return the driver serving ``domain``.

        Raises:
            DriverError: If unknown.
        """
        with self._lock:
            try:
                driver = self._drivers.pop(domain)
            except KeyError:
                raise DriverError(domain, "domain not registered") from None
            self.version += 1
            return driver

    def get(self, domain: str) -> DomainDriver:
        """Lookup the driver serving ``domain``.

        Raises:
            DriverError: If unknown.
        """
        with self._lock:
            try:
                return self._drivers[domain]
            except KeyError:
                raise DriverError(domain, "domain not registered") from None

    def domains(self) -> List[str]:
        """Registered domain names, in registration (install) order."""
        with self._lock:
            return list(self._drivers)

    def drivers(self) -> List[DomainDriver]:
        """Registered drivers, in registration (install) order."""
        with self._lock:
            return list(self._drivers.values())

    def __contains__(self, domain: str) -> bool:
        with self._lock:
            return domain in self._drivers

    def __len__(self) -> int:
        with self._lock:
            return len(self._drivers)

    def __iter__(self) -> Iterator[DomainDriver]:
        return iter(self.drivers())

    def utilization(self) -> dict:
        """Per-domain telemetry snapshot."""
        return {d.domain: d.utilization() for d in self.drivers()}

    def capabilities(self) -> dict:
        """Per-domain capability summary (API/debugging surface)."""
        return {
            d.domain: {
                "resource_units": list(d.capabilities().resource_units),
                "supports_resize": d.capabilities().supports_resize,
                "supports_repair": d.capabilities().supports_repair,
                "transactional": d.capabilities().transactional,
                "max_concurrent_installs": d.capabilities().max_concurrent_installs,
            }
            for d in self.drivers()
        }


__all__ = ["DriverRegistry"]
