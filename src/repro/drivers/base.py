"""Uniform southbound contract every domain backend implements.

The orchestrator of the paper's Fig. 1 sits above *heterogeneous*
domain controllers — RAN, transport, cloud, vEPC — each of which grew
its own vocabulary (``install_slice`` / ``reserve_path`` / ``deploy``).
:class:`DomainDriver` is the single southbound API that hides those
vocabularies behind a transactional reserve-then-commit discipline:

    feasible(spec)? ──> prepare(spec) ──> Reservation[PREPARED]
                                             │
                         commit(reservation) │ rollback(reservation)
                                             ▼
                        Reservation[COMMITTED]   Reservation[ROLLED_BACK]
                                             │
                           release(slice_id) │
                                             ▼
                        Reservation[RELEASED]

``prepare`` *holds* resources in the domain (a failed multi-domain
install can still be unwound without side effects leaking), ``commit``
makes the hold permanent, ``rollback`` undoes a hold, ``release`` frees
a committed slice.  Backends without native two-phase semantics (all of
the simulator controllers) implement ``prepare`` as the real reservation
and ``rollback`` as the compensating release — the classic pattern for
non-transactional southbound elements.

:class:`BaseDriver` supplies the reservation bookkeeping and lifecycle
state machine so concrete drivers only write the five ``_do_*`` hooks.
"""

from __future__ import annotations

import abc
import contextlib
import enum
import itertools
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, ContextManager, Dict, List, Optional, Set, Tuple

from repro.obs import NOOP_OBS


class DriverError(RuntimeError):
    """Raised on any southbound driver failure; names the domain."""

    def __init__(self, domain: str, message: str) -> None:
        super().__init__(f"[{domain}] {message}")
        self.domain = domain
        self.message = message


class DriverAbsentError(DriverError):
    """The slice holds nothing in this domain (a benign miss, so
    best-effort sweeps can skip it — unlike a real backend failure)."""


class ReservationState(enum.Enum):
    """Lifecycle of one domain reservation (see module docstring)."""

    PREPARED = "prepared"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled_back"
    RELEASED = "released"


@dataclass(frozen=True)
class DomainSpec:
    """What a slice asks of one domain, in domain-neutral terms.

    Attributes:
        slice_id: Owning slice.
        tenant_id: Owning tenant (propagated into events/telemetry).
        throughput_mbps: SLA downlink throughput.
        max_latency_ms: End-to-end latency bound of the SLA.
        duration_s: Requested slice lifetime.
        effective_fraction: Overbooking shrinkage in (0, 1].
        vcpus: Compute footprint (cloud-facing domains).
        attributes: Domain-specific context the orchestrator resolved
            (e.g. ``plmn``/``enb_id`` for RAN, ``src``/``dst``/
            ``max_delay_ms`` for transport, ``dc_id`` for cloud).
    """

    slice_id: str
    tenant_id: str = "anonymous"
    throughput_mbps: float = 0.0
    max_latency_ms: float = float("inf")
    duration_s: float = 0.0
    effective_fraction: float = 1.0
    vcpus: float = 0.0
    attributes: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Reservation:
    """One domain's hold (then commitment) for a slice.

    Attributes:
        reservation_id: Unique id within the driver.
        domain: Issuing domain.
        slice_id: Owning slice.
        spec: The spec the reservation was prepared against.
        state: Lifecycle state (see :class:`ReservationState`).
        details: Domain-specific results (chosen cell, path, stack id,
            native allocation objects) the orchestrator composes into
            its end-to-end view.
    """

    reservation_id: str
    domain: str
    slice_id: str
    spec: DomainSpec
    state: ReservationState = ReservationState.PREPARED
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe summary (telemetry / debugging)."""
        return {
            "reservation_id": self.reservation_id,
            "domain": self.domain,
            "slice_id": self.slice_id,
            "state": self.state.value,
        }


@dataclass(frozen=True)
class DriverCapabilities:
    """What a backend can do, so the orchestrator adapts per domain.

    Attributes:
        domain: Domain name the driver serves (registry key).
        resource_units: Units the domain accounts in (``"prbs"``,
            ``"mbps"``, ``"vcpus"`` — empty for control-plane-only
            domains like the vEPC binding).
        supports_resize: Whether :meth:`DomainDriver.resize` works
            (re-dimensioning/overbooking); drivers without it are
            skipped by the reconfiguration loop.
        supports_repair: Whether :meth:`DomainDriver.repair` can
            re-establish a degraded slice (self-healing loop).
        transactional: True when the backend has *native* two-phase
            semantics; False when ``rollback`` is compensating.
        max_concurrent_installs: How many install operations the backend
            can absorb *simultaneously*.  ``1`` (the default) declares a
            serial backend: :class:`BaseDriver` then holds its
            serialization lock across every lifecycle call, so wrapping
            a non-thread-safe controller stays safe under the concurrent
            batch planner.  A driver declaring ``> 1`` promises its
            ``_do_*`` hooks are thread-safe; the planner bounds its
            in-flight operations with a semaphore of this size.
        prepare_after: Domains whose ``prepare`` must complete before
            this one's can start within a single install (e.g. the vEPC
            binding needs the cloud stack to exist).  The batch planner
            turns this into prepare *waves*; domains with no dependency
            between them are prepared in parallel.
        operation_timeout_s: Per-operation deadline for the async
            lifecycle (``prepare_async``/``commit_async``/…).  When an
            operation's future has not completed within this budget the
            batch planner treats the domain as hung: the *job* unwinds
            cleanly (its other domains are rolled back / released) while
            the hung operation is compensated in the background the
            moment it eventually completes.  ``None`` (the default)
            means no deadline — the planner then falls back to its own
            configured default, or waits forever like the blocking path.
    """

    domain: str
    resource_units: Tuple[str, ...] = ()
    supports_resize: bool = False
    supports_repair: bool = False
    transactional: bool = False
    max_concurrent_installs: int = 1
    prepare_after: Tuple[str, ...] = ()
    operation_timeout_s: Optional[float] = None


class DomainDriver(abc.ABC):
    """Abstract southbound driver every domain backend implements."""

    #: Domain name; also the :class:`~repro.drivers.registry.DriverRegistry` key.
    domain: str = "unknown"

    #: Control-plane observability sink.  The class default is the
    #: shared no-op singleton (zero overhead); an observability-enabled
    #: orchestrator rebinds its registry's drivers to the live registry
    #: so serial-lock wait/hold times are histogrammed per domain.
    obs = NOOP_OBS

    @abc.abstractmethod
    def capabilities(self) -> DriverCapabilities:
        """Static description of what this backend supports."""

    @abc.abstractmethod
    def feasible(self, spec: DomainSpec) -> bool:
        """Whether ``spec`` could currently be prepared (commits nothing)."""

    @abc.abstractmethod
    def prepare(self, spec: DomainSpec) -> Reservation:
        """Hold resources for ``spec``; returns a PREPARED reservation.

        Raises:
            DriverError: When the domain cannot serve the spec.
        """

    @abc.abstractmethod
    def commit(self, reservation: Reservation) -> None:
        """Finalize a PREPARED reservation (state → COMMITTED)."""

    @abc.abstractmethod
    def rollback(self, reservation: Reservation) -> None:
        """Undo a PREPARED reservation (state → ROLLED_BACK)."""

    @abc.abstractmethod
    def resize(self, slice_id: str, spec: DomainSpec) -> Reservation:
        """Re-dimension a COMMITTED slice to ``spec`` in place.

        Covers both tenant-requested scaling (new ``throughput_mbps``)
        and the overbooking loop (new ``effective_fraction``).

        Raises:
            DriverError: If unsupported, unknown slice, or no fit.
        """

    @abc.abstractmethod
    def release(self, slice_id: str) -> None:
        """Free everything the domain holds for ``slice_id``.

        Raises:
            DriverError: If the slice holds nothing here.
        """

    @abc.abstractmethod
    def health(self, slice_id: str) -> Dict[str, Any]:
        """Domain-local health of a slice; must contain ``"healthy"``.

        Raises:
            DriverError: If the slice holds nothing here.
        """

    @abc.abstractmethod
    def utilization(self) -> dict:
        """Domain telemetry snapshot (monitoring collector input)."""

    def reservation_of(self, slice_id: str) -> Optional[Reservation]:
        """The live (PREPARED/COMMITTED) reservation for a slice, when
        the driver tracks one — part of the pluggable contract because
        the orchestrator's resize sweep consults it.  Drivers built on
        :class:`BaseDriver` get tracking for free; direct subclasses
        that keep no records return None and are skipped by resizes.
        """
        return None

    def list_reservations(self) -> List[Reservation]:
        """Every live (PREPARED/COMMITTED) reservation the backend
        currently holds — the *ground truth* crash recovery reconciles
        the journal against (re-adopting COMMITTED reservations,
        compensating orphans; see :class:`~repro.store.recovery.
        RecoveryManager`).

        Drivers built on :class:`BaseDriver` get this from the shared
        bookkeeping; direct subclasses that keep no records return an
        empty list, which recovery reads as "this domain can vouch for
        nothing" (journaled slices then cannot be re-adopted whole).
        """
        return []

    def repair(self, slice_id: str) -> Reservation:
        """Re-establish a degraded slice (e.g. re-route its path).

        Only meaningful when ``capabilities().supports_repair``; the
        default implementation refuses.

        Raises:
            DriverError: Always, unless a subclass overrides.
        """
        raise DriverError(self.domain, "driver does not support repair")

    # ------------------------------------------------------------------
    # Async lifecycle (futures-based southbound)
    # ------------------------------------------------------------------
    # The batch planner drives installs through these non-blocking
    # variants: each returns a ``concurrent.futures.Future`` that
    # resolves to the blocking method's result (or raises its error).
    # The default implementation is a *shim* that runs the blocking
    # method on a dedicated daemon thread, so every existing adapter
    # gets a working async surface unchanged — a natively asynchronous
    # backend (MockDriver, a real controller with async RPCs) overrides
    # these to resolve the future from its own completion machinery
    # without parking a thread per call.
    #
    # Contract notes shared by all four:
    # - The future may be cancelled while still pending; a backend that
    #   honours cancellation must then perform no side effects.
    # - Callers bound waiting via ``DriverCapabilities.
    #   operation_timeout_s``; the shim itself never times out (the
    #   blocking call keeps running on its thread, and the planner
    #   compensates the straggler when it eventually completes).

    def _shim_async(self, label: str, fn: Callable[..., Any], *args: Any) -> Future:
        """Run blocking ``fn(*args)`` on a daemon thread, resolving a
        future — the default async surface for blocking drivers."""
        future: Future = Future()

        def run() -> None:
            if not future.set_running_or_notify_cancel():
                return  # cancelled before the backend was touched
            try:
                result = fn(*args)
            except BaseException as exc:  # resolve, never propagate
                future.set_exception(exc)
            else:
                future.set_result(result)

        threading.Thread(
            target=run, name=f"{self.domain}-{label}-async", daemon=True
        ).start()
        return future

    def prepare_async(self, spec: DomainSpec) -> Future:
        """Non-blocking :meth:`prepare`; resolves to the Reservation."""
        return self._shim_async("prepare", self.prepare, spec)

    def commit_async(self, reservation: Reservation) -> Future:
        """Non-blocking :meth:`commit`; resolves to ``None``."""
        return self._shim_async("commit", self.commit, reservation)

    def rollback_async(self, reservation: Reservation) -> Future:
        """Non-blocking :meth:`rollback`; resolves to ``None``."""
        return self._shim_async("rollback", self.rollback, reservation)

    def release_async(self, slice_id: str) -> Future:
        """Non-blocking :meth:`release`; resolves to ``None``."""
        return self._shim_async("release", self.release, slice_id)


class BaseDriver(DomainDriver):
    """Reservation bookkeeping + state machine shared by all drivers.

    Subclasses implement the ``_do_*`` hooks against their backend and
    never touch the lifecycle rules:

    - ``prepare`` refuses a second reservation for a live slice,
    - ``commit``/``rollback`` only accept PREPARED reservations,
    - ``release`` only accepts COMMITTED slices (but tolerates slices
      installed out-of-band on the backend, for legacy callers).

    Locking discipline (the batch planner drives drivers from a thread
    pool):

    - ``_lock`` guards the reservation table and the in-flight set; it
      is held only around bookkeeping, never across a backend call.
    - ``_serial_lock`` is held across the *whole* lifecycle operation —
      including the ``_do_*`` backend call — whenever the driver
      declares ``max_concurrent_installs == 1``.  Drivers wrapping one
      shared backend (cloud + EPC over one controller) may be handed
      the same lock so the controller sees one caller at a time.
    - Drivers declaring ``max_concurrent_installs > 1`` run their
      ``_do_*`` hooks without the serialization lock and must make them
      thread-safe; per-slice races are still excluded by the in-flight
      set (a second concurrent prepare/commit/release of the same slice
      fails fast instead of corrupting the record).
    """

    def __init__(self, serial_lock: Optional[threading.RLock] = None) -> None:
        self._reservations: Dict[str, Reservation] = {}
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._serial_lock = serial_lock or threading.RLock()
        self._in_flight: Set[str] = set()

    def _backend_guard(self) -> ContextManager:
        """The context held across a lifecycle operation: the shared
        serialization lock for serial backends, nothing for backends
        that declared concurrent capacity.

        With observability enabled the serial lock — the hot lock of
        every single-capacity backend — is wrapped so its wait and hold
        times land in the ``driver.serial_lock.{wait,hold}`` histograms
        (labelled by domain)."""
        if self.capabilities().max_concurrent_installs <= 1:
            obs = self.obs
            if obs.enabled:
                return obs.timed_lock(
                    self._serial_lock, "driver.serial_lock", label=self.domain
                )
            return self._serial_lock
        return contextlib.nullcontext()

    def _claim(self, slice_id: str, operation: str) -> None:
        """Mark ``slice_id`` as having a lifecycle call in flight (call
        under ``_lock``); a concurrent second call fails fast."""
        if slice_id in self._in_flight:
            raise DriverError(
                self.domain,
                f"slice {slice_id} already has an operation in flight "
                f"(refusing concurrent {operation})",
            )
        self._in_flight.add(slice_id)

    def _unclaim(self, slice_id: str) -> None:
        with self._lock:
            self._in_flight.discard(slice_id)

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _do_prepare(self, spec: DomainSpec) -> Dict[str, Any]:
        """Perform the hold; returns the reservation ``details``."""

    def _do_commit(self, reservation: Reservation) -> None:
        """Finalize the hold (default: nothing — prepare did the work)."""

    @abc.abstractmethod
    def _do_rollback(self, reservation: Reservation) -> None:
        """Compensate the hold."""

    @abc.abstractmethod
    def _do_release(self, slice_id: str) -> None:
        """Free a committed slice on the backend."""

    def _do_resize(self, slice_id: str, spec: DomainSpec,
                   reservation: Optional[Reservation]) -> Dict[str, Any]:
        """Re-dimension on the backend; returns updated details."""
        raise DriverError(self.domain, "driver does not support resize")

    def _native_present(self, slice_id: str) -> bool:
        """Whether the backend itself holds state for the slice."""
        return slice_id in self._reservations

    # ------------------------------------------------------------------
    # Contract implementation
    # ------------------------------------------------------------------
    def reservation_of(self, slice_id: str) -> Optional[Reservation]:
        """The live (PREPARED/COMMITTED) reservation for a slice."""
        with self._lock:
            return self._reservations.get(slice_id)

    def reservations(self) -> List[Reservation]:
        """All live reservations (point-in-time snapshot)."""
        with self._lock:
            return list(self._reservations.values())

    def list_reservations(self) -> List[Reservation]:
        """Recovery ground truth — the shared bookkeeping *is* the
        backend's reservation table for every driver built on this
        base class."""
        return self.reservations()

    def prepare(self, spec: DomainSpec) -> Reservation:
        with self._backend_guard():
            with self._lock:
                existing = self._reservations.get(spec.slice_id)
                if existing is not None:
                    if self._native_present(spec.slice_id):
                        raise DriverError(
                            self.domain,
                            f"slice {spec.slice_id} already holds a reservation",
                        )
                    # Backend state vanished out-of-band (legacy release
                    # path) — drop the stale record and re-prepare.
                    del self._reservations[spec.slice_id]
                self._claim(spec.slice_id, "prepare")
            try:
                details = self._do_prepare(spec)
                with self._lock:
                    reservation = Reservation(
                        reservation_id=f"{self.domain}-res-{next(self._ids):06d}",
                        domain=self.domain,
                        slice_id=spec.slice_id,
                        spec=spec,
                        state=ReservationState.PREPARED,
                        details=details,
                    )
                    self._reservations[spec.slice_id] = reservation
            finally:
                self._unclaim(spec.slice_id)
            return reservation

    def commit(self, reservation: Reservation) -> None:
        self._check_owned(reservation)
        with self._backend_guard():
            with self._lock:
                if reservation.state is not ReservationState.PREPARED:
                    raise DriverError(
                        self.domain,
                        f"cannot commit reservation in state {reservation.state.value}",
                    )
                self._claim(reservation.slice_id, "commit")
            try:
                self._do_commit(reservation)
                reservation.state = ReservationState.COMMITTED
            finally:
                self._unclaim(reservation.slice_id)

    def rollback(self, reservation: Reservation) -> None:
        self._check_owned(reservation)
        with self._backend_guard():
            with self._lock:
                if reservation.state is not ReservationState.PREPARED:
                    raise DriverError(
                        self.domain,
                        f"cannot roll back reservation in state {reservation.state.value}",
                    )
                self._claim(reservation.slice_id, "rollback")
            try:
                self._do_rollback(reservation)
                with self._lock:
                    reservation.state = ReservationState.ROLLED_BACK
                    self._reservations.pop(reservation.slice_id, None)
            finally:
                self._unclaim(reservation.slice_id)

    def release(self, slice_id: str) -> None:
        with self._backend_guard():
            with self._lock:
                reservation = self._reservations.get(slice_id)
                if reservation is None:
                    # Installed out-of-band (legacy allocator path) — free
                    # the backend state if any, else report the miss.
                    if not self._native_present(slice_id):
                        raise DriverAbsentError(
                            self.domain, f"slice {slice_id} holds nothing"
                        )
                else:
                    if reservation.state is not ReservationState.COMMITTED:
                        raise DriverError(
                            self.domain,
                            f"cannot release reservation in state "
                            f"{reservation.state.value}",
                        )
                    if not self._native_present(slice_id):
                        # Backend state vanished out-of-band — just drop
                        # the record.
                        del self._reservations[slice_id]
                        reservation.state = ReservationState.RELEASED
                        return
                self._claim(slice_id, "release")
            # Free the backend *first*: if it fails, the reservation stays
            # COMMITTED so the caller can retry instead of stranding the
            # backend's capacity behind a forgotten record.
            try:
                self._do_release(slice_id)
                if reservation is not None:
                    with self._lock:
                        self._reservations.pop(slice_id, None)
                        reservation.state = ReservationState.RELEASED
            finally:
                self._unclaim(slice_id)

    def resize(self, slice_id: str, spec: DomainSpec) -> Reservation:
        if not self.capabilities().supports_resize:
            raise DriverError(self.domain, "driver does not support resize")
        with self._backend_guard():
            with self._lock:
                reservation = self._reservations.get(slice_id)
                if reservation is None and not self._native_present(slice_id):
                    raise DriverAbsentError(
                        self.domain, f"slice {slice_id} holds nothing"
                    )
                self._claim(slice_id, "resize")
            try:
                details = self._do_resize(slice_id, spec, reservation)
                with self._lock:
                    if reservation is None:
                        reservation = Reservation(
                            reservation_id=f"{self.domain}-res-{next(self._ids):06d}",
                            domain=self.domain,
                            slice_id=slice_id,
                            spec=spec,
                            state=ReservationState.COMMITTED,
                            details=details,
                        )
                        self._reservations[slice_id] = reservation
                    else:
                        reservation.spec = spec
                        reservation.details.update(details)
            finally:
                self._unclaim(slice_id)
            return reservation

    def health(self, slice_id: str) -> Dict[str, Any]:
        if self.reservation_of(slice_id) is None and not self._native_present(slice_id):
            raise DriverAbsentError(self.domain, f"slice {slice_id} holds nothing")
        return self._do_health(slice_id)

    def _do_health(self, slice_id: str) -> Dict[str, Any]:
        return {"domain": self.domain, "slice_id": slice_id, "healthy": True}

    def _check_owned(self, reservation: Reservation) -> None:
        if reservation.domain != self.domain:
            raise DriverError(
                self.domain,
                f"reservation {reservation.reservation_id} belongs to domain "
                f"{reservation.domain!r}",
            )


__all__ = [
    "BaseDriver",
    "DomainDriver",
    "DomainSpec",
    "DriverAbsentError",
    "DriverCapabilities",
    "DriverError",
    "Reservation",
    "ReservationState",
]
