"""Fleet-scale concurrent install engine over the driver registry.

The sequential install path (one
:class:`~repro.drivers.transaction.InstallTransaction` per slice,
domains prepared one after another) bounds end-to-end deployment
latency by the *sum* of every domain's southbound latency, slice after
slice.  :class:`BatchInstallPlanner` removes both serializations while
keeping the two-phase discipline intact:

- **Across slices** — a batch of admitted installs runs as concurrent
  jobs on a thread pool; each job owns one slice's whole
  prepare → validate → commit attempt sequence.
- **Across domains** — within one job, domains with no declared
  dependency (``DriverCapabilities.prepare_after``) are prepared in
  parallel *waves*; the vEPC waits for the cloud stack, everything else
  overlaps.
- **Per driver** — a bounded semaphore sized by each driver's
  ``DriverCapabilities.max_concurrent_installs`` caps how many
  in-flight prepares a backend absorbs at once, batch-wide.  Serial
  backends (all simulator adapters) additionally self-serialize via
  :class:`~repro.drivers.base.BaseDriver`'s locking discipline, so
  correctness never depends on the planner being the only caller.

Transaction semantics are unchanged: any failure inside a job unwinds
*that job's* reservations in reverse registry order (COMMITTED domains
released, PREPARED ones rolled back) via the one unwind implementation
in :class:`InstallTransaction`; the invariant holds regardless of how
jobs interleave because each job only ever touches its own slice's
reservations.  Rollback notifications are buffered per job and
surfaced only for jobs that ultimately fail — a slice that succeeds on
a later attempt (e.g. the next candidate datacenter) puts no
``driver.rollback`` noise on the event feed, matching the sequential
path's deferred-rollback contract.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.drivers.base import DomainSpec, DriverError, Reservation
from repro.drivers.registry import DriverRegistry
from repro.drivers.transaction import (
    InstallTransaction,
    RollbackHook,
    TransactionError,
)


@dataclass
class InstallJob:
    """One slice's install work: attempts tried in order until one
    commits end-to-end.

    Attributes:
        slice_id: The slice being installed (labels outcomes/unwinds).
        attempts: One spec-map per install attempt — typically one per
            candidate datacenter, each covering every registered domain.
        validate: Optional cross-domain check run over the full
            reservation set of an attempt before commit (raise
            :class:`DriverError` to abort the attempt).
        tag: Opaque caller correlation (e.g. the admission index).
    """

    slice_id: str
    attempts: Sequence[Mapping[str, DomainSpec]]
    validate: Optional[Callable[[Dict[str, Reservation]], None]] = None
    tag: Any = None


@dataclass
class InstallOutcome:
    """What became of one :class:`InstallJob`.

    Exactly one of ``reservations`` (success: the COMMITTED reservation
    per domain) and ``error`` (every attempt failed) is set.
    ``rollbacks`` holds the unwind notifications the job buffered —
    the caller decides whether to surface them (the orchestrator only
    does for failed installs).
    """

    job: InstallJob
    reservations: Optional[Dict[str, Reservation]] = None
    error: Optional[TransactionError] = None
    rollbacks: List[Tuple[str, Reservation, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.reservations is not None


class BatchInstallPlanner:
    """Concurrent two-phase installer over a :class:`DriverRegistry`.

    Args:
        registry: The southbound drivers, in install order.
        max_workers: Thread-pool width for concurrent jobs (and, via a
            second pool, for per-domain prepare fan-out inside jobs —
            two pools so a job waiting on its prepares can never
            deadlock the prepares behind it).
        batch_size: :meth:`install` splits larger job lists into groups
            of this size so one giant admission burst cannot monopolize
            the drivers for unbounded wall-clock time.
        on_rollback: Fired (on the *calling* thread, after the batch
            completes) for each unwound reservation of each **failed**
            job — successful installs surface none of their retries.
    """

    def __init__(
        self,
        registry: DriverRegistry,
        max_workers: int = 8,
        batch_size: int = 16,
        on_rollback: Optional[RollbackHook] = None,
    ) -> None:
        if max_workers < 1:
            raise DriverError("planner", f"max_workers must be >= 1, got {max_workers}")
        if batch_size < 1:
            raise DriverError("planner", f"batch_size must be >= 1, got {batch_size}")
        self.registry = registry
        self.max_workers = int(max_workers)
        self.batch_size = int(batch_size)
        self.on_rollback = on_rollback
        #: Completed-batch counters (telemetry/debugging).
        self.batches_run = 0
        self.jobs_installed = 0
        self.jobs_failed = 0

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, jobs: Sequence[InstallJob]) -> List[List[InstallJob]]:
        """Group pending installs into bounded batches, in order."""
        jobs = list(jobs)
        return [
            jobs[i : i + self.batch_size]
            for i in range(0, len(jobs), self.batch_size)
        ]

    def prepare_waves(self, domains: Sequence[str]) -> List[List[str]]:
        """Partition ``domains`` into parallel prepare waves honouring
        every driver's declared ``prepare_after`` dependencies
        (dependencies outside ``domains`` are treated as satisfied; a
        dependency cycle degrades to registry order rather than
        deadlocking)."""
        remaining = list(domains)
        present = set(remaining)
        placed: set = set()
        waves: List[List[str]] = []
        while remaining:
            wave = [
                d
                for d in remaining
                if all(
                    dep in placed or dep not in present
                    for dep in self.registry.get(d).capabilities().prepare_after
                )
            ]
            if not wave:  # cycle — fall back to one-at-a-time registry order
                wave = [remaining[0]]
            waves.append(wave)
            placed.update(wave)
            remaining = [d for d in remaining if d not in placed]
        return waves

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def install(self, jobs: Sequence[InstallJob]) -> List[InstallOutcome]:
        """Install every job, batch by batch; outcomes keep job order."""
        outcomes: List[InstallOutcome] = []
        for batch in self.plan(jobs):
            outcomes.extend(self.install_batch(batch))
        return outcomes

    def install_batch(self, batch: Sequence[InstallJob]) -> List[InstallOutcome]:
        """Run one batch of jobs concurrently; outcomes keep job order.

        ``on_rollback`` notifications for failed jobs fire here, on the
        calling thread, after every job settled — worker threads never
        touch caller state.
        """
        batch = list(batch)
        if not batch:
            return []
        semaphores = {
            driver.domain: threading.BoundedSemaphore(
                max(1, driver.capabilities().max_concurrent_installs)
            )
            for driver in self.registry.drivers()
        }
        if len(batch) == 1:
            # No cross-slice concurrency to win; skip the job pool (the
            # prepare pool still fans out across domains).
            with ThreadPoolExecutor(max_workers=self.max_workers) as prep_pool:
                outcomes = [self._run_job(batch[0], prep_pool, semaphores)]
        else:
            with ThreadPoolExecutor(
                max_workers=min(len(batch), self.max_workers),
                thread_name_prefix="install-job",
            ) as job_pool, ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="install-prepare",
            ) as prep_pool:
                futures = [
                    job_pool.submit(self._run_job, job, prep_pool, semaphores)
                    for job in batch
                ]
                outcomes = [future.result() for future in futures]
        self.batches_run += 1
        for outcome in outcomes:
            if outcome.ok:
                self.jobs_installed += 1
            else:
                self.jobs_failed += 1
                if self.on_rollback is not None:
                    for domain, reservation, reason in outcome.rollbacks:
                        self.on_rollback(domain, reservation, reason)
        return outcomes

    def _run_job(
        self,
        job: InstallJob,
        prep_pool: ThreadPoolExecutor,
        semaphores: Dict[str, threading.Semaphore],
    ) -> InstallOutcome:
        """Try each attempt in order until one commits; never raises."""
        rollbacks: List[Tuple[str, Reservation, str]] = []
        unwinder = InstallTransaction(
            self.registry,
            on_rollback=lambda d, r, reason: rollbacks.append((d, r, reason)),
        )
        last_error: Optional[TransactionError] = None
        for specs in job.attempts:
            try:
                reservations = self._attempt(job, specs, prep_pool, semaphores, unwinder)
            except TransactionError as exc:
                last_error = exc
                continue
            except Exception as exc:  # defensive: a broken driver must
                last_error = TransactionError(  # not take down the batch
                    "planner", f"unexpected {type(exc).__name__}: {exc}"
                )
                continue
            return InstallOutcome(job=job, reservations=reservations, rollbacks=rollbacks)
        if last_error is None:
            last_error = TransactionError(
                "planner", f"job {job.slice_id} has no install attempts"
            )
        return InstallOutcome(job=job, error=last_error, rollbacks=rollbacks)

    def _attempt(
        self,
        job: InstallJob,
        specs: Mapping[str, DomainSpec],
        prep_pool: ThreadPoolExecutor,
        semaphores: Dict[str, threading.Semaphore],
        unwinder: InstallTransaction,
    ) -> Dict[str, Reservation]:
        """One prepare(parallel) → validate → commit(ordered) attempt.

        Raises:
            TransactionError: On any failure, after unwinding everything
                this attempt prepared/committed, in reverse registry
                order.
        """
        domains = self.registry.domains()
        missing = [d for d in domains if d not in specs]
        surplus = [d for d in specs if d not in domains]
        if missing or surplus:
            raise TransactionError(
                "planner",
                f"spec/domain mismatch (missing={missing}, surplus={surplus})",
            )
        prepared_by_domain: Dict[str, Reservation] = {}

        def ordered_pairs() -> List[Tuple[Any, Reservation]]:
            return [
                (self.registry.get(d), prepared_by_domain[d])
                for d in domains
                if d in prepared_by_domain
            ]

        # --- Prepare phase: parallel waves --------------------------------
        for wave in self.prepare_waves(domains):
            futures = {
                domain: prep_pool.submit(
                    self._prepare_one, domain, specs[domain], semaphores
                )
                for domain in wave
            }
            wave_error: Optional[Tuple[str, Exception]] = None
            for domain, future in futures.items():
                try:
                    prepared_by_domain[domain] = future.result()
                except Exception as exc:
                    if wave_error is None:
                        wave_error = (domain, exc)
            if wave_error is not None:
                unwinder.unwind_and_raise(ordered_pairs(), wave_error[1], wave_error[0])
        reservations = dict(prepared_by_domain)
        # --- Validation + commit phase: registry order --------------------
        failed_domain = "planner"
        try:
            if job.validate is not None:
                job.validate(reservations)
            for domain in domains:
                failed_domain = domain
                self.registry.get(domain).commit(reservations[domain])
        except Exception as exc:
            unwinder.unwind_and_raise(ordered_pairs(), exc, failed_domain)
        return reservations

    def _prepare_one(
        self,
        domain: str,
        spec: DomainSpec,
        semaphores: Dict[str, threading.Semaphore],
    ) -> Reservation:
        """Prepare one domain under its concurrency cap."""
        semaphore = semaphores.get(domain)
        if semaphore is None:  # driver registered mid-batch — no cap known
            return self.registry.get(domain).prepare(spec)
        with semaphore:
            return self.registry.get(domain).prepare(spec)


__all__ = ["BatchInstallPlanner", "InstallJob", "InstallOutcome"]
