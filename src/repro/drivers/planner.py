"""Fleet-scale asynchronous install engine over the driver registry.

The sequential install path (one
:class:`~repro.drivers.transaction.InstallTransaction` per slice,
domains prepared one after another) bounds end-to-end deployment
latency by the *sum* of every domain's southbound latency, slice after
slice.  :class:`BatchInstallPlanner` removes both serializations while
keeping the two-phase discipline intact — and, since the async rewrite,
does it without parking one worker thread per job:

- **Across slices** — a batch of admitted installs runs as concurrent
  event-driven jobs; each job is a small state machine advanced by
  future-completion callbacks, owning one slice's whole
  prepare → validate → commit attempt sequence.
- **Across domains** — within one job, domains with no declared
  dependency (``DriverCapabilities.prepare_after``) are prepared in
  parallel *waves*; wave N+1 launches from the completion callback of
  wave N's last future (future-chaining, no barrier thread).
- **Per driver** — a token pool sized by each driver's
  ``DriverCapabilities.max_concurrent_installs`` caps how many
  in-flight operations a backend absorbs at once, batch-wide.  Tokens
  are granted at *submission* time: an operation either launches
  immediately or queues FIFO until a token frees — no thread ever
  blocks on a semaphore.  Serial backends (all simulator adapters)
  additionally self-serialize via :class:`~repro.drivers.base.
  BaseDriver`'s locking discipline, so correctness never depends on the
  planner being the only caller.

Southbound calls go through the drivers' futures-based lifecycle
(:meth:`~repro.drivers.base.DomainDriver.prepare_async` and friends).
Blocking adapters get the base-class shim (one daemon thread per call);
natively asynchronous backends resolve futures from their own
completion machinery.  Because the engine itself never parks a thread
per job, **one hung domain cannot stall the batch**: every other job's
waves keep chaining on their own completions, and a per-operation
deadline (``DriverCapabilities.operation_timeout_s``, or the planner's
``operation_timeout_s`` default) converts the hung operation into a
clean per-job unwind — the job fails with
:class:`~repro.drivers.transaction.OperationTimeout`, its other domains
are rolled back immediately, and the straggling operation is
*compensated* in the background (rolled back or released) the moment it
eventually completes, so no residue survives a late success.

Transaction semantics are unchanged: any failure inside a job unwinds
*that job's* reservations in reverse registry order (COMMITTED domains
released, PREPARED ones rolled back) via the one unwind implementation
in :class:`InstallTransaction`; the invariant holds regardless of how
jobs interleave because each job only ever touches its own slice's
reservations.  Rollback notifications are buffered per job and
surfaced only for jobs that ultimately fail — a slice that succeeds on
a later attempt (e.g. the next candidate datacenter) puts no
``driver.rollback`` noise on the event feed, matching the sequential
path's deferred-rollback contract.

:class:`ThreadedInstallPlanner` retains the previous thread-pool engine
(one worker thread parked per job) as the measured baseline for the
D8d stall-isolation benchmark and as an escape hatch.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.drivers.base import (
    DomainDriver,
    DomainSpec,
    DriverError,
    Reservation,
    ReservationState,
)
from repro.drivers.registry import DriverRegistry
from repro.obs import NOOP_SPAN, default_observability
from repro.drivers.transaction import (
    InstallTransaction,
    OperationTimeout,
    RollbackHook,
    TransactionError,
    compose_unwind_error,
)


@dataclass
class InstallJob:
    """One slice's install work: attempts tried in order until one
    commits end-to-end.

    Attributes:
        slice_id: The slice being installed (labels outcomes/unwinds).
        attempts: One spec-map per install attempt — typically one per
            candidate datacenter, each covering every registered domain.
        validate: Optional cross-domain check run over the full
            reservation set of an attempt before commit (raise
            :class:`DriverError` to abort the attempt).
        tag: Opaque caller correlation (e.g. the admission index).
        span_context: Optional :class:`~repro.obs.span.SpanContext` of
            the caller's per-job span.  Carried through the job state
            machine so every southbound operation span parents
            correctly no matter which completion/timer/shim thread
            closes it — this is the explicit propagation that replaces
            thread-locals in the async engine.
    """

    slice_id: str
    attempts: Sequence[Mapping[str, DomainSpec]]
    validate: Optional[Callable[[Dict[str, Reservation]], None]] = None
    tag: Any = None
    span_context: Any = None


@dataclass
class InstallOutcome:
    """What became of one :class:`InstallJob`.

    Exactly one of ``reservations`` (success: the COMMITTED reservation
    per domain) and ``error`` (every attempt failed) is set.
    ``rollbacks`` holds the unwind notifications the job buffered —
    the caller decides whether to surface them (the orchestrator only
    does for failed installs).
    """

    job: InstallJob
    reservations: Optional[Dict[str, Reservation]] = None
    error: Optional[TransactionError] = None
    rollbacks: List[Tuple[str, Reservation, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.reservations is not None


class _TokenPool:
    """Concurrency tokens granted at submission time.

    A thunk either launches immediately (token taken) or queues FIFO
    until :meth:`release` hands it the freed token.  Unlike a semaphore
    guarding a parked worker, no thread ever blocks waiting — this is
    what lets one hung operation hold its token indefinitely without
    wedging anything except itself.
    """

    def __init__(self, size: int) -> None:
        self._free = max(1, int(size))
        self._waiting: deque = deque()
        self._lock = threading.Lock()

    def acquire(self, thunk: Callable[[], None]) -> None:
        with self._lock:
            if self._free > 0:
                self._free -= 1
            else:
                self._waiting.append(thunk)
                return
        thunk()

    def release(self) -> None:
        with self._lock:
            if self._waiting:
                thunk = self._waiting.popleft()
            else:
                self._free += 1
                return
        thunk()


class _Op:
    """One in-flight southbound operation: a future, an optional
    deadline, and exactly-once settlement.

    Completion and timeout race; the first to run the job's state
    machine wins.  If the timeout wins, the operation's eventual
    completion is routed to the planner's *compensation* path (its
    driver token is only returned when the backend actually finishes),
    so a late success leaves no residue and a hung backend is never
    hammered beyond its declared concurrency.

    The deadline is armed at *submission* (:meth:`arm`), before any
    token is granted: time spent queued behind a hung serial backend
    counts against the budget, so a cap-1 driver with one stuck
    operation cannot wedge every queued job past its deadline.  An op
    that times out while still queued simply declines to launch when
    its token finally arrives.
    """

    __slots__ = (
        "run", "domain", "kind", "driver", "pool", "timeout_s",
        "reservation", "future", "timer", "_state_lock", "_timed_out",
        "_completed", "span", "queued_at",
    )

    def __init__(
        self,
        run: "_JobRun",
        domain: str,
        kind: str,
        driver: DomainDriver,
        pool: Optional[_TokenPool],
        timeout_s: Optional[float],
        reservation: Optional[Reservation] = None,
    ) -> None:
        self.run = run
        self.domain = domain
        self.kind = kind
        self.driver = driver
        self.pool = pool
        self.timeout_s = timeout_s
        self.reservation = reservation
        self.future: Optional[Future] = None
        self.timer: Optional[threading.Timer] = None
        self._state_lock = threading.Lock()
        self._timed_out = False
        self._completed = False
        # Span of this southbound op, parented to the job's carried
        # context; whichever thread settles the op closes it (finish is
        # idempotent, so the completion/timeout race is safe).
        obs = run.planner.obs
        if obs.enabled:
            self.span = obs.span(
                f"driver.{kind}",
                parent=run.job.span_context,
                label=domain,
                domain=domain,
                slice_id=run.job.slice_id,
            )
            self.queued_at: Optional[float] = perf_counter()
        else:
            self.span = NOOP_SPAN
            self.queued_at = None

    def arm(self) -> None:
        """Start the deadline clock — at submission, before the token."""
        if self.timeout_s is not None and self.timeout_s > 0:
            self.timer = threading.Timer(self.timeout_s, self._on_timeout)
            self.timer.daemon = True
            self.timer.start()

    def should_launch(self) -> bool:
        """Whether the backend call should still be issued once the
        driver token arrives (False after a queued-op timeout)."""
        with self._state_lock:
            return not self._timed_out

    def attach(self, future: Future) -> None:
        """Subscribe to the launched future's completion."""
        with self._state_lock:
            self.future = future
            timed_out = self._timed_out
        if timed_out:
            # Deadline fired between the launch decision and here —
            # best-effort cancel; the done callback routes the rest to
            # compensation either way.
            future.cancel()
        future.add_done_callback(self._on_done)

    def fail_now(self, exc: BaseException) -> None:
        """The driver's async entry point itself blew up (broken
        backend): settle immediately, returning the token."""
        if self.timer is not None:
            self.timer.cancel()
        with self._state_lock:
            if self._completed or self._timed_out:
                already_settled = True
            else:
                self._completed = True
                already_settled = False
        if self.pool is not None:
            self.pool.release()
        if not already_settled:
            self.run._op_finished(self, None, exc)

    def _on_done(self, future: Future) -> None:
        # Fires exactly once: on completion *or* cancellation.
        if self.timer is not None:
            self.timer.cancel()
        with self._state_lock:
            self._completed = True
            timed_out = self._timed_out
        if self.pool is not None:
            self.pool.release()
        if timed_out:
            self.run.planner._compensate(self, future)
            return
        try:
            result = future.result()
            exc: Optional[BaseException] = None
        except BaseException as error:
            result, exc = None, error
        self.run._op_finished(self, result, exc)

    def _on_timeout(self) -> None:
        with self._state_lock:
            if self._completed:
                return
            self._timed_out = True
            future = self.future
        self.run.planner._count_timeout(self)
        # A still-queued op (future is None) never launches; a pending
        # future (backend never started) cancels cleanly — no side
        # effects, token returns via the done callback.  A running one
        # keeps going; compensation catches it at the end.
        if future is not None:
            future.cancel()
        self.run._op_timed_out(
            self,
            OperationTimeout(
                self.domain,
                f"{self.kind} timed out after {self.timeout_s:g}s",
            ),
        )


class _JobRun:
    """Event-driven execution of one :class:`InstallJob`.

    State transitions happen under ``_lock``; southbound submissions
    and unwinds run outside it.  Callbacks arrive on whatever thread
    resolved the future — a backend's completion timer, a shim thread,
    or the submitting thread itself for synchronous backends — so every
    method below must be thread-safe and reentrancy-tolerant.
    """

    def __init__(
        self,
        planner: "BatchInstallPlanner",
        job: InstallJob,
        index: int,
        pools: Dict[str, _TokenPool],
        on_settled: Callable[["_JobRun", InstallOutcome], None],
    ) -> None:
        self.planner = planner
        self.registry = planner.registry
        self.job = job
        self.index = index
        self.pools = pools
        self.on_settled = on_settled
        self.rollbacks: List[Tuple[str, Reservation, str]] = []
        self._lock = threading.RLock()
        self._attempt_index = 0
        self._last_error: Optional[TransactionError] = None
        self._settled = False
        # Per-attempt state (reset by _start_attempt).
        self._domains: List[str] = []
        self._specs: Mapping[str, DomainSpec] = {}
        self._waves: List[List[str]] = []
        self._wave_index = 0
        self._wave_pending = 0
        self._wave_error: Optional[Tuple[str, BaseException]] = None
        self._prepared: Dict[str, Reservation] = {}
        self._abandoned: set = set()
        self._commit_order: List[str] = []
        self._commit_index = 0
        # Unwind-chain state (reset by _unwind_and_fail).
        self._unwind_pairs: List[Tuple[DomainDriver, Reservation]] = []
        self._unwind_index = 0
        self._unwind_errors: List[str] = []
        self._unwind_exc: Optional[BaseException] = None
        self._unwind_failed_domain = ""
        self._unwind_reason = ""
        self._unwind_timed_out = False

    # ------------------------------------------------------------------
    # Attempt lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._next_attempt()

    def _next_attempt(self) -> None:
        with self._lock:
            if self._attempt_index >= len(self.job.attempts):
                error = self._last_error or TransactionError(
                    "planner", f"job {self.job.slice_id} has no install attempts"
                )
                outcome = InstallOutcome(
                    job=self.job, error=error, rollbacks=self.rollbacks
                )
            else:
                specs = self.job.attempts[self._attempt_index]
                self._attempt_index += 1
                outcome = None
        if outcome is not None:
            self._settle(outcome)
            return
        self._start_attempt(specs)

    def _start_attempt(self, specs: Mapping[str, DomainSpec]) -> None:
        domains = self.registry.domains()
        missing = [d for d in domains if d not in specs]
        surplus = [d for d in specs if d not in domains]
        if missing or surplus:
            self._fail_attempt(
                TransactionError(
                    "planner",
                    f"spec/domain mismatch (missing={missing}, surplus={surplus})",
                )
            )
            return
        with self._lock:
            self._domains = domains
            self._specs = specs
            self._waves = self.planner.prepare_waves(domains)
            self._wave_index = 0
            self._wave_error = None
            self._prepared = {}
            self._abandoned = set()
            self._commit_order = []
            self._commit_index = 0
        self._launch_wave()

    def _fail_attempt(self, exc: BaseException) -> None:
        if not isinstance(exc, TransactionError):
            exc = TransactionError(  # defensive: a broken driver must
                "planner", f"unexpected {type(exc).__name__}: {exc}"
            )  # not take down the batch
        with self._lock:
            self._last_error = exc
            if isinstance(exc, OperationTimeout):
                # A hung domain fails the *job*, not just the attempt:
                # further attempts would hammer the hung backend — and
                # trip the per-slice in-flight guard while the
                # straggler is still out — masking the real failure.
                self._attempt_index = len(self.job.attempts)
        self._next_attempt()

    def _settle(self, outcome: InstallOutcome) -> None:
        with self._lock:
            if self._settled:
                return
            self._settled = True
        self.on_settled(self, outcome)

    # ------------------------------------------------------------------
    # Prepare phase: chained parallel waves
    # ------------------------------------------------------------------
    def _launch_wave(self) -> None:
        with self._lock:
            if self._wave_index >= len(self._waves):
                wave = None
            else:
                wave = self._waves[self._wave_index]
                self._wave_index += 1
                self._wave_pending = len(wave)
        if wave is None:
            self._validate_and_commit()
            return
        for domain in wave:
            self._submit(
                domain,
                "prepare",
                lambda drv, d=domain: drv.prepare_async(self._specs[d]),
            )

    def _submit(
        self,
        domain: str,
        kind: str,
        launch: Callable[[DomainDriver], Future],
        reservation: Optional[Reservation] = None,
    ) -> None:
        """Acquire the domain's token (now or queued), then launch."""
        try:
            driver = self.registry.get(domain)
        except DriverError as exc:
            if kind == "prepare":
                self._prepare_done(domain, None, exc)
            else:
                self._commit_done(domain, exc)
            return
        pool = self.pools.get(domain)
        op = _Op(
            self,
            domain,
            kind,
            driver,
            pool,
            self.planner._timeout_for(driver),
            reservation=reservation,
        )

        def thunk() -> None:
            if not op.should_launch():
                # Timed out while queued for the token: the job already
                # moved on; pass the token straight along.
                if pool is not None:
                    pool.release()
                return
            if op.queued_at is not None:
                # Token-pool wait: submission → launch, including time
                # queued behind a saturated/hung backend.
                self.planner.obs.observe(
                    "planner.token_wait",
                    (perf_counter() - op.queued_at) * 1000.0,
                    label=domain,
                )
            try:
                future = launch(driver)
            except BaseException as exc:
                op.fail_now(exc)
                return
            op.attach(future)

        # The deadline clock starts now — queueing time behind a hung
        # serial backend counts against the budget.
        op.arm()
        if pool is None:  # driver registered mid-batch — no cap known
            thunk()
        else:
            pool.acquire(thunk)

    def _op_finished(
        self, op: _Op, result: Any, exc: Optional[BaseException]
    ) -> None:
        if exc is None:
            op.span.finish()
        else:
            op.span.finish("error", error=str(exc))
        if op.kind == "prepare":
            if exc is None and isinstance(result, Reservation):
                self.planner._record(
                    "driver.prepared", op.domain,
                    result.slice_id, result.reservation_id,
                )
            self._prepare_done(op.domain, result, exc)
        elif op.kind == "commit":
            if exc is None and op.reservation is not None:
                self.planner._record(
                    "driver.committed", op.domain,
                    op.reservation.slice_id, op.reservation.reservation_id,
                )
            self._commit_done(op.domain, exc)
        else:
            self._unwind_done(op, exc)

    def _op_timed_out(self, op: _Op, exc: OperationTimeout) -> None:
        # Deadline fired first: the span closes as an error *now*, on
        # the timer thread — the op's eventual late completion routes
        # to compensation and must not leave an in-flight span behind.
        op.span.finish("error", error=str(exc))
        # The straggler is owned by the compensation path from here on;
        # the job's own unwind must not touch its reservation.
        with self._lock:
            self._abandoned.add(op.domain)
        if op.kind == "prepare":
            self._prepare_done(op.domain, None, exc)
        elif op.kind == "commit":
            self._commit_done(op.domain, exc)
        else:
            with self._lock:
                self._unwind_timed_out = True
            self._unwind_done(op, exc)

    def _prepare_done(
        self, domain: str, reservation: Any, exc: Optional[BaseException]
    ) -> None:
        with self._lock:
            if exc is None and isinstance(reservation, Reservation):
                self._prepared[domain] = reservation
            elif self._wave_error is None:
                self._wave_error = (
                    domain,
                    exc
                    or DriverError(domain, "prepare returned no reservation"),
                )
            self._wave_pending -= 1
            if self._wave_pending > 0:
                return
            error = self._wave_error
        if error is not None:
            self._unwind_and_fail(error[1], error[0])
        else:
            self._launch_wave()

    # ------------------------------------------------------------------
    # Validation + commit phase: registry-order future chain
    # ------------------------------------------------------------------
    def _validate_and_commit(self) -> None:
        with self._lock:
            reservations = dict(self._prepared)
            self._commit_order = [d for d in self._domains if d in self._prepared]
            self._commit_index = 0
        try:
            if self.job.validate is not None:
                self.job.validate(reservations)
        except BaseException as exc:
            self._unwind_and_fail(exc, "planner")
            return
        self._commit_next()

    def _commit_next(self) -> None:
        with self._lock:
            if self._commit_index >= len(self._commit_order):
                domain = None
                outcome = InstallOutcome(
                    job=self.job,
                    reservations=dict(self._prepared),
                    rollbacks=self.rollbacks,
                )
            else:
                domain = self._commit_order[self._commit_index]
                self._commit_index += 1
                outcome = None
        if domain is None:
            self._settle(outcome)
            return
        reservation = self._prepared[domain]
        self._submit(
            domain,
            "commit",
            lambda drv, r=reservation: drv.commit_async(r),
            reservation=reservation,
        )

    def _commit_done(self, domain: str, exc: Optional[BaseException]) -> None:
        if exc is None:
            self._commit_next()
        else:
            self._unwind_and_fail(exc, domain)

    # ------------------------------------------------------------------
    # Unwind: reverse-order async chain, deadline-covered like any
    # other southbound operation
    # ------------------------------------------------------------------
    def _unwind_and_fail(self, exc: BaseException, failed_domain: str) -> None:
        """Unwind everything this attempt prepared/committed, in
        reverse registry order, then fail the attempt with the composed
        error.  Each compensation goes through the driver's async
        surface under the same per-operation deadline as the forward
        path — a backend that hangs *during rollback* costs the job its
        deadline, not the batch its liveness (the straggler finishes in
        the background; a late rollback is itself the compensation)."""
        with self._lock:
            pairs = [
                (self.registry.get(d), self._prepared[d])
                for d in self._domains
                if d in self._prepared and d not in self._abandoned
            ]
            self._unwind_pairs = list(reversed(pairs))
            self._unwind_index = 0
            self._unwind_errors = []
            self._unwind_exc = exc
            self._unwind_failed_domain = failed_domain
            self._unwind_reason = str(exc)
            self._unwind_timed_out = False
        self._unwind_next()

    def _unwind_next(self) -> None:
        while True:
            with self._lock:
                if self._unwind_index >= len(self._unwind_pairs):
                    pair = None
                else:
                    pair = self._unwind_pairs[self._unwind_index]
                    self._unwind_index += 1
            if pair is None:
                self._finish_unwind()
                return
            driver, reservation = pair
            state = reservation.state
            if state not in (
                ReservationState.COMMITTED,
                ReservationState.PREPARED,
            ):
                continue  # already unwound — nothing to do
            # Compensations bypass the token pools: they must not queue
            # behind the very operations they are cleaning up after.
            op = _Op(
                self,
                driver.domain,
                "unwind",
                driver,
                None,
                self.planner._timeout_for(driver),
                reservation=reservation,
            )
            op.arm()
            try:
                if state is ReservationState.COMMITTED:
                    future = driver.release_async(reservation.slice_id)
                else:
                    future = driver.rollback_async(reservation)
            except BaseException as launch_exc:
                op.fail_now(launch_exc)
                return
            op.attach(future)
            return

    def _unwind_done(self, op: _Op, exc: Optional[BaseException]) -> None:
        if exc is None and op.reservation is not None:
            self.planner._record(
                "driver.released"
                if op.reservation.state is ReservationState.RELEASED
                else "driver.rolled_back",
                op.domain,
                op.reservation.slice_id,
                op.reservation.reservation_id,
            )
        with self._lock:
            if exc is None:
                # Same contract as InstallTransaction.unwind: the
                # rollback notification fires only for compensations
                # that actually landed.
                self.rollbacks.append(
                    (op.domain, op.reservation, self._unwind_reason)
                )
            else:  # a failing compensation never stops the rest
                self._unwind_errors.append(f"[{op.domain}] {exc}")
        self._unwind_next()

    def _finish_unwind(self) -> None:
        with self._lock:
            exc = self._unwind_exc
            failed_domain = self._unwind_failed_domain
            errors = list(self._unwind_errors)
            if self._unwind_timed_out:
                # A backend hung mid-compensation: its in-flight guard
                # will refuse this slice until the straggler returns,
                # so further attempts would only mask the failure.
                self._attempt_index = len(self.job.attempts)
        self._fail_attempt(compose_unwind_error(exc, failed_domain, errors))


class BatchInstallPlanner:
    """Asynchronous two-phase installer over a :class:`DriverRegistry`.

    Args:
        registry: The southbound drivers, in install order.
        max_workers: How many jobs may be *in flight* concurrently (a
            token pool, not a thread pool — the engine parks no thread
            per job).  Kept for API compatibility with the threaded
            engine; ``1`` still yields deterministic job-by-job order.
        batch_size: :meth:`install` splits larger job lists into groups
            of this size so one giant admission burst cannot monopolize
            the drivers for unbounded wall-clock time.
        on_rollback: Fired (on the *calling* thread, after the batch
            completes) for each unwound reservation of each **failed**
            job — successful installs surface none of their retries.
        operation_timeout_s: Default per-operation deadline applied to
            drivers that do not declare their own
            ``DriverCapabilities.operation_timeout_s``.  ``None``: wait
            forever, like the blocking path.
        on_record: Durability hook fired for every *landed* southbound
            reservation transition — ``(record_type, domain, slice_id,
            reservation_id)`` with record types ``driver.prepared`` /
            ``driver.committed`` / ``driver.rolled_back`` /
            ``driver.released`` / ``driver.compensated``.  Called from
            completion threads, so the hook must be thread-safe (the
            control-plane journal is); a raising hook is swallowed —
            the install's fate never depends on the audit trail.
        obs: Control-plane observability sink (spans per southbound
            op, token-wait histograms).  Defaults to the process-wide
            :func:`~repro.obs.registry.default_observability` — the
            shared no-op unless ``REPRO_OBS_ENABLED=1``; an
            observability-enabled orchestrator passes its own.
    """

    def __init__(
        self,
        registry: DriverRegistry,
        max_workers: int = 8,
        batch_size: int = 16,
        on_rollback: Optional[RollbackHook] = None,
        operation_timeout_s: Optional[float] = None,
        on_record: Optional[Callable[[str, str, str, str], None]] = None,
        obs: Any = None,
    ) -> None:
        if max_workers < 1:
            raise DriverError("planner", f"max_workers must be >= 1, got {max_workers}")
        if batch_size < 1:
            raise DriverError("planner", f"batch_size must be >= 1, got {batch_size}")
        self.registry = registry
        self.max_workers = int(max_workers)
        self.batch_size = int(batch_size)
        self.on_rollback = on_rollback
        self.operation_timeout_s = operation_timeout_s
        self.on_record = on_record
        self.obs = obs if obs is not None else default_observability()
        #: Completed-batch counters (telemetry/debugging).
        self.batches_run = 0
        self.jobs_installed = 0
        self.jobs_failed = 0
        #: Southbound operations that blew their deadline.
        self.ops_timed_out = 0
        #: Late completions of timed-out operations that the background
        #: compensation path had to roll back or release.
        self.ops_compensated = 0
        # Timeout/compensation counters are bumped from concurrent
        # timer/completion threads; the batch counters above only ever
        # change on the calling thread.
        self._counter_lock = threading.Lock()
        # Northbound-worthy incidents (op timeouts, background
        # compensations) buffered for the orchestrator to drain on
        # *its* thread — completion threads must never touch the event
        # feed directly.
        self._pending_events: List[Tuple[str, Dict[str, Any]]] = []
        # prepare_waves cache: jobs call it from completion threads.
        self._waves_lock = threading.Lock()
        self._waves_cache: Dict[Tuple[str, ...], List[List[str]]] = {}
        self._waves_seen_version = -1

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, jobs: Sequence[InstallJob]) -> List[List[InstallJob]]:
        """Group pending installs into bounded batches, in order."""
        jobs = list(jobs)
        return [
            jobs[i : i + self.batch_size]
            for i in range(0, len(jobs), self.batch_size)
        ]

    def prepare_waves(self, domains: Sequence[str]) -> List[List[str]]:
        """Partition ``domains`` into parallel prepare waves honouring
        every driver's declared ``prepare_after`` dependencies
        (dependencies outside ``domains`` are treated as satisfied; a
        dependency cycle degrades to registry order rather than
        deadlocking).

        The partition only depends on the domain list and the drivers'
        declared capabilities, so it is cached per domains-tuple and
        invalidated by the registry's ``version`` counter — every job
        of every attempt in a window used to recompute it from scratch.
        """
        key = tuple(domains)
        with self._waves_lock:
            if self.registry.version != self._waves_seen_version:
                self._waves_cache.clear()
                self._waves_seen_version = self.registry.version
            cached = self._waves_cache.get(key)
        if cached is not None:
            return [list(wave) for wave in cached]
        waves = self._compute_prepare_waves(domains)
        with self._waves_lock:
            self._waves_cache[key] = [list(wave) for wave in waves]
        return waves

    def _compute_prepare_waves(self, domains: Sequence[str]) -> List[List[str]]:
        remaining = list(domains)
        present = set(remaining)
        placed: set = set()
        waves: List[List[str]] = []
        while remaining:
            wave = [
                d
                for d in remaining
                if all(
                    dep in placed or dep not in present
                    for dep in self.registry.get(d).capabilities().prepare_after
                )
            ]
            if not wave:  # cycle — fall back to one-at-a-time registry order
                wave = [remaining[0]]
            waves.append(wave)
            placed.update(wave)
            remaining = [d for d in remaining if d not in placed]
        return waves

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def install(self, jobs: Sequence[InstallJob]) -> List[InstallOutcome]:
        """Install every job, batch by batch; outcomes keep job order."""
        outcomes: List[InstallOutcome] = []
        for batch in self.plan(jobs):
            outcomes.extend(self.install_batch(batch))
        return outcomes

    def install_batch(self, batch: Sequence[InstallJob]) -> List[InstallOutcome]:
        """Run one batch of event-driven jobs; outcomes keep job order.

        The calling thread blocks until every job settles (commits,
        exhausts its attempts, or times out per the per-operation
        deadline) — but no thread is parked per job, so a hung domain
        stalls only the job that touched it.  ``on_rollback``
        notifications for failed jobs fire here, on the calling thread,
        after every job settled — completion threads never touch caller
        state.
        """
        batch = list(batch)
        if not batch:
            return []
        pools = {
            driver.domain: _TokenPool(
                max(1, driver.capabilities().max_concurrent_installs)
            )
            for driver in self.registry.drivers()
        }
        job_tokens = _TokenPool(self.max_workers)
        outcomes: List[Optional[InstallOutcome]] = [None] * len(batch)
        all_settled = threading.Event()
        pending = [len(batch)]
        pending_lock = threading.Lock()

        def settled(run: _JobRun, outcome: InstallOutcome) -> None:
            outcomes[run.index] = outcome
            job_tokens.release()
            with pending_lock:
                pending[0] -= 1
                if pending[0] == 0:
                    all_settled.set()

        runs = [
            _JobRun(self, job, index, pools, settled)
            for index, job in enumerate(batch)
        ]
        for run in runs:
            job_tokens.acquire(run.start)
        all_settled.wait()
        self._record_outcomes(outcomes)
        return outcomes  # type: ignore[return-value]

    def _record_outcomes(self, outcomes: Sequence[InstallOutcome]) -> None:
        """Batch epilogue shared by both engines: counters, and the
        ``on_rollback`` fan-out for failed jobs — on the calling thread,
        after every job settled."""
        self.batches_run += 1
        for outcome in outcomes:
            if outcome.ok:
                self.jobs_installed += 1
            else:
                self.jobs_failed += 1
                if self.on_rollback is not None:
                    for domain, reservation, reason in outcome.rollbacks:
                        self.on_rollback(domain, reservation, reason)

    # ------------------------------------------------------------------
    # Deadlines + compensation
    # ------------------------------------------------------------------
    def _timeout_for(self, driver: DomainDriver) -> Optional[float]:
        declared = driver.capabilities().operation_timeout_s
        return declared if declared is not None else self.operation_timeout_s

    def _count_timeout(self, op: "_Op") -> None:
        with self._counter_lock:
            self.ops_timed_out += 1
        self._queue_event(
            "driver.op_timeout",
            domain=op.domain,
            kind=op.kind,
            slice_id=op.run.job.slice_id,
            timeout_s=op.timeout_s,
        )

    def _count_compensation(self, op: "_Op") -> None:
        with self._counter_lock:
            self.ops_compensated += 1
        self._queue_event(
            "driver.compensated",
            domain=op.domain,
            kind=op.kind,
            slice_id=op.run.job.slice_id,
        )

    def _queue_event(self, event_type: str, **payload: Any) -> None:
        """Buffer a northbound-worthy incident (thread-safe)."""
        with self._counter_lock:
            self._pending_events.append((event_type, payload))

    def drain_events(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Hand buffered incidents to the caller (the orchestrator
        emits them on the event feed from its own thread) and clear."""
        with self._counter_lock:
            drained, self._pending_events = self._pending_events, []
        return drained

    def _record(
        self, record_type: str, domain: str, slice_id: str, reservation_id: str
    ) -> None:
        """Fire the durability hook; an audit failure never fails an
        install (and a closed journal drops writes by design)."""
        if self.on_record is None:
            return
        try:
            self.on_record(record_type, domain, slice_id, reservation_id)
        except Exception:  # pragma: no cover - audit is best-effort
            pass

    def _compensate(self, op: _Op, future: Future) -> None:
        """A timed-out operation eventually finished: undo whatever it
        did, best-effort, so a late success leaves zero residue (the
        owning job already unwound and settled without this domain)."""
        if future.cancelled():
            return  # never touched the backend
        try:
            result = future.result()
        except BaseException:
            result = None  # the straggler failed on its own — no hold
        try:
            if op.kind == "prepare":
                if isinstance(result, Reservation):
                    self._count_compensation(op)
                    op.driver.rollback(result)
                    self._record(
                        "driver.compensated", op.domain,
                        result.slice_id, result.reservation_id,
                    )
            elif op.reservation is not None:
                if op.reservation.state is ReservationState.COMMITTED:
                    self._count_compensation(op)
                    op.driver.release(op.reservation.slice_id)
                    self._record(
                        "driver.compensated", op.domain,
                        op.reservation.slice_id, op.reservation.reservation_id,
                    )
                elif op.reservation.state is ReservationState.PREPARED:
                    self._count_compensation(op)
                    op.driver.rollback(op.reservation)
                    self._record(
                        "driver.compensated", op.domain,
                        op.reservation.slice_id, op.reservation.reservation_id,
                    )
        except BaseException:  # pragma: no cover - best effort by design
            pass


class ThreadedInstallPlanner(BatchInstallPlanner):
    """The pre-async thread-pool engine: one worker thread parked per
    job, blocking southbound calls, semaphore concurrency caps.

    Retained as the measured baseline of the D8d stall-isolation
    benchmark (a single hung southbound call parks a worker and
    degrades the whole batch — exactly what the event-driven engine
    eliminates) and as an escape hatch for debugging scheduler-
    dependent behaviour.  Deadlines (``operation_timeout_s``) are *not*
    honoured here: a blocking call cannot be preempted.
    """

    def install_batch(self, batch: Sequence[InstallJob]) -> List[InstallOutcome]:
        batch = list(batch)
        if not batch:
            return []
        semaphores = {
            driver.domain: threading.BoundedSemaphore(
                max(1, driver.capabilities().max_concurrent_installs)
            )
            for driver in self.registry.drivers()
        }
        if len(batch) == 1:
            # No cross-slice concurrency to win; skip the job pool (the
            # prepare pool still fans out across domains).
            with ThreadPoolExecutor(max_workers=self.max_workers) as prep_pool:
                outcomes = [self._run_job(batch[0], prep_pool, semaphores)]
        else:
            with ThreadPoolExecutor(
                max_workers=min(len(batch), self.max_workers),
                thread_name_prefix="install-job",
            ) as job_pool, ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="install-prepare",
            ) as prep_pool:
                futures = [
                    job_pool.submit(self._run_job, job, prep_pool, semaphores)
                    for job in batch
                ]
                outcomes = [future.result() for future in futures]
        self._record_outcomes(outcomes)
        return outcomes

    def _run_job(
        self,
        job: InstallJob,
        prep_pool: ThreadPoolExecutor,
        semaphores: Dict[str, threading.Semaphore],
    ) -> InstallOutcome:
        """Try each attempt in order until one commits; never raises."""
        rollbacks: List[Tuple[str, Reservation, str]] = []
        unwinder = InstallTransaction(
            self.registry,
            on_rollback=lambda d, r, reason: rollbacks.append((d, r, reason)),
        )
        last_error: Optional[TransactionError] = None
        for specs in job.attempts:
            try:
                reservations = self._attempt(job, specs, prep_pool, semaphores, unwinder)
            except TransactionError as exc:
                last_error = exc
                continue
            except Exception as exc:  # defensive: a broken driver must
                last_error = TransactionError(  # not take down the batch
                    "planner", f"unexpected {type(exc).__name__}: {exc}"
                )
                continue
            return InstallOutcome(job=job, reservations=reservations, rollbacks=rollbacks)
        if last_error is None:
            last_error = TransactionError(
                "planner", f"job {job.slice_id} has no install attempts"
            )
        return InstallOutcome(job=job, error=last_error, rollbacks=rollbacks)

    def _attempt(
        self,
        job: InstallJob,
        specs: Mapping[str, DomainSpec],
        prep_pool: ThreadPoolExecutor,
        semaphores: Dict[str, threading.Semaphore],
        unwinder: InstallTransaction,
    ) -> Dict[str, Reservation]:
        """One prepare(parallel) → validate → commit(ordered) attempt.

        Raises:
            TransactionError: On any failure, after unwinding everything
                this attempt prepared/committed, in reverse registry
                order.
        """
        domains = self.registry.domains()
        missing = [d for d in domains if d not in specs]
        surplus = [d for d in specs if d not in domains]
        if missing or surplus:
            raise TransactionError(
                "planner",
                f"spec/domain mismatch (missing={missing}, surplus={surplus})",
            )
        prepared_by_domain: Dict[str, Reservation] = {}

        def ordered_pairs() -> List[Tuple[Any, Reservation]]:
            return [
                (self.registry.get(d), prepared_by_domain[d])
                for d in domains
                if d in prepared_by_domain
            ]

        # --- Prepare phase: parallel waves --------------------------------
        for wave in self.prepare_waves(domains):
            futures = {
                domain: prep_pool.submit(
                    self._prepare_one, domain, specs[domain], semaphores
                )
                for domain in wave
            }
            wave_error: Optional[Tuple[str, Exception]] = None
            for domain, future in futures.items():
                try:
                    prepared_by_domain[domain] = future.result()
                except Exception as exc:
                    if wave_error is None:
                        wave_error = (domain, exc)
            if wave_error is not None:
                unwinder.unwind_and_raise(ordered_pairs(), wave_error[1], wave_error[0])
        reservations = dict(prepared_by_domain)
        # --- Validation + commit phase: registry order --------------------
        failed_domain = "planner"
        try:
            if job.validate is not None:
                job.validate(reservations)
            for domain in domains:
                failed_domain = domain
                self.registry.get(domain).commit(reservations[domain])
        except Exception as exc:
            unwinder.unwind_and_raise(ordered_pairs(), exc, failed_domain)
        return reservations

    def _prepare_one(
        self,
        domain: str,
        spec: DomainSpec,
        semaphores: Dict[str, threading.Semaphore],
    ) -> Reservation:
        """Prepare one domain under its concurrency cap."""
        semaphore = semaphores.get(domain)
        if semaphore is None:  # driver registered mid-batch — no cap known
            return self.registry.get(domain).prepare(spec)
        with semaphore:
            return self.registry.get(domain).prepare(spec)


__all__ = [
    "BatchInstallPlanner",
    "InstallJob",
    "InstallOutcome",
    "ThreadedInstallPlanner",
]
