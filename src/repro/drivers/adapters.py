"""Adapter drivers wrapping the simulator's domain controllers.

Each adapter translates the uniform :class:`~repro.drivers.base.DomainDriver`
contract onto one controller's native vocabulary:

========== ============================ ===========================
domain      prepare / rollback           native controller calls
========== ============================ ===========================
``ran``     install_slice / remove_slice :class:`~repro.ran.controller.RanController`
``transport`` reserve_path / release_path :class:`~repro.transport.controller.TransportController`
``cloud``   deploy / teardown            :class:`~repro.cloud.controller.CloudController`
``epc``     bind instance / shutdown     :class:`~repro.epc.instance.EpcInstance`
========== ============================ ===========================

None of the controllers has native two-phase semantics, so ``prepare``
performs the real reservation and ``rollback`` the compensating
release (``capabilities().transactional`` is False); ``commit`` is a
bookkeeping step.  :func:`build_default_registry` wires all four in
install order — the registry any alternative backend (or an injected
:class:`~repro.drivers.mock.MockDriver`) extends.

None of the simulator controllers is thread-safe either, so every
adapter declares ``max_concurrent_installs=1``: under the concurrent
batch planner, :class:`~repro.drivers.base.BaseDriver` then serializes
each adapter's lifecycle calls.  The cloud and EPC adapters touch the
*same* controller (the EPC binds to the stack the cloud deployed), so
:func:`build_default_registry` hands them one shared serialization
lock — the per-controller half of the locking discipline.  The EPC
adapter additionally declares ``prepare_after=("cloud",)``: within one
install its prepare runs only after the cloud stack exists, while the
other domains prepare in parallel.

None of the adapters overrides the futures-based async lifecycle: the
base-class shim runs each blocking controller call on a daemon thread,
which already gives the async batch planner a non-blocking surface
(the engine never parks *its own* execution on a slow adapter).  Every
adapter accepts an ``operation_timeout_s`` declaring how long the
planner should wait on one of its operations before treating the
backend as hung — ``None`` for the in-process simulator controllers,
a real RPC deadline for adapters wrapping remote SDN/NFV controllers.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from repro.cloud.controller import CloudController
from repro.cloud.datacenter import CloudError
from repro.cloud.heat import HeatStack, StackState
from repro.drivers.base import (
    BaseDriver,
    DomainSpec,
    DriverCapabilities,
    DriverError,
    Reservation,
    ReservationState,
)
from repro.drivers.registry import DriverRegistry
from repro.epc.components import epc_template
from repro.epc.instance import EpcError, EpcInstance
from repro.ran.controller import RanController
from repro.ran.enb import RanConfigError
from repro.transport.controller import TransportController, TransportError
from repro.transport.paths import PathRequest


class RanDriver(BaseDriver):
    """Radio domain: PRB reservations on a fleet of eNBs.

    Spec attributes: ``plmn`` (required :class:`~repro.core.slices.PLMN`),
    ``enb_id`` (optional pinned cell; auto-selected when absent).
    """

    domain = "ran"

    def __init__(
        self,
        controller: RanController,
        serial_lock: Optional[threading.RLock] = None,
        operation_timeout_s: Optional[float] = None,
    ) -> None:
        super().__init__(serial_lock=serial_lock)
        self.controller = controller
        self.operation_timeout_s = operation_timeout_s

    def capabilities(self) -> DriverCapabilities:
        return DriverCapabilities(
            domain=self.domain,
            resource_units=("prbs",),
            supports_resize=True,
            operation_timeout_s=self.operation_timeout_s,
        )

    def feasible(self, spec: DomainSpec) -> bool:
        enbs = self.controller.enbs()
        if not enbs:
            return False
        nominal = enbs[0].prbs_for_throughput(spec.throughput_mbps)
        effective = max(1, round(nominal * spec.effective_fraction))
        return self.controller.best_enb_for(spec.throughput_mbps, effective) is not None

    def _native_present(self, slice_id: str) -> bool:
        return self.controller.serving_enb_of(slice_id) is not None

    def _do_prepare(self, spec: DomainSpec) -> Dict[str, Any]:
        plmn = spec.attributes.get("plmn")
        if plmn is None:
            raise DriverError(self.domain, f"slice {spec.slice_id} has no PLMN")
        try:
            allocation = self.controller.install_slice(
                spec.slice_id,
                plmn,
                spec.throughput_mbps,
                effective_fraction=spec.effective_fraction,
                enb_id=spec.attributes.get("enb_id"),
            )
        except RanConfigError as exc:
            raise DriverError(self.domain, str(exc)) from exc
        return {
            "allocation": allocation,
            "enb_id": allocation.enb_id,
            "enb_node": self.controller.enb(allocation.enb_id).transport_node,
            "latency_ms": allocation.latency_ms,
        }

    def _do_rollback(self, reservation: Reservation) -> None:
        try:
            self.controller.remove_slice(reservation.slice_id)
        except RanConfigError as exc:
            raise DriverError(self.domain, str(exc)) from exc

    def _do_release(self, slice_id: str) -> None:
        try:
            self.controller.remove_slice(slice_id)
        except RanConfigError as exc:
            raise DriverError(self.domain, str(exc)) from exc

    def _do_resize(self, slice_id: str, spec: DomainSpec,
                   reservation: Optional[Reservation]) -> Dict[str, Any]:
        current = reservation.details.get("allocation") if reservation else None
        try:
            if (
                current is not None
                and spec.throughput_mbps == reservation.spec.throughput_mbps
            ):
                # Overbooking knob only: move the effective commitment
                # under the unchanged nominal (old allocator.resize path).
                from repro.ran.controller import RanAllocation

                new_prbs = max(1, round(current.nominal_prbs * spec.effective_fraction))
                self.controller.resize_slice(slice_id, new_prbs)
                allocation = RanAllocation(
                    enb_id=current.enb_id,
                    nominal_prbs=current.nominal_prbs,
                    effective_prbs=new_prbs,
                    latency_ms=current.latency_ms,
                )
            else:
                # Tenant-requested scaling: re-nominate.
                allocation = self.controller.modify_slice(
                    slice_id, spec.throughput_mbps, spec.effective_fraction
                )
        except RuntimeError as exc:  # RanConfigError or PrbError
            if isinstance(exc, DriverError):
                raise
            raise DriverError(self.domain, str(exc)) from exc
        return {"allocation": allocation, "enb_id": allocation.enb_id}

    def _do_health(self, slice_id: str) -> Dict[str, Any]:
        enb_id = self.controller.serving_enb_of(slice_id)
        return {
            "domain": self.domain,
            "slice_id": slice_id,
            "healthy": enb_id is not None,
            "enb_id": enb_id,
        }

    def utilization(self) -> dict:
        return self.controller.utilization()


class TransportDriver(BaseDriver):
    """Transport domain: constrained paths + flow programming.

    Spec attributes: ``src``/``dst`` (required node names),
    ``max_delay_ms`` (required path-delay budget), ``plmn_id``
    (required for flow programming).
    """

    domain = "transport"

    def __init__(
        self,
        controller: TransportController,
        serial_lock: Optional[threading.RLock] = None,
        operation_timeout_s: Optional[float] = None,
    ) -> None:
        super().__init__(serial_lock=serial_lock)
        self.controller = controller
        self.operation_timeout_s = operation_timeout_s

    def capabilities(self) -> DriverCapabilities:
        return DriverCapabilities(
            domain=self.domain,
            resource_units=("mbps",),
            supports_resize=True,
            supports_repair=True,
            operation_timeout_s=self.operation_timeout_s,
        )

    def _path_request(self, spec: DomainSpec) -> PathRequest:
        try:
            return PathRequest(
                src=spec.attributes["src"],
                dst=spec.attributes["dst"],
                min_bandwidth_mbps=spec.throughput_mbps,
                max_delay_ms=spec.attributes["max_delay_ms"],
            )
        except KeyError as exc:
            raise DriverError(
                self.domain, f"spec missing transport attribute {exc}"
            ) from None

    def feasible(self, spec: DomainSpec) -> bool:
        try:
            request = self._path_request(spec)
        except DriverError:
            return False
        return self.controller.feasible(request)

    def _native_present(self, slice_id: str) -> bool:
        return self.controller.allocation_of(slice_id) is not None

    def _do_prepare(self, spec: DomainSpec) -> Dict[str, Any]:
        request = self._path_request(spec)
        plmn_id = spec.attributes.get("plmn_id")
        if plmn_id is None:
            raise DriverError(self.domain, f"slice {spec.slice_id} has no PLMN")
        try:
            allocation = self.controller.reserve_path(
                spec.slice_id,
                plmn_id,
                request,
                effective_fraction=spec.effective_fraction,
            )
        except TransportError as exc:
            raise DriverError(self.domain, str(exc)) from exc
        return {
            "allocation": allocation,
            "delay_ms": allocation.delay_ms,
            "link_ids": list(allocation.path.link_ids),
        }

    def _do_rollback(self, reservation: Reservation) -> None:
        try:
            self.controller.release_path(reservation.slice_id)
        except TransportError as exc:
            raise DriverError(self.domain, str(exc)) from exc

    def _do_release(self, slice_id: str) -> None:
        try:
            self.controller.release_path(slice_id)
        except TransportError as exc:
            raise DriverError(self.domain, str(exc)) from exc

    def _do_resize(self, slice_id: str, spec: DomainSpec,
                   reservation: Optional[Reservation]) -> Dict[str, Any]:
        try:
            if (
                reservation is not None
                and spec.throughput_mbps == reservation.spec.throughput_mbps
            ):
                # Overbooking knob only (old allocator.resize path).
                self.controller.resize_path(
                    slice_id, spec.throughput_mbps * spec.effective_fraction
                )
                allocation = self.controller.allocation_of(slice_id)
            else:
                allocation = self.controller.modify_bandwidth(
                    slice_id, spec.throughput_mbps, spec.effective_fraction
                )
        except RuntimeError as exc:  # TransportError or LinkError
            if isinstance(exc, DriverError):
                raise
            raise DriverError(self.domain, str(exc)) from exc
        return {
            "allocation": allocation,
            "delay_ms": allocation.delay_ms,
            "link_ids": list(allocation.path.link_ids),
        }

    def _do_health(self, slice_id: str) -> Dict[str, Any]:
        try:
            healthy = self.controller.path_healthy(slice_id)
        except TransportError as exc:
            raise DriverError(self.domain, str(exc)) from exc
        return {"domain": self.domain, "slice_id": slice_id, "healthy": healthy}

    def repair(self, slice_id: str) -> Reservation:
        try:
            allocation = self.controller.repair_path(slice_id)
        except TransportError as exc:
            raise DriverError(self.domain, str(exc)) from exc
        reservation = self.reservation_of(slice_id)
        details = {
            "allocation": allocation,
            "delay_ms": allocation.delay_ms,
            "link_ids": list(allocation.path.link_ids),
        }
        if reservation is not None:
            reservation.details.update(details)
            return reservation
        # Legacy (out-of-band) install: the controller already holds the
        # repaired reservation at its real nominal/effective split, so
        # only a tracking record is synthesized — no backend mutation
        # (a resize here would inflate an overbooked slice to nominal).
        fraction = (
            allocation.effective_mbps / allocation.nominal_mbps
            if allocation.nominal_mbps > 0
            else 1.0
        )
        reservation = Reservation(
            reservation_id=f"{self.domain}-res-{next(self._ids):06d}",
            domain=self.domain,
            slice_id=slice_id,
            spec=DomainSpec(
                slice_id=slice_id,
                throughput_mbps=allocation.nominal_mbps,
                effective_fraction=fraction,
            ),
            state=ReservationState.COMMITTED,
            details=details,
        )
        self._reservations[slice_id] = reservation
        return reservation

    def utilization(self) -> dict:
        return self.controller.utilization()


class CloudDriver(BaseDriver):
    """Cloud domain: per-slice Heat stacks in edge/core datacenters.

    Spec attributes: ``dc_id`` (required target datacenter),
    ``template`` (optional :class:`~repro.cloud.heat.HeatTemplate`;
    defaults to the standard vEPC template for the slice).
    """

    domain = "cloud"

    def __init__(
        self,
        controller: CloudController,
        serial_lock: Optional[threading.RLock] = None,
        operation_timeout_s: Optional[float] = None,
    ) -> None:
        super().__init__(serial_lock=serial_lock)
        self.controller = controller
        self.operation_timeout_s = operation_timeout_s

    def capabilities(self) -> DriverCapabilities:
        return DriverCapabilities(
            domain=self.domain,
            resource_units=("vcpus",),
            operation_timeout_s=self.operation_timeout_s,
        )

    def feasible(self, spec: DomainSpec) -> bool:
        template = spec.attributes.get("template") or epc_template(spec.slice_id)
        dc_id = spec.attributes.get("dc_id")
        if dc_id is not None:
            try:
                return self.controller.datacenter(dc_id).can_host_flavors(
                    template.flavors()
                )
            except CloudError:
                return False
        return bool(self.controller.feasible_dcs(template))

    def _native_present(self, slice_id: str) -> bool:
        return self.controller.stack_of(slice_id) is not None

    def _do_prepare(self, spec: DomainSpec) -> Dict[str, Any]:
        dc_id = spec.attributes.get("dc_id")
        if dc_id is None:
            raise DriverError(self.domain, f"spec missing cloud attribute 'dc_id'")
        template = spec.attributes.get("template") or epc_template(spec.slice_id)
        try:
            allocation = self.controller.deploy(spec.slice_id, template, dc_id)
        except CloudError as exc:
            raise DriverError(self.domain, str(exc)) from exc
        return {
            "allocation": allocation,
            "dc_id": allocation.dc_id,
            "stack_id": allocation.stack_id,
            "processing_delay_ms": allocation.processing_delay_ms,
        }

    def _do_rollback(self, reservation: Reservation) -> None:
        try:
            self.controller.teardown(reservation.slice_id)
        except CloudError as exc:
            raise DriverError(self.domain, str(exc)) from exc

    def _do_release(self, slice_id: str) -> None:
        try:
            self.controller.teardown(slice_id)
        except CloudError as exc:
            raise DriverError(self.domain, str(exc)) from exc

    def _do_health(self, slice_id: str) -> Dict[str, Any]:
        stack = self.controller.stack_of(slice_id)
        healthy = stack is not None and stack.state is StackState.CREATE_COMPLETE
        return {
            "domain": self.domain,
            "slice_id": slice_id,
            "healthy": healthy,
            "stack_state": stack.state.value if stack is not None else None,
        }

    def utilization(self) -> dict:
        return self.controller.utilization()


class EpcDriver(BaseDriver):
    """vEPC domain: binds an :class:`EpcInstance` to the slice's stack.

    The instance manager used to live inline in the orchestrator's UE
    path; as a driver it participates in the install transaction (a
    slice whose core cannot bind is rolled back like any other domain).

    Spec attributes: ``plmn_id`` (required).  The hosting stack is
    resolved through ``stack_lookup`` (the cloud controller's
    ``stack_of`` in the default wiring), so the EPC domain must be
    registered *after* the cloud domain.
    """

    domain = "epc"

    def __init__(
        self,
        stack_lookup: Callable[[str], Optional[HeatStack]],
        serial_lock: Optional[threading.RLock] = None,
        operation_timeout_s: Optional[float] = None,
    ) -> None:
        super().__init__(serial_lock=serial_lock)
        self.stack_lookup = stack_lookup
        self.operation_timeout_s = operation_timeout_s
        self._instances: Dict[str, EpcInstance] = {}

    def capabilities(self) -> DriverCapabilities:
        # The vEPC binds to the cloud stack, so within one install its
        # prepare must wait for the cloud domain's prepare to land.
        return DriverCapabilities(
            domain=self.domain,
            prepare_after=("cloud",),
            operation_timeout_s=self.operation_timeout_s,
        )

    def feasible(self, spec: DomainSpec) -> bool:
        return spec.attributes.get("plmn_id") is not None

    def instance_of(self, slice_id: str) -> Optional[EpcInstance]:
        """The slice's live vEPC instance (None if absent)."""
        return self._instances.get(slice_id)

    def _native_present(self, slice_id: str) -> bool:
        return slice_id in self._instances

    def _do_prepare(self, spec: DomainSpec) -> Dict[str, Any]:
        plmn_id = spec.attributes.get("plmn_id")
        if plmn_id is None:
            raise DriverError(self.domain, f"slice {spec.slice_id} has no PLMN")
        stack = self.stack_lookup(spec.slice_id)
        if stack is None:
            raise DriverError(
                self.domain, f"slice {spec.slice_id} has no cloud stack to bind"
            )
        try:
            instance = EpcInstance(spec.slice_id, plmn_id, stack)
        except EpcError as exc:
            raise DriverError(self.domain, str(exc)) from exc
        self._instances[spec.slice_id] = instance
        return {"instance": instance, "plmn_id": plmn_id}

    def _do_rollback(self, reservation: Reservation) -> None:
        instance = self._instances.pop(reservation.slice_id, None)
        if instance is not None:
            instance.shutdown()

    def _do_release(self, slice_id: str) -> None:
        instance = self._instances.pop(slice_id, None)
        if instance is None:
            raise DriverError(self.domain, f"slice {slice_id} has no EPC instance")
        instance.shutdown()

    def _do_health(self, slice_id: str) -> Dict[str, Any]:
        instance = self._instances.get(slice_id)
        return {
            "domain": self.domain,
            "slice_id": slice_id,
            "healthy": instance is not None and instance.running,
            "active_sessions": instance.active_sessions if instance else 0,
        }

    def utilization(self) -> dict:
        return {
            "domain": self.domain,
            "active_instances": len(self._instances),
            "subscribers": sum(
                i.subscriber_count for i in self._instances.values()
            ),
            "active_sessions": sum(
                i.active_sessions for i in self._instances.values()
            ),
        }


def build_default_registry(allocator: Any) -> DriverRegistry:
    """The canonical four-domain registry over a wired testbed.

    ``allocator`` is anything exposing ``ran``/``transport``/``cloud``
    controllers (the :class:`~repro.core.allocation.MultiDomainAllocator`
    in practice).  Registration order is install order: RAN pins the
    ingress, transport reaches the DC, cloud hosts the stack, EPC binds
    to it.

    Each adapter serializes on *its controller's own lock* (the
    per-controller half of the locking discipline), so a direct caller
    honouring ``controller.lock`` and the drivers never interleave.
    The cloud and EPC drivers share the cloud controller's lock because
    they drive the same backend (the EPC's ``stack_lookup`` reads the
    stacks the cloud driver deploys); under the concurrent batch
    planner that controller therefore sees one caller at a time.
    """
    registry = DriverRegistry()
    registry.register(RanDriver(allocator.ran, serial_lock=allocator.ran.lock))
    registry.register(
        TransportDriver(allocator.transport, serial_lock=allocator.transport.lock)
    )
    registry.register(
        CloudDriver(allocator.cloud, serial_lock=allocator.cloud.lock)
    )
    registry.register(
        EpcDriver(allocator.cloud.stack_of, serial_lock=allocator.cloud.lock)
    )
    return registry


__all__ = [
    "CloudDriver",
    "EpcDriver",
    "RanDriver",
    "TransportDriver",
    "build_default_registry",
]
