"""Southbound domain-driver API.

A uniform, transactional contract between the orchestrator and every
domain backend:

- :mod:`repro.drivers.base` — the :class:`DomainDriver` ABC, the typed
  :class:`DomainSpec`/:class:`Reservation` dataclasses and the
  reservation lifecycle state machine.
- :mod:`repro.drivers.registry` — :class:`DriverRegistry`, the ordered
  pluggable mapping of domain name → driver.
- :mod:`repro.drivers.transaction` — :class:`InstallTransaction`, the
  two-phase prepare/commit coordinator with automatic rollback.
- :mod:`repro.drivers.planner` — :class:`BatchInstallPlanner`, the
  concurrent (fleet-scale) install engine running batches of install
  jobs over a thread pool with per-driver concurrency caps.
- :mod:`repro.drivers.adapters` — drivers wrapping the simulator's RAN,
  transport, cloud and vEPC controllers (+ the default registry).
- :mod:`repro.drivers.mock` — an in-memory backend used as the
  conformance reference, for failure injection, and as the thread-safe
  concurrency harness.
"""

from repro.drivers.base import (
    BaseDriver,
    DomainDriver,
    DomainSpec,
    DriverCapabilities,
    DriverError,
    Reservation,
    ReservationState,
)
from repro.drivers.registry import DriverRegistry
from repro.drivers.transaction import InstallTransaction, TransactionError
from repro.drivers.planner import BatchInstallPlanner, InstallJob, InstallOutcome
from repro.drivers.adapters import (
    CloudDriver,
    EpcDriver,
    RanDriver,
    TransportDriver,
    build_default_registry,
)
from repro.drivers.mock import MockDriver, NullDriver

__all__ = [
    "BaseDriver",
    "BatchInstallPlanner",
    "CloudDriver",
    "DomainDriver",
    "DomainSpec",
    "DriverCapabilities",
    "DriverError",
    "DriverRegistry",
    "EpcDriver",
    "InstallJob",
    "InstallOutcome",
    "InstallTransaction",
    "MockDriver",
    "NullDriver",
    "RanDriver",
    "Reservation",
    "ReservationState",
    "TransactionError",
    "TransportDriver",
    "build_default_registry",
]
