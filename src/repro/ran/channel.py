"""LTE channel model: CQI reporting and CQI→spectral-efficiency mapping.

The CQI table is the 4-bit table from 3GPP TS 36.213 (Table 7.2.3-1).
Spectral efficiency is bits per resource element; throughput per PRB
follows from the 12 subcarriers × 14 OFDM symbols per 1 ms subframe,
minus a control/reference-signal overhead fraction.

UE channel quality evolves as a mean-reverting (AR(1)/Ornstein-Uhlenbeck
style) SNR process mapped onto CQI, which yields realistic CQI
autocorrelation without simulating fading at symbol granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class CqiEntry:
    """One row of the 3GPP CQI table.

    Attributes:
        cqi: Index 0-15 (0 = out of range).
        modulation: Modulation scheme name.
        code_rate: Effective code rate × 1024.
        efficiency: Spectral efficiency in bits per resource element.
    """

    cqi: int
    modulation: str
    code_rate: int
    efficiency: float


# 3GPP TS 36.213 Table 7.2.3-1 (CQI 0 means "out of range": no service).
CQI_TABLE: tuple[CqiEntry, ...] = (
    CqiEntry(0, "none", 0, 0.0),
    CqiEntry(1, "QPSK", 78, 0.1523),
    CqiEntry(2, "QPSK", 120, 0.2344),
    CqiEntry(3, "QPSK", 193, 0.3770),
    CqiEntry(4, "QPSK", 308, 0.6016),
    CqiEntry(5, "QPSK", 449, 0.8770),
    CqiEntry(6, "QPSK", 602, 1.1758),
    CqiEntry(7, "16QAM", 378, 1.4766),
    CqiEntry(8, "16QAM", 490, 1.9141),
    CqiEntry(9, "16QAM", 616, 2.4063),
    CqiEntry(10, "64QAM", 466, 2.7305),
    CqiEntry(11, "64QAM", 567, 3.3223),
    CqiEntry(12, "64QAM", 666, 3.9023),
    CqiEntry(13, "64QAM", 772, 4.5234),
    CqiEntry(14, "64QAM", 873, 5.1152),
    CqiEntry(15, "64QAM", 948, 5.5547),
)

#: Resource elements per PRB per 1 ms subframe (12 subcarriers × 14 symbols).
RE_PER_PRB_PER_MS = 12 * 14

#: Fraction of resource elements lost to PDCCH/CRS/PBCH overhead.
DEFAULT_OVERHEAD = 0.25

# SNR thresholds (dB) at which each CQI becomes decodable; approximately
# linear fit used widely in system-level LTE simulators.
_SNR_TO_CQI_SLOPE = 16.62 / 15.0  # dB per CQI step
_SNR_AT_CQI1 = -6.7


def efficiency_for_cqi(cqi: int) -> float:
    """Spectral efficiency (bits per RE) for a CQI index.

    Raises:
        ValueError: If ``cqi`` is outside 0-15.
    """
    if not 0 <= cqi <= 15:
        raise ValueError(f"CQI must be in [0, 15], got {cqi}")
    return CQI_TABLE[cqi].efficiency


def cqi_for_snr(snr_db: float) -> int:
    """Map an SNR sample to the highest decodable CQI (0 if out of range)."""
    if snr_db < _SNR_AT_CQI1:
        return 0
    cqi = 1 + int((snr_db - _SNR_AT_CQI1) / _SNR_TO_CQI_SLOPE)
    return min(cqi, 15)


def throughput_per_prb_mbps(cqi: int, overhead: float = DEFAULT_OVERHEAD) -> float:
    """Achievable throughput of a single PRB at ``cqi``, in Mb/s.

    One PRB delivers ``efficiency × RE_PER_PRB_PER_MS × (1 - overhead)``
    bits per millisecond.
    """
    if not 0.0 <= overhead < 1.0:
        raise ValueError(f"overhead must be in [0, 1), got {overhead}")
    bits_per_ms = efficiency_for_cqi(cqi) * RE_PER_PRB_PER_MS * (1.0 - overhead)
    return bits_per_ms / 1_000.0  # kb/ms == Mb/s


class ChannelModel:
    """Mean-reverting SNR process producing a CQI report stream.

    ``snr(t+dt) = snr + θ (mean - snr) dt + σ √dt N(0,1)`` — an
    Ornstein-Uhlenbeck discretization.  ``mean_snr_db`` encodes the UE's
    average radio condition (cell-center vs. cell-edge).
    """

    def __init__(
        self,
        mean_snr_db: float = 12.0,
        volatility_db: float = 3.0,
        reversion_rate: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if volatility_db < 0:
            raise ValueError(f"volatility must be non-negative, got {volatility_db}")
        if reversion_rate <= 0:
            raise ValueError(f"reversion rate must be positive, got {reversion_rate}")
        self.mean_snr_db = float(mean_snr_db)
        self.volatility_db = float(volatility_db)
        self.reversion_rate = float(reversion_rate)
        self._rng = rng or np.random.default_rng(0)
        self._snr_db = self.mean_snr_db

    @property
    def snr_db(self) -> float:
        """Current SNR sample in dB."""
        return self._snr_db

    def advance(self, dt_s: float = 1.0) -> int:
        """Advance the SNR process by ``dt_s`` seconds and report a CQI."""
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        theta = self.reversion_rate
        drift = theta * (self.mean_snr_db - self._snr_db) * dt_s
        diffusion = self.volatility_db * math.sqrt(dt_s) * float(self._rng.normal())
        self._snr_db += drift + diffusion
        return self.cqi()

    def cqi(self) -> int:
        """CQI corresponding to the current SNR sample."""
        return cqi_for_snr(self._snr_db)

    def expected_cqi(self) -> int:
        """CQI at the long-run mean SNR (ignores fading)."""
        return cqi_for_snr(self.mean_snr_db)


__all__ = [
    "CQI_TABLE",
    "ChannelModel",
    "CqiEntry",
    "DEFAULT_OVERHEAD",
    "RE_PER_PRB_PER_MS",
    "cqi_for_snr",
    "efficiency_for_cqi",
    "throughput_per_prb_mbps",
]
