"""eNodeB model with MOCN RAN sharing.

Mirrors the demo's NEC MB4420 small cells: a single LTE carrier whose
PRBs are split among slices, broadcasting up to ``max_plmns`` PLMN
identities simultaneously (the Multi-Operator Core Network sharing
model).  Slices are installed by adding their PLMN to the broadcast list
and reserving a PRB share; UEs provisioned with that PLMN can then
attach.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.core.slices import PLMN
from repro.ran.channel import throughput_per_prb_mbps
from repro.ran.prb import PrbGrid
from repro.ran.ue import UserEquipment


class RanConfigError(RuntimeError):
    """Raised on illegal eNB configuration actions."""


class ENodeB:
    """One LTE cell with per-slice PRB reservations and PLMN broadcast.

    Args:
        enb_id: Unique cell identifier.
        bandwidth_mhz: Standard LTE channel bandwidth (determines PRBs).
        max_plmns: MOCN broadcast capacity (6 per Rel-11 SIB1).
        reference_cqi: CQI used for dimensioning (PRBs-for-throughput
            conversions) when no live UE reports exist.
        transport_node: Name of the transport-graph node this cell hangs
            off (set by the testbed builder).
    """

    def __init__(
        self,
        enb_id: str,
        bandwidth_mhz: float = 20.0,
        max_plmns: int = 6,
        reference_cqi: int = 12,
        transport_node: Optional[str] = None,
    ) -> None:
        if max_plmns <= 0:
            raise RanConfigError(f"max_plmns must be positive, got {max_plmns}")
        if not 1 <= reference_cqi <= 15:
            raise RanConfigError(f"reference CQI must be in [1, 15], got {reference_cqi}")
        self.enb_id = enb_id
        self.grid = PrbGrid(bandwidth_mhz)
        self.max_plmns = int(max_plmns)
        self.reference_cqi = int(reference_cqi)
        self.transport_node = transport_node or f"{enb_id}-agg"
        self._broadcast: Dict[str, PLMN] = {}  # slice_id -> PLMN
        self._ues: Dict[str, List[UserEquipment]] = {}  # slice_id -> UEs
        #: Invoked after every mutation that changes the cell's free
        #: capacity or PLMN occupancy.  The owning RanController hooks
        #: this to keep its free-capacity index delta-maintained even
        #: for callers that mutate the cell directly.
        self.on_change: Optional[Callable[[], None]] = None

    def _changed(self) -> None:
        if self.on_change is not None:
            self.on_change()

    # ------------------------------------------------------------------
    # Dimensioning helpers
    # ------------------------------------------------------------------
    def throughput_per_prb(self, cqi: Optional[int] = None) -> float:
        """Mb/s one PRB yields at ``cqi`` (default: the reference CQI)."""
        return throughput_per_prb_mbps(cqi if cqi is not None else self.reference_cqi)

    def prbs_for_throughput(self, mbps: float, cqi: Optional[int] = None) -> int:
        """PRBs needed to carry ``mbps`` at ``cqi`` (ceil, ≥ 1)."""
        if mbps <= 0:
            raise RanConfigError(f"throughput must be positive, got {mbps}")
        per_prb = self.throughput_per_prb(cqi)
        return max(1, math.ceil(mbps / per_prb))

    def capacity_mbps(self, cqi: Optional[int] = None) -> float:
        """Cell capacity at the reference CQI in Mb/s."""
        return self.grid.total_prbs * self.throughput_per_prb(cqi)

    # ------------------------------------------------------------------
    # Slice installation (MOCN)
    # ------------------------------------------------------------------
    @property
    def broadcast_plmns(self) -> List[PLMN]:
        """PLMNs currently in the broadcast list."""
        return list(self._broadcast.values())

    def broadcasts(self, plmn_id: str) -> bool:
        """Whether the cell currently broadcasts ``plmn_id``."""
        return any(p.plmn_id == plmn_id for p in self._broadcast.values())

    def install_slice(
        self, slice_id: str, plmn: PLMN, nominal_prbs: int, effective_prbs: int
    ) -> None:
        """Add the slice's PLMN to the broadcast list and reserve PRBs.

        Raises:
            RanConfigError: If the PLMN list is full or the PLMN is a
                duplicate; PRB errors propagate from the grid.
        """
        if slice_id in self._broadcast:
            raise RanConfigError(f"slice {slice_id} already installed on {self.enb_id}")
        if len(self._broadcast) >= self.max_plmns:
            raise RanConfigError(
                f"{self.enb_id} already broadcasts {self.max_plmns} PLMNs (MOCN limit)"
            )
        if self.broadcasts(plmn.plmn_id):
            raise RanConfigError(f"{self.enb_id} already broadcasts PLMN {plmn}")
        self.grid.reserve(slice_id, nominal_prbs, effective_prbs)
        self._broadcast[slice_id] = plmn
        self._ues.setdefault(slice_id, [])
        self._changed()

    def resize_slice(self, slice_id: str, effective_prbs: int) -> None:
        """Adjust the slice's effective PRB share (overbooking knob)."""
        if slice_id not in self._broadcast:
            raise RanConfigError(f"slice {slice_id} not installed on {self.enb_id}")
        self.grid.resize(slice_id, effective_prbs)
        self._changed()

    def renominate_slice(self, slice_id: str, nominal_prbs: int, effective_prbs: int) -> None:
        """Re-dimension the slice's reservation (tenant-requested scaling)."""
        if slice_id not in self._broadcast:
            raise RanConfigError(f"slice {slice_id} not installed on {self.enb_id}")
        self.grid.renominate(slice_id, nominal_prbs, effective_prbs)
        self._changed()

    def remove_slice(self, slice_id: str) -> None:
        """Stop broadcasting the slice's PLMN and free its PRBs."""
        if slice_id not in self._broadcast:
            raise RanConfigError(f"slice {slice_id} not installed on {self.enb_id}")
        for ue in self._ues.get(slice_id, []):
            if ue.attached:
                ue.detach()
        del self._broadcast[slice_id]
        self._ues.pop(slice_id, None)
        self.grid.release(slice_id)
        self._changed()

    def installed_slices(self) -> List[str]:
        """Slice ids installed on this cell."""
        return list(self._broadcast)

    def installed_count(self) -> int:
        """Number of slices installed on this cell (O(1))."""
        return len(self._broadcast)

    # ------------------------------------------------------------------
    # UEs
    # ------------------------------------------------------------------
    def register_ue(self, ue: UserEquipment) -> None:
        """Associate a UE with its slice on this cell.

        Raises:
            RanConfigError: If the UE's slice is not installed here.
        """
        if ue.slice_id not in self._broadcast:
            raise RanConfigError(
                f"slice {ue.slice_id} not installed on {self.enb_id}; UE cannot camp"
            )
        self._ues[ue.slice_id].append(ue)

    def ues_of(self, slice_id: str) -> List[UserEquipment]:
        """UEs camped on this cell for ``slice_id``."""
        return list(self._ues.get(slice_id, []))

    def attached_count(self, slice_id: str) -> int:
        """Number of currently attached UEs of the slice."""
        return sum(1 for ue in self._ues.get(slice_id, []) if ue.attached)

    # ------------------------------------------------------------------
    # Capacity delivered to a slice in one epoch
    # ------------------------------------------------------------------
    def slice_capacity_mbps(self, slice_id: str, cqi: Optional[int] = None) -> float:
        """Throughput the slice's *effective* PRBs sustain at ``cqi``."""
        reservation = self.grid.reservation(slice_id)
        return reservation.effective * self.throughput_per_prb(cqi)

    def utilization(self) -> dict:
        """Telemetry snapshot consumed by the RAN controller."""
        return {
            "enb_id": self.enb_id,
            "total_prbs": self.grid.total_prbs,
            "effective_reserved": self.grid.effective_reserved,
            "nominal_reserved": self.grid.nominal_reserved,
            "free_prbs": self.grid.free_prbs,
            "overbooking_ratio": self.grid.overbooking_ratio,
            "plmns": [str(p) for p in self.broadcast_plmns],
            "slices": self.installed_slices(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ENodeB({self.enb_id}, {self.grid.bandwidth_mhz}MHz, "
            f"{self.grid.effective_reserved}/{self.grid.total_prbs} PRBs)"
        )


__all__ = ["ENodeB", "RanConfigError"]
