"""RAN domain controller.

One of the three hierarchical controllers of Fig. 1.  It owns every eNB,
answers the orchestrator's availability queries, installs/resizes/
removes per-slice PRB reservations, runs the slice-aware scheduler each
monitoring epoch and reports delivered throughput per slice.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.slices import PLMN
from repro.ran.enb import ENodeB, RanConfigError
from repro.ran.scheduler import SliceAwareScheduler


@dataclass(frozen=True)
class RanAllocation:
    """Result of installing a slice on the RAN.

    Attributes:
        enb_id: Serving cell.
        nominal_prbs: PRBs the SLA implies at the dimensioning CQI.
        effective_prbs: PRBs actually committed (post-overbooking).
        latency_ms: RAN-segment latency contribution (HARQ + scheduling).
    """

    enb_id: str
    nominal_prbs: int
    effective_prbs: int
    latency_ms: float


#: One-way user-plane latency of the LTE access segment (scheduling + HARQ).
RAN_SEGMENT_LATENCY_MS = 4.0


@dataclass
class PlannedCellLoad:
    """Load a batch planner has promised to a cell but not installed yet.

    Attributes:
        prbs: Effective PRBs staged onto the cell.
        slices: Staged slice count (each consumes a PLMN broadcast slot).
    """

    prbs: int = 0
    slices: int = 0

    def add(self, prbs: int) -> None:
        self.prbs += prbs
        self.slices += 1


class RanController:
    """Controller managing a fleet of eNBs."""

    def __init__(self, enbs: Optional[List[ENodeB]] = None) -> None:
        self._enbs: Dict[str, ENodeB] = {}
        self._placement: Dict[str, str] = {}  # slice_id -> enb_id
        # Delta-maintained free-capacity index: ``_index`` is a sorted
        # list of ``(free_prbs, -seq, enb_id)`` entries (one per cell,
        # ascending), where ``seq`` is the cell's registration order so
        # ties resolve exactly like the historical full scan (earliest
        # registered cell wins).  ``_entry`` maps each cell to its
        # current index entry, ``_total_free`` is the running fleet-wide
        # free-PRB sum.  Updated via each cell's ``on_change`` hook, so
        # direct eNB mutations keep the index fresh too.
        self._index: List[Tuple[int, int, str]] = []
        self._entry: Dict[str, Tuple[int, int, str]] = {}
        self._seq: Dict[str, int] = {}
        self._total_free = 0
        #: Bumped whenever a cell is registered; consumers caching
        #: derived per-cell state (the allocator's uplink aggregates)
        #: use it to notice fleet growth cheaply.
        self.inventory_version = 0
        #: Serialization lock for this controller: the methods here are
        #: not thread-safe, so every concurrent caller (the RAN driver
        #: under the batch install planner, or any direct user) must
        #: hold it across a call.  ``build_default_registry`` wires it
        #: as the RanDriver's serial lock.
        self.lock = threading.RLock()
        for enb in enbs or []:
            self.add_enb(enb)

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def add_enb(self, enb: ENodeB) -> None:
        """Register a cell with the controller."""
        if enb.enb_id in self._enbs:
            raise RanConfigError(f"duplicate eNB id {enb.enb_id}")
        self._enbs[enb.enb_id] = enb
        seq = len(self._seq)
        self._seq[enb.enb_id] = seq
        entry = (enb.grid.free_prbs, -seq, enb.enb_id)
        insort(self._index, entry)
        self._entry[enb.enb_id] = entry
        self._total_free += entry[0]
        self.inventory_version += 1
        enb.on_change = lambda enb_id=enb.enb_id: self._index_update(enb_id)

    def _index_update(self, enb_id: str) -> None:
        """Re-slot one cell in the free-capacity index after a mutation."""
        enb = self._enbs[enb_id]
        old = self._entry[enb_id]
        free = enb.grid.free_prbs
        if free == old[0]:
            return
        self._index.pop(bisect_left(self._index, old))
        entry = (free, old[1], enb_id)
        insort(self._index, entry)
        self._entry[enb_id] = entry
        self._total_free += free - old[0]

    def rebuild_index(self) -> None:
        """Rebuild the free-capacity index from scratch (recovery aid)."""
        self._index = []
        self._entry = {}
        self._total_free = 0
        for enb_id, enb in self._enbs.items():
            entry = (enb.grid.free_prbs, -self._seq[enb_id], enb_id)
            insort(self._index, entry)
            self._entry[enb_id] = entry
            self._total_free += entry[0]

    def verify_index(self) -> None:
        """Cross-check the delta-maintained index against a recompute.

        Raises:
            RanConfigError: If any index entry, the sort order, or the
                running free-PRB total drifted from ground truth.
        """
        if sorted(self._index) != self._index:
            raise RanConfigError("free-capacity index is out of order")
        if len(self._index) != len(self._enbs) or len(self._entry) != len(self._enbs):
            raise RanConfigError("free-capacity index size drifted from inventory")
        total = 0
        for enb_id, enb in self._enbs.items():
            free = enb.grid.free_prbs
            total += free
            expected = (free, -self._seq[enb_id], enb_id)
            if self._entry.get(enb_id) != expected:
                raise RanConfigError(
                    f"index entry for {enb_id} is {self._entry.get(enb_id)}, "
                    f"expected {expected}"
                )
            if self._index[bisect_left(self._index, expected)] != expected:
                raise RanConfigError(f"index entry for {enb_id} missing from sorted list")
        if total != self._total_free:
            raise RanConfigError(
                f"running free-PRB total {self._total_free} drifted from {total}"
            )

    def enb(self, enb_id: str) -> ENodeB:
        """Lookup a cell by id."""
        try:
            return self._enbs[enb_id]
        except KeyError:
            raise RanConfigError(f"unknown eNB {enb_id}") from None

    def enbs(self) -> List[ENodeB]:
        """All registered cells."""
        return list(self._enbs.values())

    def serving_enb_of(self, slice_id: str) -> Optional[str]:
        """Cell currently hosting ``slice_id`` (None if not installed)."""
        return self._placement.get(slice_id)

    # ------------------------------------------------------------------
    # Availability / admission support
    # ------------------------------------------------------------------
    def free_prbs(self) -> Dict[str, int]:
        """Per-cell physically free PRBs."""
        return {enb_id: enb.grid.free_prbs for enb_id, enb in self._enbs.items()}

    def total_free_prbs(self) -> int:
        """Fleet-wide free PRBs — O(1) via the running total."""
        return self._total_free

    def max_free_prbs(self) -> int:
        """Largest per-cell free-PRB count — O(1) via the sorted index."""
        return self._index[-1][0] if self._index else 0

    def best_enb_for(
        self,
        throughput_mbps: float,
        effective_prbs: int,
        planned: Optional[Dict[str, "PlannedCellLoad"]] = None,
    ) -> Optional[str]:
        """Pick the cell for a new slice: most free PRBs that still fit.

        A cell qualifies if it has a free PLMN broadcast slot and at
        least ``effective_prbs`` free PRBs.  Returns None when no cell
        qualifies (the admission engine then rejects on the RAN domain).

        Answered from the delta-maintained sorted index: staged
        (``planned``) cells are evaluated individually with their
        pending adjustment, then the index is walked from the top and
        stops at the first unencumbered cell with a free PLMN slot.
        Ties on free PRBs resolve to the earliest-registered cell,
        exactly like the historical full scan.

        Args:
            planned: Load already promised to not-yet-installed slices,
                per cell — the batch install planner stages a whole
                admission burst against one capacity snapshot, so each
                pick must account for the picks before it or every
                winner lands on the same "best" cell.
        """
        planned = planned or {}
        best: Optional[str] = None
        best_key: Optional[Tuple[int, int]] = None  # (free, -seq), max wins
        for enb_id, pending in planned.items():
            enb = self._enbs.get(enb_id)
            if enb is None:
                continue
            if enb.installed_count() + pending.slices >= enb.max_plmns:
                continue
            free = enb.grid.free_prbs - pending.prbs
            if free < effective_prbs:
                continue
            key = (free, -self._seq[enb_id])
            if best_key is None or key > best_key:
                best, best_key = enb_id, key
        for free, neg_seq, enb_id in reversed(self._index):
            if free < effective_prbs:
                break
            if best_key is not None and (free, neg_seq) <= best_key:
                break
            if enb_id in planned:
                continue
            enb = self._enbs[enb_id]
            if enb.installed_count() >= enb.max_plmns:
                continue
            best = enb_id
            break
        return best

    # ------------------------------------------------------------------
    # Slice lifecycle
    # ------------------------------------------------------------------
    def install_slice(
        self,
        slice_id: str,
        plmn: PLMN,
        throughput_mbps: float,
        effective_fraction: float = 1.0,
        enb_id: Optional[str] = None,
    ) -> RanAllocation:
        """Reserve radio resources for a slice.

        Args:
            slice_id: Slice to install.
            plmn: PLMN identity to broadcast for it.
            throughput_mbps: SLA throughput, converted to nominal PRBs at
                the cell's reference CQI.
            effective_fraction: Overbooking shrinkage in (0, 1]; the
                effective reservation is ``ceil(nominal × fraction)``.
            enb_id: Target cell; auto-selected when omitted.

        Raises:
            RanConfigError: If no cell can host the slice.
        """
        if not 0.0 < effective_fraction <= 1.0:
            raise RanConfigError(
                f"effective fraction must be in (0, 1], got {effective_fraction}"
            )
        if slice_id in self._placement:
            raise RanConfigError(f"slice {slice_id} already installed")
        # Dimension on any cell (reference CQI is uniform across the fleet).
        if not self._enbs:
            raise RanConfigError("no eNBs registered")
        probe = next(iter(self._enbs.values()))
        nominal = probe.prbs_for_throughput(throughput_mbps)
        effective = max(1, round(nominal * effective_fraction))
        target = enb_id or self.best_enb_for(throughput_mbps, effective)
        if target is None:
            raise RanConfigError(
                f"no eNB can host {effective} PRBs for slice {slice_id}"
            )
        enb = self.enb(target)
        nominal = enb.prbs_for_throughput(throughput_mbps)
        effective = max(1, round(nominal * effective_fraction))
        enb.install_slice(slice_id, plmn, nominal, effective)
        self._placement[slice_id] = target
        return RanAllocation(
            enb_id=target,
            nominal_prbs=nominal,
            effective_prbs=effective,
            latency_ms=RAN_SEGMENT_LATENCY_MS,
        )

    def resize_slice(self, slice_id: str, effective_prbs: int) -> None:
        """Adjust the slice's effective PRBs (reconfiguration loop)."""
        enb_id = self._placement.get(slice_id)
        if enb_id is None:
            raise RanConfigError(f"slice {slice_id} not installed")
        self._enbs[enb_id].resize_slice(slice_id, effective_prbs)

    def modify_slice(
        self,
        slice_id: str,
        new_throughput_mbps: float,
        effective_fraction: float = 1.0,
    ) -> RanAllocation:
        """Re-dimension an installed slice to a new SLA throughput.

        Keeps the slice on its current cell (no handover); the nominal
        PRB count is re-derived from the new throughput and the
        effective commitment re-applied at ``effective_fraction``.

        Raises:
            RanConfigError: If the slice is unknown or the grown
                commitment does not fit the cell.
        """
        enb_id = self._placement.get(slice_id)
        if enb_id is None:
            raise RanConfigError(f"slice {slice_id} not installed")
        if not 0.0 < effective_fraction <= 1.0:
            raise RanConfigError(
                f"effective fraction must be in (0, 1], got {effective_fraction}"
            )
        enb = self._enbs[enb_id]
        nominal = enb.prbs_for_throughput(new_throughput_mbps)
        effective = max(1, round(nominal * effective_fraction))
        try:
            enb.renominate_slice(slice_id, nominal, effective)
        except Exception as exc:
            raise RanConfigError(str(exc)) from exc
        return RanAllocation(
            enb_id=enb_id,
            nominal_prbs=nominal,
            effective_prbs=effective,
            latency_ms=RAN_SEGMENT_LATENCY_MS,
        )

    def remove_slice(self, slice_id: str) -> None:
        """Release the slice's radio resources."""
        enb_id = self._placement.pop(slice_id, None)
        if enb_id is None:
            raise RanConfigError(f"slice {slice_id} not installed")
        self._enbs[enb_id].remove_slice(slice_id)

    # ------------------------------------------------------------------
    # Per-epoch service (monitoring input)
    # ------------------------------------------------------------------
    def serve_epoch(
        self,
        demands_mbps: Dict[str, float],
        priorities: Optional[Dict[str, int]] = None,
    ) -> Dict[str, float]:
        """Serve one epoch of traffic and return delivered Mb/s per slice.

        Demands of slices installed on the same cell contend for that
        cell's PRBs via :class:`SliceAwareScheduler`; unused reservations
        are redistributed (to higher ``priorities`` first when given), so
        delivered throughput can exceed a slice's effective reservation
        when neighbours are idle.
        """
        delivered: Dict[str, float] = {}
        for enb_id, enb in self._enbs.items():
            local = {
                s: demands_mbps[s]
                for s in enb.installed_slices()
                if s in demands_mbps
            }
            if not local:
                continue
            per_prb = enb.throughput_per_prb()
            demands_prbs = {s: d / per_prb for s, d in local.items()}
            reservations = {
                s: enb.grid.reservation(s).effective for s in local
            }
            local_priorities = (
                {s: priorities.get(s, 0) for s in local} if priorities else None
            )
            grants = SliceAwareScheduler(enb.grid.total_prbs).dispatch(
                demands_prbs, reservations, priorities=local_priorities
            )
            for slice_id, prbs in grants.items():
                delivered[slice_id] = prbs * per_prb
        return delivered

    def utilization(self) -> dict:
        """Domain telemetry for the monitoring collector."""
        return {
            "domain": "ran",
            "enbs": [enb.utilization() for enb in self._enbs.values()],
            "total_prbs": sum(e.grid.total_prbs for e in self._enbs.values()),
            "effective_reserved": sum(
                e.grid.effective_reserved for e in self._enbs.values()
            ),
            "nominal_reserved": sum(
                e.grid.nominal_reserved for e in self._enbs.values()
            ),
        }


__all__ = [
    "PlannedCellLoad",
    "RAN_SEGMENT_LATENCY_MS",
    "RanAllocation",
    "RanController",
]
