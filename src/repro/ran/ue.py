"""User equipment model.

UEs exist to (i) generate per-slice load on the air interface and (ii)
exercise the PLMN-based slice mapping: a UE is provisioned with the
PLMN-id of its slice and only attaches once an eNB broadcasts it —
exactly the behaviour shown live in the demo ("after few seconds, user
devices associated with the PLMN-id of the new slices are allowed to
connect").
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

import numpy as np

from repro.core.slices import PLMN
from repro.ran.channel import ChannelModel


class AttachState(enum.Enum):
    """EMM-ish attach state of a UE."""

    IDLE = "idle"
    SEARCHING = "searching"
    ATTACHING = "attaching"
    ATTACHED = "attached"
    DETACHED = "detached"


class UeError(RuntimeError):
    """Raised on illegal UE operations."""


_imsi_counter = itertools.count(1)


class UserEquipment:
    """A single UE bound to one slice's PLMN.

    Args:
        plmn: The PLMN identity the UE is provisioned for.
        slice_id: Owning slice (for telemetry attribution).
        channel: Radio-quality process; defaults to a cell-center profile.
        imsi: 15-digit IMSI; auto-derived from the PLMN when omitted.
    """

    def __init__(
        self,
        plmn: PLMN,
        slice_id: str,
        channel: Optional[ChannelModel] = None,
        imsi: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.plmn = plmn
        self.slice_id = slice_id
        serial = next(_imsi_counter)
        self.imsi = imsi or f"{plmn.plmn_id}{serial:0{15 - len(plmn.plmn_id)}d}"
        if len(self.imsi) != 15 or not self.imsi.isdigit():
            raise UeError(f"IMSI must be 15 digits, got {self.imsi!r}")
        if channel is None:
            mean_snr = 12.0 if rng is None else float(rng.uniform(4.0, 20.0))
            channel = ChannelModel(mean_snr_db=mean_snr, rng=rng or np.random.default_rng(serial))
        self.channel = channel
        self.state = AttachState.IDLE
        self.serving_enb: Optional[str] = None
        self.attach_latency_s: Optional[float] = None
        self.bytes_served = 0.0

    def start_search(self) -> None:
        """Begin scanning for the provisioned PLMN."""
        if self.state not in (AttachState.IDLE, AttachState.DETACHED):
            raise UeError(f"cannot search from state {self.state.value}")
        self.state = AttachState.SEARCHING

    def found_cell(self, enb_id: str) -> None:
        """Cell broadcasting our PLMN found; start the attach procedure."""
        if self.state is not AttachState.SEARCHING:
            raise UeError(f"cannot attach from state {self.state.value}")
        self.state = AttachState.ATTACHING
        self.serving_enb = enb_id

    def attach_complete(self, latency_s: float) -> None:
        """EPC confirmed the default bearer; UE is now served."""
        if self.state is not AttachState.ATTACHING:
            raise UeError(f"cannot complete attach from state {self.state.value}")
        if latency_s < 0:
            raise UeError(f"attach latency cannot be negative, got {latency_s}")
        self.state = AttachState.ATTACHED
        self.attach_latency_s = latency_s

    def detach(self) -> None:
        """Drop from the network (slice expiry or failure)."""
        self.state = AttachState.DETACHED
        self.serving_enb = None

    @property
    def attached(self) -> bool:
        """Whether the UE currently has a default bearer."""
        return self.state is AttachState.ATTACHED

    def report_cqi(self, dt_s: float = 1.0) -> int:
        """Advance the channel process and return the fresh CQI report."""
        return self.channel.advance(dt_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UE(imsi={self.imsi}, plmn={self.plmn}, {self.state.value})"


__all__ = ["AttachState", "UeError", "UserEquipment"]
