"""Physical Resource Block accounting.

An LTE carrier exposes a fixed PRB budget per subframe determined by its
channel bandwidth (3GPP TS 36.101).  The demo reserves PRBs per slice
through the RAN controller; :class:`PrbGrid` is the bookkeeping object
that enforces the budget, supports overbookable *nominal* vs. *effective*
reservations, and never lets effective commitments exceed physical PRBs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Channel bandwidth (MHz) → PRBs per subframe (TS 36.101 Table 5.6-1).
PRB_GRID: Dict[float, int] = {
    1.4: 6,
    3.0: 15,
    5.0: 25,
    10.0: 50,
    15.0: 75,
    20.0: 100,
}


class PrbError(RuntimeError):
    """Raised on PRB accounting violations."""


def prbs_for_bandwidth(bandwidth_mhz: float) -> int:
    """PRBs per subframe for a standard LTE channel bandwidth.

    Raises:
        PrbError: If ``bandwidth_mhz`` is not a standard LTE bandwidth.
    """
    try:
        return PRB_GRID[float(bandwidth_mhz)]
    except KeyError:
        valid = sorted(PRB_GRID)
        raise PrbError(
            f"{bandwidth_mhz} MHz is not a standard LTE bandwidth {valid}"
        ) from None


@dataclass
class PrbReservation:
    """Per-slice PRB reservation.

    ``nominal`` is what the SLA implies; ``effective`` is what the
    overbooking engine actually sets aside (≤ nominal when overbooked).
    """

    slice_id: str
    nominal: int
    effective: int

    def __post_init__(self) -> None:
        if self.nominal <= 0:
            raise PrbError(f"nominal PRBs must be positive, got {self.nominal}")
        if self.effective <= 0:
            raise PrbError(f"effective PRBs must be positive, got {self.effective}")
        if self.effective > self.nominal:
            raise PrbError(
                f"effective ({self.effective}) cannot exceed nominal ({self.nominal})"
            )


class PrbGrid:
    """PRB budget of one carrier with slice-level reservations.

    Invariant (checked on every mutation and by the property tests):
    ``sum(effective) ≤ total_prbs``.  The *nominal* sum may exceed the
    budget — that excess is precisely the overbooking.
    """

    def __init__(self, bandwidth_mhz: float = 10.0) -> None:
        self.bandwidth_mhz = float(bandwidth_mhz)
        self.total_prbs = prbs_for_bandwidth(bandwidth_mhz)
        self._reservations: Dict[str, PrbReservation] = {}
        # Running totals maintained by every mutation so the hot-path
        # queries below are O(1) instead of O(#slices).
        # ``check_invariants`` recomputes and cross-checks them.
        self._effective_sum = 0
        self._nominal_sum = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def effective_reserved(self) -> int:
        """PRBs committed after overbooking shrinkage."""
        return self._effective_sum

    @property
    def nominal_reserved(self) -> int:
        """PRBs the SLAs nominally imply (may exceed the physical budget)."""
        return self._nominal_sum

    @property
    def free_prbs(self) -> int:
        """Physically uncommitted PRBs."""
        return self.total_prbs - self.effective_reserved

    @property
    def overbooking_ratio(self) -> float:
        """nominal / physical budget; > 1 means the carrier is overbooked."""
        return self.nominal_reserved / self.total_prbs

    def reservation(self, slice_id: str) -> PrbReservation:
        """The reservation of ``slice_id``.

        Raises:
            PrbError: If the slice holds no reservation here.
        """
        try:
            return self._reservations[slice_id]
        except KeyError:
            raise PrbError(f"slice {slice_id} holds no PRBs on this carrier") from None

    def slices(self) -> list[str]:
        """Slice ids with a reservation, insertion-ordered."""
        return list(self._reservations)

    def has(self, slice_id: str) -> bool:
        """Whether ``slice_id`` holds a reservation."""
        return slice_id in self._reservations

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def reserve(self, slice_id: str, nominal: int, effective: int) -> PrbReservation:
        """Create a reservation.

        Raises:
            PrbError: On duplicate slice, or if the effective commitment
                would exceed the physical budget.
        """
        if slice_id in self._reservations:
            raise PrbError(f"slice {slice_id} already reserved on this carrier")
        reservation = PrbReservation(slice_id, nominal, effective)
        if self.effective_reserved + effective > self.total_prbs:
            raise PrbError(
                f"cannot commit {effective} PRBs: only {self.free_prbs} of "
                f"{self.total_prbs} free"
            )
        self._reservations[slice_id] = reservation
        self._effective_sum += effective
        self._nominal_sum += nominal
        return reservation

    def resize(self, slice_id: str, effective: int) -> None:
        """Change the effective commitment (the overbooking knob).

        Raises:
            PrbError: If the new commitment is invalid or does not fit.
        """
        current = self.reservation(slice_id)
        others = self.effective_reserved - current.effective
        if effective <= 0:
            raise PrbError(f"effective PRBs must be positive, got {effective}")
        if effective > current.nominal:
            raise PrbError(
                f"effective ({effective}) cannot exceed nominal ({current.nominal})"
            )
        if others + effective > self.total_prbs:
            raise PrbError(
                f"resize to {effective} PRBs does not fit ({self.total_prbs - others} free)"
            )
        self._reservations[slice_id] = PrbReservation(slice_id, current.nominal, effective)
        self._effective_sum += effective - current.effective

    def renominate(self, slice_id: str, nominal: int, effective: int) -> PrbReservation:
        """Replace the slice's reservation with a new nominal size.

        Used for tenant-requested slice scaling (unlike :meth:`resize`,
        which only moves the *effective* commitment under a fixed
        nominal).  Atomic: on failure the old reservation stands.

        Raises:
            PrbError: If the slice holds no reservation or the new
                effective commitment does not fit.
        """
        current = self.reservation(slice_id)
        others = self.effective_reserved - current.effective
        replacement = PrbReservation(slice_id, nominal, effective)
        if others + effective > self.total_prbs:
            raise PrbError(
                f"renominate to {effective} PRBs does not fit "
                f"({self.total_prbs - others} free)"
            )
        self._reservations[slice_id] = replacement
        self._effective_sum += effective - current.effective
        self._nominal_sum += nominal - current.nominal
        return replacement

    def release(self, slice_id: str) -> None:
        """Drop the slice's reservation.

        Raises:
            PrbError: If the slice holds no reservation.
        """
        if slice_id not in self._reservations:
            raise PrbError(f"slice {slice_id} holds no PRBs on this carrier")
        current = self._reservations.pop(slice_id)
        self._effective_sum -= current.effective
        self._nominal_sum -= current.nominal

    def check_invariants(self) -> None:
        """Assert the physical-budget invariant (used by property tests).

        Also recomputes the delta-maintained totals from scratch and
        fails if they drifted from ground truth.
        """
        effective = sum(r.effective for r in self._reservations.values())
        nominal = sum(r.nominal for r in self._reservations.values())
        if effective != self._effective_sum or nominal != self._nominal_sum:
            raise PrbError(
                f"invariant violated: running totals "
                f"(eff={self._effective_sum}, nom={self._nominal_sum}) drifted "
                f"from recomputed (eff={effective}, nom={nominal})"
            )
        if self.effective_reserved > self.total_prbs:
            raise PrbError(
                f"invariant violated: {self.effective_reserved} effective PRBs "
                f"> budget {self.total_prbs}"
            )


__all__ = ["PRB_GRID", "PrbError", "PrbGrid", "PrbReservation", "prbs_for_bandwidth"]
