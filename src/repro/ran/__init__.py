"""Radio access network substrate.

Replaces the demo's two NEC MB4420 LTE small cells with a
standards-derived model: 3GPP CQI→MCS mapping, PRB grids per channel
bandwidth, MOCN multi-PLMN broadcast with per-slice PRB reservations,
UE populations with stochastic channel quality, MAC schedulers and the
RAN domain controller the orchestrator talks to.
"""

from repro.ran.channel import CqiEntry, CQI_TABLE, ChannelModel, efficiency_for_cqi
from repro.ran.prb import PRB_GRID, PrbGrid, prbs_for_bandwidth
from repro.ran.enb import ENodeB, RanConfigError
from repro.ran.ue import UserEquipment, AttachState
from repro.ran.scheduler import (
    RoundRobinScheduler,
    ProportionalFairScheduler,
    SliceAwareScheduler,
)
from repro.ran.controller import RanController

__all__ = [
    "AttachState",
    "CQI_TABLE",
    "ChannelModel",
    "CqiEntry",
    "ENodeB",
    "PRB_GRID",
    "PrbGrid",
    "ProportionalFairScheduler",
    "RanConfigError",
    "RanController",
    "RoundRobinScheduler",
    "SliceAwareScheduler",
    "UserEquipment",
    "efficiency_for_cqi",
    "prbs_for_bandwidth",
]
