"""MAC-layer schedulers.

The orchestrator reserves PRBs per slice; *within* a slice, a MAC
scheduler divides the slice's PRBs among its attached UEs each epoch.
We provide the two textbook intra-slice disciplines (round-robin and
proportional-fair) plus the inter-slice :class:`SliceAwareScheduler`
that enforces reservations and redistributes a slice's unused PRBs —
the mechanism that physically realizes multiplexing gain.

Scheduling is epoch-granular (seconds, not 1 ms TTIs): each call
produces an *average* PRB share over the epoch, which is the right
granularity for admission/overbooking experiments and keeps simulations
of days of traffic tractable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

from repro.ran.channel import throughput_per_prb_mbps
from repro.ran.ue import UserEquipment


class SchedulerError(RuntimeError):
    """Raised on scheduler misuse."""


class IntraSliceScheduler(ABC):
    """Splits one slice's PRB budget among its attached UEs for an epoch."""

    @abstractmethod
    def allocate(self, ues: List[UserEquipment], prbs: int) -> Dict[str, float]:
        """Return imsi → average PRBs granted this epoch.

        Only attached UEs with CQI ≥ 1 are eligible; the returned shares
        sum to at most ``prbs``.
        """

    @staticmethod
    def _eligible(ues: List[UserEquipment]) -> List[UserEquipment]:
        return [ue for ue in ues if ue.attached and ue.channel.cqi() >= 1]


class RoundRobinScheduler(IntraSliceScheduler):
    """Equal PRB share to every eligible UE."""

    def allocate(self, ues: List[UserEquipment], prbs: int) -> Dict[str, float]:
        if prbs < 0:
            raise SchedulerError(f"PRB budget cannot be negative, got {prbs}")
        eligible = self._eligible(ues)
        if not eligible or prbs == 0:
            return {}
        share = prbs / len(eligible)
        return {ue.imsi: share for ue in eligible}


class ProportionalFairScheduler(IntraSliceScheduler):
    """PF scheduling at epoch granularity.

    Classic PF maximizes Σ log(R_i); at epoch granularity with average
    rates this reduces to weighting each UE by the ratio of its current
    achievable rate to its exponentially-averaged past rate.  UEs that
    recently got little service (low average) receive more PRBs.
    """

    def __init__(self, ewma_alpha: float = 0.2) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise SchedulerError(f"alpha must be in (0, 1], got {ewma_alpha}")
        self.ewma_alpha = float(ewma_alpha)
        self._avg_rate: Dict[str, float] = {}

    def allocate(self, ues: List[UserEquipment], prbs: int) -> Dict[str, float]:
        if prbs < 0:
            raise SchedulerError(f"PRB budget cannot be negative, got {prbs}")
        eligible = self._eligible(ues)
        if not eligible or prbs == 0:
            return {}
        weights: Dict[str, float] = {}
        for ue in eligible:
            rate = throughput_per_prb_mbps(ue.channel.cqi())
            avg = self._avg_rate.get(ue.imsi, rate)
            weights[ue.imsi] = rate / max(avg, 1e-9)
        total_weight = sum(weights.values())
        grants = {imsi: prbs * w / total_weight for imsi, w in weights.items()}
        # Update averages with the rate actually granted this epoch.
        for ue in eligible:
            granted_rate = grants[ue.imsi] * throughput_per_prb_mbps(ue.channel.cqi())
            old = self._avg_rate.get(ue.imsi, granted_rate)
            self._avg_rate[ue.imsi] = (
                (1.0 - self.ewma_alpha) * old + self.ewma_alpha * granted_rate
            )
        return grants


class SliceAwareScheduler:
    """Inter-slice PRB dispatcher with unused-share redistribution.

    Each epoch, every slice is first granted PRBs to cover its *demand*
    (capped by its effective reservation).  PRBs a slice does not need
    are pooled and redistributed proportionally to slices whose demand
    exceeds their reservation — the statistical-multiplexing mechanism
    that lets an overbooked cell still meet SLAs most of the time.
    """

    def __init__(self, total_prbs: int) -> None:
        if total_prbs <= 0:
            raise SchedulerError(f"total PRBs must be positive, got {total_prbs}")
        self.total_prbs = int(total_prbs)

    def dispatch(
        self,
        demands_prbs: Dict[str, float],
        reservations: Dict[str, int],
        priorities: Dict[str, int] = None,  # type: ignore[assignment]
    ) -> Dict[str, float]:
        """Grant PRBs per slice for one epoch.

        Args:
            demands_prbs: slice → PRBs needed to carry this epoch's demand.
            reservations: slice → effective reserved PRBs (Σ ≤ total).
            priorities: optional slice → QoS priority; spare capacity is
                redistributed to higher-priority slices first (within a
                priority level, proportionally to unmet demand).  Omitted
                ⇒ all slices share one level.

        Returns:
            slice → granted PRBs.  Invariants: Σ grants ≤ total PRBs and
            each grant ≤ demand (never give a slice more than it asked).

        Raises:
            SchedulerError: If reservations exceed the cell budget or the
                maps disagree on slice ids.
        """
        if set(demands_prbs) != set(reservations):
            raise SchedulerError("demand and reservation maps must cover the same slices")
        if priorities is not None and set(priorities) != set(demands_prbs):
            raise SchedulerError("priority map must cover the same slices")
        reserved_total = sum(reservations.values())
        if reserved_total > self.total_prbs:
            raise SchedulerError(
                f"reservations ({reserved_total}) exceed cell budget ({self.total_prbs})"
            )
        grants: Dict[str, float] = {}
        unmet: Dict[str, float] = {}
        pool = float(self.total_prbs - reserved_total)  # never-reserved PRBs
        for slice_id, demand in demands_prbs.items():
            if demand < 0:
                raise SchedulerError(f"demand cannot be negative ({slice_id}: {demand})")
            reserved = float(reservations[slice_id])
            granted = min(demand, reserved)
            grants[slice_id] = granted
            pool += reserved - granted  # unused reservation joins the pool
            if demand > reserved:
                unmet[slice_id] = demand - reserved
        # Redistribute pooled PRBs: strictly by descending priority level,
        # water-filling proportionally to unmet demand within a level.
        levels = sorted(
            {(priorities or {}).get(s, 0) for s in unmet}, reverse=True
        )
        for level in levels:
            if pool <= 1e-9:
                break
            level_unmet = {
                s: u
                for s, u in unmet.items()
                if (priorities or {}).get(s, 0) == level and u > 1e-9
            }
            while pool > 1e-9 and level_unmet:
                total_unmet = sum(level_unmet.values())
                give = {
                    s: min(u, pool * u / total_unmet) for s, u in level_unmet.items()
                }
                for slice_id, extra in give.items():
                    grants[slice_id] += extra
                    level_unmet[slice_id] -= extra
                    unmet[slice_id] -= extra
                pool -= sum(give.values())
                level_unmet = {s: u for s, u in level_unmet.items() if u > 1e-9}
                if all(extra <= 1e-12 for extra in give.values()):
                    break
        return grants


__all__ = [
    "IntraSliceScheduler",
    "ProportionalFairScheduler",
    "RoundRobinScheduler",
    "SchedulerError",
    "SliceAwareScheduler",
]
