"""Resource calendar for advance slice reservations.

The paper's admission problem accounts for "resource availability,
ongoing slice reservations **and upcoming requests**" (§2): a tenant may
book a slice starting in the future, and admission must check capacity
over the slice's *whole lifetime* against everything already promised —
not just the instantaneous free vector.

:class:`ResourceCalendar` keeps a piecewise-constant timeline of
committed multi-domain capacity.  Commitments are half-open intervals
``[start, end)`` carrying a :class:`ResourceVector`; feasibility of a
new booking is the peak committed usage over its interval staying within
capacity.  Because usage only changes at interval boundaries, the peak
over a window is exact by evaluating at the window start plus every
boundary inside it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.admission import ResourceVector


class CalendarError(RuntimeError):
    """Raised on calendar misuse (bad intervals, duplicate bookings)."""


@dataclass(frozen=True)
class Booking:
    """One committed interval on the calendar."""

    booking_id: str
    start: float
    end: float
    demand: ResourceVector

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise CalendarError(
                f"booking {self.booking_id}: end ({self.end}) must exceed "
                f"start ({self.start})"
            )

    def active_at(self, t: float) -> bool:
        """Whether the booking occupies capacity at instant ``t``."""
        return self.start <= t < self.end


class ResourceCalendar:
    """Timeline of multi-domain capacity commitments."""

    def __init__(self, capacity: ResourceVector) -> None:
        self.capacity = capacity
        self._bookings: Dict[str, Booking] = {}

    # ------------------------------------------------------------------
    # Bookings
    # ------------------------------------------------------------------
    def commit(
        self, booking_id: str, start: float, end: float, demand: ResourceVector
    ) -> Booking:
        """Record a commitment (does not check feasibility — call
        :meth:`fits` first; the split lets policies decide to overbook).

        Raises:
            CalendarError: On a duplicate id or an empty interval.
        """
        if booking_id in self._bookings:
            raise CalendarError(f"booking {booking_id} already exists")
        booking = Booking(booking_id, float(start), float(end), demand)
        self._bookings[booking_id] = booking
        return booking

    def update_demand(self, booking_id: str, demand: ResourceVector) -> Booking:
        """Replace a booking's demand, keeping its window.

        Called by the orchestrator's reconfiguration loop so the
        calendar tracks *effective* (overbooked) commitments rather than
        stale cold-start nominals — otherwise the calendar would veto
        exactly the admissions overbooking frees up.

        Raises:
            CalendarError: If the booking does not exist.
        """
        old = self._bookings.get(booking_id)
        if old is None:
            raise CalendarError(f"booking {booking_id} does not exist")
        updated = Booking(booking_id, old.start, old.end, demand)
        self._bookings[booking_id] = updated
        return updated

    def release(self, booking_id: str) -> None:
        """Drop a commitment.

        Raises:
            CalendarError: If unknown.
        """
        if booking_id not in self._bookings:
            raise CalendarError(f"booking {booking_id} does not exist")
        del self._bookings[booking_id]

    def has(self, booking_id: str) -> bool:
        """Whether the booking exists."""
        return booking_id in self._bookings

    def get(self, booking_id: str) -> Optional[Booking]:
        """The booking, or None — used by the durability checkpoint to
        capture each live slice's promised window."""
        return self._bookings.get(booking_id)

    def bookings(self) -> List[Booking]:
        """All bookings, start-ordered."""
        return sorted(self._bookings.values(), key=lambda b: (b.start, b.booking_id))

    def prune_before(self, t: float) -> int:
        """Drop bookings that ended at or before ``t``; returns count."""
        stale = [bid for bid, b in self._bookings.items() if b.end <= t]
        for bid in stale:
            del self._bookings[bid]
        return len(stale)

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    def usage_at(self, t: float) -> ResourceVector:
        """Committed usage at instant ``t``."""
        total = ResourceVector()
        for booking in self._bookings.values():
            if booking.active_at(t):
                total = total + booking.demand
        return total

    def peak_usage(self, start: float, end: float) -> ResourceVector:
        """Component-wise peak committed usage over ``[start, end)``.

        Exact: usage is piecewise constant with changes only at booking
        boundaries, so the peak is attained at ``start`` or at some
        boundary strictly inside the window.
        """
        if end <= start:
            raise CalendarError(f"bad window [{start}, {end})")
        instants = {start}
        for booking in self._bookings.values():
            if start < booking.start < end:
                instants.add(booking.start)
        peak_prbs = peak_mbps = peak_vcpus = 0.0
        for t in instants:
            usage = self.usage_at(t)
            peak_prbs = max(peak_prbs, usage.prbs)
            peak_mbps = max(peak_mbps, usage.mbps)
            peak_vcpus = max(peak_vcpus, usage.vcpus)
        return ResourceVector(prbs=peak_prbs, mbps=peak_mbps, vcpus=peak_vcpus)

    def fits(self, demand: ResourceVector, start: float, end: float) -> bool:
        """Whether adding ``demand`` over ``[start, end)`` stays within
        capacity at every instant."""
        peak = self.peak_usage(start, end)
        return (peak + demand).fits_within(self.capacity)

    def utilization_profile(
        self, start: float, end: float, step: float
    ) -> List[Tuple[float, ResourceVector]]:
        """Sampled usage timeline (for dashboards/what-if plots)."""
        if step <= 0:
            raise CalendarError(f"step must be positive, got {step}")
        out = []
        t = start
        while t < end:
            out.append((t, self.usage_at(t)))
            t += step
        return out


__all__ = ["Booking", "CalendarError", "ResourceCalendar"]
