"""Network-slice model: SLAs, requests, PLMN mapping and slice lifecycle.

The demo maps each admitted network slice onto a dedicated PLMN
(Public Land Mobile Network) broadcast by the MOCN-sharing eNBs, because
no commercial slicing equipment existed in 2018.  We reproduce that
design decision: :class:`PlmnPool` hands out PLMN identities and each
:class:`NetworkSlice` carries the PLMN its UEs attach to.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional


class SliceError(RuntimeError):
    """Base class for slice-model errors."""


class PlmnPoolExhausted(SliceError):
    """Raised when no PLMN identity is free for a new slice."""


class IllegalTransition(SliceError):
    """Raised on a slice state-machine violation."""


class ServiceType(enum.Enum):
    """Service archetypes used by the demo's heterogeneous requests.

    ``EMBB``/``URLLC``/``MMTC`` are the standard 5G service classes;
    ``AUTOMOTIVE`` and ``EHEALTH`` are the two vertical industries the
    paper's introduction calls out explicitly.
    """

    EMBB = "embb"
    URLLC = "urllc"
    MMTC = "mmtc"
    AUTOMOTIVE = "automotive"
    EHEALTH = "ehealth"


@dataclass(frozen=True)
class PLMN:
    """A Public Land Mobile Network identity (MCC + MNC)."""

    mcc: str
    mnc: str

    def __post_init__(self) -> None:
        if len(self.mcc) != 3 or not self.mcc.isdigit():
            raise SliceError(f"MCC must be 3 digits, got {self.mcc!r}")
        if len(self.mnc) not in (2, 3) or not self.mnc.isdigit():
            raise SliceError(f"MNC must be 2-3 digits, got {self.mnc!r}")

    @property
    def plmn_id(self) -> str:
        """Concatenated MCC+MNC string, e.g. ``"00101"``."""
        return self.mcc + self.mnc

    def __str__(self) -> str:
        return self.plmn_id


class PlmnPool:
    """Finite pool of PLMN identities available for slice mapping.

    MOCN limits how many PLMNs an eNB can broadcast (6 in Rel-11 SIBs);
    the pool size therefore bounds how many slices can be *concurrently
    installed*, independent of resource capacity.
    """

    def __init__(self, mcc: str = "001", size: int = 6, first_mnc: int = 1) -> None:
        if size <= 0:
            raise SliceError(f"pool size must be positive, got {size}")
        if not (len(mcc) == 3 and mcc.isdigit()):
            raise SliceError(f"MCC must be 3 digits, got {mcc!r}")
        # One MCC carries at most 1000 MNCs (00-999); a fleet-scale
        # pool (the 256-eNB sweep needs 6 * 256 identities) rolls the
        # overflow into consecutive test-range MCCs, exactly how a
        # real operator exhausting an MCC's MNC space provisions more.
        base_mcc = int(mcc)
        self._free = []
        for i in range(size):
            ordinal = first_mnc + i
            mcc_i = f"{(base_mcc + ordinal // 1000) % 1000:03d}"
            self._free.append(PLMN(mcc_i, f"{ordinal % 1000:02d}"))
        self._allocated: Dict[str, PLMN] = {}

    @property
    def capacity(self) -> int:
        """Total PLMN identities managed by the pool."""
        return len(self._free) + len(self._allocated)

    @property
    def available(self) -> int:
        """PLMN identities currently free."""
        return len(self._free)

    def allocate(self, slice_id: str) -> PLMN:
        """Reserve a PLMN for ``slice_id``.

        Raises:
            PlmnPoolExhausted: If every identity is in use.
            SliceError: If the slice already holds a PLMN.
        """
        if slice_id in self._allocated:
            raise SliceError(f"slice {slice_id} already holds PLMN")
        if not self._free:
            raise PlmnPoolExhausted(
                f"all {len(self._allocated)} PLMN identities in use"
            )
        plmn = self._free.pop(0)
        self._allocated[slice_id] = plmn
        return plmn

    def claim(self, slice_id: str, plmn_id: str) -> PLMN:
        """Reserve a *specific* PLMN for ``slice_id`` (crash recovery:
        the slice already broadcasts this identity on the surviving
        eNBs, so the rebuilt pool must hand back the same one).

        Raises:
            SliceError: If the identity is unknown to the pool, or held
                by a different slice.
        """
        held = self._allocated.get(slice_id)
        if held is not None:
            if held.plmn_id == plmn_id:
                return held  # already claimed (idempotent re-adoption)
            raise SliceError(
                f"slice {slice_id} already holds PLMN {held.plmn_id}, not {plmn_id}"
            )
        holder = self.holder_of(plmn_id)
        if holder is not None:
            raise SliceError(f"PLMN {plmn_id} is held by slice {holder}")
        for index, plmn in enumerate(self._free):
            if plmn.plmn_id == plmn_id:
                self._allocated[slice_id] = self._free.pop(index)
                return self._allocated[slice_id]
        raise SliceError(f"PLMN {plmn_id} is not managed by this pool")

    def release(self, slice_id: str) -> None:
        """Return the PLMN held by ``slice_id`` to the pool."""
        plmn = self._allocated.pop(slice_id, None)
        if plmn is None:
            raise SliceError(f"slice {slice_id} holds no PLMN")
        self._free.append(plmn)

    def holder_of(self, plmn_id: str) -> Optional[str]:
        """Slice id currently mapped onto ``plmn_id`` (None if free)."""
        for slice_id, plmn in self._allocated.items():
            if plmn.plmn_id == plmn_id:
                return slice_id
        return None


@dataclass(frozen=True)
class SLA:
    """Service-level agreement attached to a slice request.

    These are exactly the knobs the demo dashboard exposes: slice time
    duration, maximum allowed latency, expected throughput, the price the
    tenant is willing to pay, and the penalty expected per violation.

    Attributes:
        throughput_mbps: Expected downlink throughput on the access network.
        max_latency_ms: End-to-end latency bound (RAN + transport + DC).
        duration_s: Requested slice lifetime in seconds.
        availability: Fraction of monitoring epochs that must meet the
            throughput target (0 < availability ≤ 1).
    """

    throughput_mbps: float
    max_latency_ms: float
    duration_s: float
    availability: float = 0.95

    def __post_init__(self) -> None:
        if self.throughput_mbps <= 0:
            raise SliceError(f"throughput must be positive, got {self.throughput_mbps}")
        if self.max_latency_ms <= 0:
            raise SliceError(f"latency bound must be positive, got {self.max_latency_ms}")
        if self.duration_s <= 0:
            raise SliceError(f"duration must be positive, got {self.duration_s}")
        if not 0.0 < self.availability <= 1.0:
            raise SliceError(f"availability must be in (0, 1], got {self.availability}")


_request_counter = itertools.count(1)


def ensure_request_counter_at_least(ordinal: int) -> None:
    """Advance the auto-id counter past ``ordinal``.

    Crash recovery calls this with the highest journaled request
    ordinal: a fresh process restarts the counter at 1, and re-issuing
    a recovered id to a brand-new request would collide two slices on
    one ``slice_id``.
    """
    global _request_counter
    current = next(_request_counter)
    _request_counter = itertools.count(max(current, int(ordinal) + 1))


def peek_request_counter() -> int:
    """The next auto-assigned request ordinal, without consuming it —
    checkpointed so a snapshot-only restore can still advance the
    counter past every id ever issued."""
    global _request_counter
    current = next(_request_counter)
    _request_counter = itertools.count(current)
    return current


@dataclass
class SliceRequest:
    """A tenant's request for an end-to-end network slice.

    Attributes:
        tenant_id: Requesting vertical/tenant.
        service_type: Archetype used to pick traffic model and defaults.
        sla: The SLA (duration, latency, throughput, availability).
        price: One-off revenue collected if the slice is admitted.
        penalty_rate: Money forfeited per SLA-violation epoch.
        arrival_time: Simulation time the request was submitted.
        n_users: Expected number of UEs attaching to the slice.
        priority: QoS class for congestion-time arbitration (higher wins
            spare capacity first); defaults by service type — URLLC 3,
            automotive/e-health 2, eMBB/mMTC 1.
        request_id: Unique id (auto-assigned when omitted).
    """

    tenant_id: str
    service_type: ServiceType
    sla: SLA
    price: float
    penalty_rate: float
    arrival_time: float = 0.0
    n_users: int = 10
    priority: int = 0
    request_id: str = field(default="")

    #: Default QoS priority per service class (used when priority is 0).
    DEFAULT_PRIORITIES = {
        ServiceType.URLLC: 3,
        ServiceType.AUTOMOTIVE: 2,
        ServiceType.EHEALTH: 2,
        ServiceType.EMBB: 1,
        ServiceType.MMTC: 1,
    }

    def __post_init__(self) -> None:
        if not self.request_id:
            self.request_id = f"req-{next(_request_counter):06d}"
        if self.price < 0:
            raise SliceError(f"price must be non-negative, got {self.price}")
        if self.penalty_rate < 0:
            raise SliceError(f"penalty must be non-negative, got {self.penalty_rate}")
        if self.n_users <= 0:
            raise SliceError(f"n_users must be positive, got {self.n_users}")
        if self.priority < 0:
            raise SliceError(f"priority must be non-negative, got {self.priority}")
        if self.priority == 0:
            self.priority = self.DEFAULT_PRIORITIES[self.service_type]

    @property
    def expiry_time(self) -> float:
        """Absolute time the slice would expire if started on arrival."""
        return self.arrival_time + self.sla.duration_s

    def price_density(self) -> float:
        """Price per requested Mb/s·s — the greedy admission ranking key."""
        return self.price / (self.sla.throughput_mbps * self.sla.duration_s)


def slice_id_for(request_id: str) -> str:
    """The slice id a request maps onto (single source of truth — the
    northbound layer derives installed-ness from it too)."""
    return request_id.replace("req-", "slice-")


class SliceState(enum.Enum):
    """Lifecycle of a network slice inside the orchestrator."""

    PENDING = "pending"
    ADMITTED = "admitted"
    DEPLOYING = "deploying"
    ACTIVE = "active"
    EXPIRED = "expired"
    REJECTED = "rejected"
    CANCELLED = "cancelled"
    FAILED = "failed"


_LEGAL_TRANSITIONS: Dict[SliceState, frozenset] = {
    SliceState.PENDING: frozenset({SliceState.ADMITTED, SliceState.REJECTED}),
    SliceState.ADMITTED: frozenset({SliceState.DEPLOYING, SliceState.CANCELLED, SliceState.FAILED}),
    SliceState.DEPLOYING: frozenset({SliceState.ACTIVE, SliceState.CANCELLED, SliceState.FAILED}),
    SliceState.ACTIVE: frozenset({SliceState.EXPIRED, SliceState.FAILED}),
    SliceState.EXPIRED: frozenset(),
    SliceState.REJECTED: frozenset(),
    SliceState.CANCELLED: frozenset(),
    SliceState.FAILED: frozenset(),
}


class NetworkSlice:
    """An instantiated (or in-flight) end-to-end network slice.

    Carries the request it answers, the PLMN it is mapped onto, the
    per-domain allocation once deployed, and a strict state machine so
    tests can assert lifecycle legality.
    """

    def __init__(self, request: SliceRequest) -> None:
        self.request = request
        self.slice_id = slice_id_for(request.request_id)
        self.state = SliceState.PENDING
        self.plmn: Optional[PLMN] = None
        self.allocation = None  # EndToEndAllocation, set by the allocator
        self.admitted_at: Optional[float] = None
        self.active_at: Optional[float] = None
        self.expired_at: Optional[float] = None
        self.violation_epochs = 0
        self.served_epochs = 0
        self.history: list[tuple[float, SliceState]] = [(request.arrival_time, SliceState.PENDING)]

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def transition(self, new_state: SliceState, at_time: float) -> None:
        """Move to ``new_state``, enforcing lifecycle legality.

        Raises:
            IllegalTransition: If the move is not permitted from the
                current state.
        """
        if new_state not in _LEGAL_TRANSITIONS[self.state]:
            raise IllegalTransition(
                f"{self.slice_id}: {self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        self.history.append((at_time, new_state))
        if new_state is SliceState.ADMITTED:
            self.admitted_at = at_time
        elif new_state is SliceState.ACTIVE:
            self.active_at = at_time
        elif new_state is SliceState.EXPIRED:
            self.expired_at = at_time

    @property
    def is_terminal(self) -> bool:
        """True once the slice can never change state again."""
        return not _LEGAL_TRANSITIONS[self.state]

    @property
    def sla(self) -> SLA:
        """Shortcut to the request's SLA."""
        return self.request.sla

    def end_time(self) -> Optional[float]:
        """Absolute time the slice should expire (None before activation)."""
        if self.active_at is None:
            return None
        return self.active_at + self.request.sla.duration_s

    def violation_ratio(self) -> float:
        """Fraction of served monitoring epochs that violated the SLA."""
        if self.served_epochs == 0:
            return 0.0
        return self.violation_epochs / self.served_epochs

    def record_epoch(self, violated: bool) -> None:
        """Account one monitoring epoch toward the availability SLA."""
        self.served_epochs += 1
        if violated:
            self.violation_epochs += 1

    def sla_met(self) -> bool:
        """Whether the availability SLA holds so far.

        The SLA permits up to ``1 - availability`` of epochs to violate
        the throughput target; a slice with no served epochs trivially
        meets its SLA.
        """
        return self.violation_ratio() <= (1.0 - self.request.sla.availability) + 1e-12

    def to_dict(self) -> dict:
        """JSON-friendly summary used by the dashboard and REST API."""
        return {
            "slice_id": self.slice_id,
            "tenant": self.request.tenant_id,
            "service_type": self.request.service_type.value,
            "state": self.state.value,
            "plmn": str(self.plmn) if self.plmn else None,
            "throughput_mbps": self.request.sla.throughput_mbps,
            "max_latency_ms": self.request.sla.max_latency_ms,
            "duration_s": self.request.sla.duration_s,
            "price": self.request.price,
            "penalty_rate": self.request.penalty_rate,
            "violation_epochs": self.violation_epochs,
            "served_epochs": self.served_epochs,
            "availability": self.request.sla.availability,
            "sla_met": self.sla_met(),
            "priority": self.request.priority,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkSlice({self.slice_id}, {self.state.value})"


__all__ = [
    "IllegalTransition",
    "NetworkSlice",
    "PLMN",
    "PlmnPool",
    "PlmnPoolExhausted",
    "SLA",
    "ServiceType",
    "SliceError",
    "SliceRequest",
    "SliceState",
    "ensure_request_counter_at_least",
    "peek_request_counter",
    "slice_id_for",
]
