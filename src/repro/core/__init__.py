"""Core contribution of the paper: the end-to-end slice overbooking orchestrator.

This package contains the pieces the SIGCOMM'18 demo highlights:

- the slice model and SLA vocabulary (:mod:`repro.core.slices`),
- the admission-control engine with its revenue-maximization policies
  (:mod:`repro.core.admission`),
- the traffic forecasting engine (:mod:`repro.core.forecasting`),
- the overbooking engine that converts forecasts into statistical
  multiplexing gain under an SLA-violation budget
  (:mod:`repro.core.overbooking`),
- the multi-domain resource allocator (:mod:`repro.core.allocation`),
- revenue/penalty accounting (:mod:`repro.core.pricing`), and
- the hierarchical end-to-end orchestrator that glues it all together
  (:mod:`repro.core.orchestrator`).
"""

from repro.core.slices import (
    PLMN,
    PlmnPool,
    ServiceType,
    SLA,
    SliceRequest,
    SliceState,
    NetworkSlice,
)

__all__ = [
    "PLMN",
    "PlmnPool",
    "ServiceType",
    "SLA",
    "SliceRequest",
    "SliceState",
    "NetworkSlice",
]
