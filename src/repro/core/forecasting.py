"""Traffic forecasting engine.

The demo's "machine-learning engine" (following Sciancalepore et al.,
INFOCOM'17 — ref [4]) forecasts each slice's demand so the orchestrator
can commit less than the nominal SLA reservation.  We implement the
classical forecaster family that paper builds on:

- :class:`NaiveForecaster` — last value carried forward (baseline),
- :class:`MovingAverageForecaster` — window mean (baseline),
- :class:`ArForecaster` — AR(p) fit by least squares,
- :class:`HoltWintersForecaster` — additive triple exponential smoothing
  with a configurable season length (the right model for diurnal mobile
  traffic),
- :class:`EnsembleForecaster` — picks the member with the lowest
  in-sample one-step error.

All forecasters expose point forecasts *and* upper-quantile forecasts:
``forecast_quantile(h, q)`` returns the level the demand will stay under
with probability ``q``, derived from the Gaussian residual model.  The
overbooking engine reserves that quantile instead of the SLA peak — the
difference is the multiplexing gain.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from functools import lru_cache
from typing import List, Optional, Sequence

import numpy as np
from scipy import stats


class ForecastError(RuntimeError):
    """Raised when a forecaster is used before fitting or on bad input."""


@lru_cache(maxsize=64)
def _z_value(q: float) -> float:
    """Gaussian upper-quantile z for ``q``, cached — ``stats.norm.ppf``
    costs more than an entire vectorized forecast path and the engine
    asks for the same handful of quantiles on every window."""
    return float(stats.norm.ppf(q))


class Forecaster(ABC):
    """Base class: fit on a history, forecast ``h`` steps ahead."""

    def __init__(self) -> None:
        self._fitted = False
        self._residual_std = 0.0
        self._history: np.ndarray = np.array([])

    # ------------------------------------------------------------------
    # Template methods
    # ------------------------------------------------------------------
    @abstractmethod
    def _fit(self, y: np.ndarray) -> None:
        """Model-specific fit."""

    @abstractmethod
    def _point_forecast(self, h: int) -> float:
        """Model-specific point forecast ``h ≥ 1`` steps ahead."""

    def _point_forecast_path(self, horizon: int) -> np.ndarray:
        """Point forecasts for steps ``1..horizon`` in one pass.

        Subclasses override this with a vectorized (or single-recursion)
        implementation; the fallback keeps custom forecasters working.
        """
        return np.array([self._point_forecast(h) for h in range(1, horizon + 1)])

    @abstractmethod
    def _fitted_values(self, y: np.ndarray) -> np.ndarray:
        """One-step-ahead in-sample predictions (same length as ``y``;
        entries the model cannot predict should repeat ``y``)."""

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(self, history: Sequence[float]) -> "Forecaster":
        """Fit on an evenly-spaced demand history.

        Raises:
            ForecastError: If the history is empty or contains NaN.
        """
        y = np.asarray(list(history), dtype=float)
        if y.size == 0:
            raise ForecastError("cannot fit on an empty history")
        if np.any(~np.isfinite(y)):
            raise ForecastError("history contains non-finite values")
        self._history = y
        self._fit(y)
        fitted = self._fitted_values(y)
        residuals = y - fitted
        # Guard: a single point gives no residual information.
        self._residual_std = float(np.std(residuals, ddof=0)) if y.size >= 2 else 0.0
        self._fitted = True
        return self

    def forecast(self, h: int = 1) -> float:
        """Point forecast ``h`` steps ahead (demand is clipped at 0).

        Raises:
            ForecastError: If not fitted or ``h < 1``.
        """
        self._require_fitted()
        if h < 1:
            raise ForecastError(f"horizon must be ≥ 1, got {h}")
        return max(0.0, float(self._point_forecast(h)))

    def forecast_path(self, horizon: int) -> np.ndarray:
        """Point forecasts for steps ``1..horizon``.

        Computed in a single vectorized pass over the fitted model state
        (one recursion for AR) instead of re-deriving the forecast per
        horizon step; matches ``forecast(h)`` exactly at every step.
        """
        self._require_fitted()
        if horizon < 1:
            raise ForecastError(f"horizon must be ≥ 1, got {horizon}")
        path = np.asarray(self._point_forecast_path(horizon), dtype=float)
        return np.maximum(0.0, path)

    def forecast_quantile(self, h: int = 1, q: float = 0.95) -> float:
        """Upper ``q``-quantile forecast: point + z_q × residual σ.

        The residual σ is scaled by √h to widen the band with horizon
        (random-walk error growth), a standard conservative choice.

        Raises:
            ForecastError: If not fitted, ``h < 1`` or ``q`` outside (0, 1).
        """
        if not 0.0 < q < 1.0:
            raise ForecastError(f"quantile must be in (0, 1), got {q}")
        point = self.forecast(h)
        z = _z_value(q)
        return max(0.0, point + z * self._residual_std * math.sqrt(h))

    def forecast_quantile_path(self, horizon: int, q: float = 0.95) -> np.ndarray:
        """Upper ``q``-quantile forecasts for steps ``1..horizon``.

        One vectorized pass: the point path plus the √h-widened
        residual band; matches ``forecast_quantile(h, q)`` at every
        step.

        Raises:
            ForecastError: If not fitted, ``horizon < 1`` or ``q``
                outside (0, 1).
        """
        if not 0.0 < q < 1.0:
            raise ForecastError(f"quantile must be in (0, 1), got {q}")
        path = self.forecast_path(horizon)
        z = _z_value(q)
        widths = z * self._residual_std * np.sqrt(np.arange(1, horizon + 1, dtype=float))
        return np.maximum(0.0, path + widths)

    def residual_std(self) -> float:
        """In-sample one-step residual standard deviation."""
        self._require_fitted()
        return self._residual_std

    def in_sample_mae(self) -> float:
        """In-sample one-step mean absolute error (model-selection score)."""
        self._require_fitted()
        fitted = self._fitted_values(self._history)
        return float(np.mean(np.abs(self._history - fitted)))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ForecastError(f"{type(self).__name__} is not fitted")


class NaiveForecaster(Forecaster):
    """Forecast = last observed value (the persistence baseline)."""

    def _fit(self, y: np.ndarray) -> None:
        self._last = float(y[-1])

    def _point_forecast(self, h: int) -> float:
        return self._last

    def _point_forecast_path(self, horizon: int) -> np.ndarray:
        return np.full(horizon, self._last)

    def _fitted_values(self, y: np.ndarray) -> np.ndarray:
        fitted = np.empty_like(y)
        fitted[0] = y[0]
        fitted[1:] = y[:-1]
        return fitted


class MovingAverageForecaster(Forecaster):
    """Forecast = mean of the last ``window`` observations."""

    def __init__(self, window: int = 12) -> None:
        super().__init__()
        if window < 1:
            raise ForecastError(f"window must be ≥ 1, got {window}")
        self.window = int(window)

    def _fit(self, y: np.ndarray) -> None:
        self._level = float(y[-self.window :].mean())

    def _point_forecast(self, h: int) -> float:
        return self._level

    def _point_forecast_path(self, horizon: int) -> np.ndarray:
        return np.full(horizon, self._level)

    def _fitted_values(self, y: np.ndarray) -> np.ndarray:
        # Trailing-window means via cumulative sums: fitted[i] is the
        # mean of y[max(0, i-window):i], computed without a Python loop.
        fitted = np.empty_like(y, dtype=float)
        fitted[0] = y[0]
        if y.size > 1:
            csum = np.cumsum(y, dtype=float)
            idx = np.arange(1, y.size)
            lo = np.maximum(0, idx - self.window)
            sums = csum[idx - 1] - np.where(lo > 0, csum[lo - 1], 0.0)
            fitted[1:] = sums / (idx - lo)
        return fitted


class ArForecaster(Forecaster):
    """AR(p) model fit by ordinary least squares.

    ``y_t = c + Σ_{i=1..p} φ_i y_{t-i} + ε``; multi-step forecasts are
    produced by iterated one-step prediction.  Falls back to the naive
    model when the history is shorter than ``2p + 2``.
    """

    def __init__(self, order: int = 4) -> None:
        super().__init__()
        if order < 1:
            raise ForecastError(f"order must be ≥ 1, got {order}")
        self.order = int(order)
        self._coef: Optional[np.ndarray] = None
        self._intercept = 0.0

    def _fit(self, y: np.ndarray) -> None:
        p = self.order
        if y.size < 2 * p + 2:
            self._coef = None
            self._last = float(y[-1])
            return
        rows = y.size - p
        design = np.ones((rows, p + 1))
        for i in range(p):
            design[:, i + 1] = y[p - 1 - i : y.size - 1 - i]
        target = y[p:]
        solution, *_ = np.linalg.lstsq(design, target, rcond=None)
        self._intercept = float(solution[0])
        self._coef = solution[1:]
        self._tail = list(y[-p:][::-1])  # most recent first

    def _point_forecast(self, h: int) -> float:
        if self._coef is None:
            return self._last
        lags = list(self._tail)
        value = 0.0
        for _ in range(h):
            value = self._intercept + float(np.dot(self._coef, lags))
            lags = [value] + lags[:-1]
        return value

    def _point_forecast_path(self, horizon: int) -> np.ndarray:
        # One iterated recursion yields every step — O(H·p) instead of
        # the O(H²·p) of restarting the recursion per horizon step.
        if self._coef is None:
            return np.full(horizon, self._last)
        p = self.order
        buf = np.empty(p + horizon)
        buf[:p] = self._tail[::-1]  # oldest first; buf[p+h] holds step h+1
        out = np.empty(horizon)
        coef = self._coef
        intercept = self._intercept
        for h in range(horizon):
            window = buf[h : h + p][::-1]  # most recent first for the dot
            value = intercept + float(np.dot(coef, window))
            buf[p + h] = value
            out[h] = value
        return out

    def _fitted_values(self, y: np.ndarray) -> np.ndarray:
        fitted = y.copy().astype(float)
        if self._coef is None:
            fitted[1:] = y[:-1]
            return fitted
        p = self.order
        for i in range(p, y.size):
            lags = y[i - p : i][::-1]
            fitted[i] = self._intercept + float(np.dot(self._coef, lags))
        return fitted


class HoltWintersForecaster(Forecaster):
    """Additive Holt-Winters (triple exponential smoothing).

    Level ``l``, trend ``b`` and additive seasonal components ``s`` with
    season length ``m``; the canonical model for diurnal mobile traffic.
    Falls back to simple (double) exponential smoothing when the history
    is shorter than two full seasons.

    Args:
        season_length: Samples per season (e.g. 288 for a day at 5 min).
        alpha: Level smoothing in (0, 1).
        beta: Trend smoothing in [0, 1).
        gamma: Seasonal smoothing in [0, 1).
    """

    def __init__(
        self,
        season_length: int = 24,
        alpha: float = 0.35,
        beta: float = 0.05,
        gamma: float = 0.25,
    ) -> None:
        super().__init__()
        if season_length < 2:
            raise ForecastError(f"season length must be ≥ 2, got {season_length}")
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 <= value < 1.0:
                raise ForecastError(f"{name} must be in [0, 1), got {value}")
        if alpha <= 0.0:
            raise ForecastError("alpha must be positive")
        self.m = int(season_length)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)

    def _smooth(self, y: np.ndarray) -> tuple:
        """Run the recursions; returns (level, trend, season, fitted)."""
        m = self.m
        seasonal = y.size >= 2 * m
        if seasonal:
            # Initial components from the first two seasons.
            level = float(y[:m].mean())
            trend = float((y[m : 2 * m].mean() - y[:m].mean()) / m)
            season = [float(y[i] - level) for i in range(m)]
            start = m
            fitted = y[:m].astype(float).copy()
        else:
            level = float(y[0])
            trend = 0.0
            season = [0.0] * m
            start = 1
            fitted = np.array([y[0]], dtype=float)
        fitted_rest = []
        for i in range(start, y.size):
            s_idx = i % m
            pred = level + trend + (season[s_idx] if seasonal else 0.0)
            fitted_rest.append(pred)
            prev_level = level
            if seasonal:
                level = self.alpha * (y[i] - season[s_idx]) + (1 - self.alpha) * (
                    level + trend
                )
                season[s_idx] = self.gamma * (y[i] - level) + (1 - self.gamma) * season[
                    s_idx
                ]
            else:
                level = self.alpha * y[i] + (1 - self.alpha) * (level + trend)
            trend = self.beta * (level - prev_level) + (1 - self.beta) * trend
        fitted_all = np.concatenate([fitted, np.array(fitted_rest)]) if fitted_rest else fitted
        return level, trend, season, seasonal, fitted_all[: y.size]

    def _fit(self, y: np.ndarray) -> None:
        self._level, self._trend, self._season, self._seasonal, self._fit_vals = self._smooth(y)
        self._n = y.size

    def _point_forecast(self, h: int) -> float:
        value = self._level + h * self._trend
        if self._seasonal:
            value += self._season[(self._n + h - 1) % self.m]
        return value

    def _point_forecast_path(self, horizon: int) -> np.ndarray:
        h = np.arange(1, horizon + 1, dtype=float)
        path = self._level + h * self._trend
        if self._seasonal:
            season = np.asarray(self._season, dtype=float)
            path = path + season[(self._n + np.arange(horizon)) % self.m]
        return path

    def _fitted_values(self, y: np.ndarray) -> np.ndarray:
        *_, fitted = self._smooth(y)
        return fitted


class SeasonalNaiveForecaster(Forecaster):
    """Forecast = the value one season ago (strong diurnal baseline).

    Falls back to plain naive while the history is shorter than one
    season.
    """

    def __init__(self, season_length: int = 24) -> None:
        super().__init__()
        if season_length < 2:
            raise ForecastError(f"season length must be ≥ 2, got {season_length}")
        self.m = int(season_length)

    def _fit(self, y: np.ndarray) -> None:
        self._y = y

    def _point_forecast(self, h: int) -> float:
        y = self._y
        if y.size < self.m:
            return float(y[-1])
        return float(y[-self.m + ((h - 1) % self.m)])

    def _point_forecast_path(self, horizon: int) -> np.ndarray:
        y = self._y
        if y.size < self.m:
            return np.full(horizon, float(y[-1]))
        offsets = -self.m + (np.arange(horizon) % self.m)
        return y[offsets].astype(float)

    def _fitted_values(self, y: np.ndarray) -> np.ndarray:
        fitted = y.astype(float).copy()
        for i in range(y.size):
            if i >= self.m:
                fitted[i] = y[i - self.m]
            elif i >= 1:
                fitted[i] = y[i - 1]
        return fitted


class SimpleExpSmoothingForecaster(Forecaster):
    """Simple exponential smoothing (level only, no trend/season)."""

    def __init__(self, alpha: float = 0.3) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ForecastError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)

    def _smooth(self, y: np.ndarray) -> tuple:
        level = float(y[0])
        fitted = [level]
        for value in y[1:]:
            fitted.append(level)
            level = self.alpha * float(value) + (1 - self.alpha) * level
        return level, np.array(fitted[: y.size])

    def _fit(self, y: np.ndarray) -> None:
        self._level, self._fit_vals = self._smooth(y)

    def _point_forecast(self, h: int) -> float:
        return self._level

    def _point_forecast_path(self, horizon: int) -> np.ndarray:
        return np.full(horizon, self._level)

    def _fitted_values(self, y: np.ndarray) -> np.ndarray:
        _, fitted = self._smooth(y)
        return fitted


class DriftForecaster(Forecaster):
    """Naive-with-drift: extrapolates the average historical slope."""

    def _fit(self, y: np.ndarray) -> None:
        self._last = float(y[-1])
        self._drift = float((y[-1] - y[0]) / (y.size - 1)) if y.size > 1 else 0.0

    def _point_forecast(self, h: int) -> float:
        return self._last + h * self._drift

    def _point_forecast_path(self, horizon: int) -> np.ndarray:
        return self._last + np.arange(1, horizon + 1, dtype=float) * self._drift

    def _fitted_values(self, y: np.ndarray) -> np.ndarray:
        fitted = y.astype(float).copy()
        for i in range(1, y.size):
            slope = (y[i - 1] - y[0]) / (i - 1) if i > 1 else 0.0
            fitted[i] = y[i - 1] + slope
        return fitted


class EnsembleForecaster(Forecaster):
    """Selects, at fit time, the member with the lowest in-sample MAE."""

    def __init__(self, members: Optional[List[Forecaster]] = None) -> None:
        super().__init__()
        if members is None:
            members = [
                NaiveForecaster(),
                MovingAverageForecaster(window=12),
                ArForecaster(order=4),
                HoltWintersForecaster(season_length=24),
            ]
        if not members:
            raise ForecastError("ensemble needs at least one member")
        self.members = members
        self.selected: Optional[Forecaster] = None

    def _fit(self, y: np.ndarray) -> None:
        best_mae = float("inf")
        best: Optional[Forecaster] = None
        for member in self.members:
            member.fit(y)
            mae = member.in_sample_mae()
            if mae < best_mae:
                best_mae, best = mae, member
        self.selected = best

    def _point_forecast(self, h: int) -> float:
        assert self.selected is not None
        return self.selected._point_forecast(h)

    def _point_forecast_path(self, horizon: int) -> np.ndarray:
        assert self.selected is not None
        return self.selected._point_forecast_path(horizon)

    def _fitted_values(self, y: np.ndarray) -> np.ndarray:
        assert self.selected is not None
        return self.selected._fitted_values(y)


#: Registry of forecaster constructors by name.  ``make_forecaster``
#: resolves these; configuration files / CLI flags use the names.
FORECASTER_REGISTRY = {
    "naive": NaiveForecaster,
    "seasonal-naive": SeasonalNaiveForecaster,
    "moving-average": MovingAverageForecaster,
    "ses": SimpleExpSmoothingForecaster,
    "drift": DriftForecaster,
    "ar": ArForecaster,
    "holt-winters": HoltWintersForecaster,
    "ensemble": EnsembleForecaster,
}


def make_forecaster(name: str, **kwargs) -> Forecaster:
    """Construct a forecaster by registry name.

    Raises:
        ForecastError: If the name is unknown.
    """
    try:
        factory = FORECASTER_REGISTRY[name]
    except KeyError:
        raise ForecastError(
            f"unknown forecaster {name!r}; valid: {sorted(FORECASTER_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def evaluate_forecaster(
    forecaster: Forecaster,
    series: Sequence[float],
    train_fraction: float = 0.7,
    horizon: int = 1,
) -> dict:
    """Rolling-origin out-of-sample evaluation.

    Fits on the first ``train_fraction`` of ``series`` and then walks
    forward one step at a time, refitting and recording the ``horizon``
    step-ahead error at each origin.

    Returns:
        Dict with ``mae``, ``rmse``, ``mape`` (on nonzero truths) and
        ``n_evaluations``.

    Raises:
        ForecastError: If the split leaves no evaluation points.
    """
    y = np.asarray(list(series), dtype=float)
    split = int(y.size * train_fraction)
    if split < 2 or split + horizon > y.size:
        raise ForecastError("series too short for the requested split/horizon")
    errors: List[float] = []
    truths: List[float] = []
    for origin in range(split, y.size - horizon + 1):
        forecaster.fit(y[:origin])
        pred = forecaster.forecast(horizon)
        truth = y[origin + horizon - 1]
        errors.append(pred - truth)
        truths.append(truth)
    err = np.array(errors)
    truth_arr = np.array(truths)
    nonzero = np.abs(truth_arr) > 1e-9
    mape = (
        float(np.mean(np.abs(err[nonzero] / truth_arr[nonzero]))) if nonzero.any() else 0.0
    )
    return {
        "mae": float(np.mean(np.abs(err))),
        "rmse": float(np.sqrt(np.mean(err**2))),
        "mape": mape,
        "n_evaluations": int(err.size),
    }


__all__ = [
    "ArForecaster",
    "DriftForecaster",
    "EnsembleForecaster",
    "FORECASTER_REGISTRY",
    "ForecastError",
    "Forecaster",
    "HoltWintersForecaster",
    "MovingAverageForecaster",
    "NaiveForecaster",
    "SeasonalNaiveForecaster",
    "SimpleExpSmoothingForecaster",
    "evaluate_forecaster",
    "make_forecaster",
]
