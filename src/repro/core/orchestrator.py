"""End-to-end network slicing orchestrator.

The top of the Fig. 1 hierarchy.  The orchestrator sits above the three
domain controllers and closes the demo's loop:

    collect utilization → analyse/forecast → optimize allocation →
    reconfigure the network → (repeat)

Responsibilities, mapped to the paper:

- **Admission control** (§1-i): every arriving request is evaluated by a
  pluggable :class:`~repro.core.admission.AdmissionPolicy` against the
  live free-capacity vector, with demand already shrunk by the
  overbooking posture.
- **Multi-domain allocation** (§1-ii): admitted slices are committed
  across RAN/transport/cloud by the
  :class:`~repro.core.allocation.MultiDomainAllocator`, incl. edge/core
  selection and the latency-budget split.
- **Monitoring, forecasting, dynamic reconfiguration** (§1-iii): a
  periodic monitoring epoch samples real demand, serves it through the
  slice-aware RAN scheduler, detects SLA violations and books penalties;
  a slower reconfiguration loop refits per-slice forecasters and
  resizes effective reservations (the *overbooking* step), freeing
  capacity to accommodate new slice requests.

Southbound, the orchestrator speaks only the uniform
:class:`~repro.drivers.base.DomainDriver` contract: installs run as a
two-phase prepare/commit transaction across every driver in the
:class:`~repro.drivers.registry.DriverRegistry` (with automatic
rollback of already-prepared domains on any failure), and resizes,
releases and self-healing route through the same drivers.  Placement
planning (cell/DC selection, free-capacity vectors) still consults the
allocator's topology views — the documented boundary of the driver
abstraction (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.admission import (
    AdmissionDecision,
    AdmissionPolicy,
    FcfsPolicy,
    ResourceVector,
)
from repro.core.allocation import (
    AllocationError,
    EndToEndAllocation,
    MultiDomainAllocator,
)
from repro.core.events import EventLog
from repro.drivers.adapters import build_default_registry
from repro.drivers.base import (
    DomainSpec,
    DriverAbsentError,
    DriverError,
    Reservation,
)
from repro.drivers.planner import BatchInstallPlanner, InstallJob
from repro.drivers.registry import DriverRegistry
from repro.drivers.transaction import InstallTransaction, TransactionError
from repro.core.forecasting import Forecaster, ForecastError, HoltWintersForecaster
from repro.core.overbooking import (
    AdaptiveOverbooking,
    MultiplexingGainTracker,
    NoOverbooking,
    OverbookingPolicy,
    SlaMonitor,
)
from repro.core.pricing import RevenueLedger
from repro.core.slices import (
    NetworkSlice,
    PlmnPool,
    PlmnPoolExhausted,
    SliceRequest,
    SliceState,
    peek_request_counter,
)
from repro.epc.attach import AttachProcedure
from repro.epc.instance import EpcInstance
from repro.monitoring.collector import TelemetryCollector
from repro.monitoring.metrics import MetricsRegistry
from repro.obs import NOOP_OBS, ControlPlaneObservability
from repro.ran.controller import PlannedCellLoad
from repro.ran.ue import UserEquipment
from repro.sim.engine import Simulator
from repro.store.codec import request_to_dict
from repro.store.store import ControlPlaneStore, NullStore, open_store
from repro.sim.processes import PeriodicProcess
from repro.sim.randomness import RandomStreams
from repro.traffic.patterns import TrafficProfile


class OrchestratorError(RuntimeError):
    """Raised on orchestrator misuse."""


@dataclass
class OrchestratorConfig:
    """Tunables of the orchestration loop.

    Attributes:
        monitoring_epoch_s: Telemetry/SLA-check period (the demo's
            "real-time monitoring" cadence).
        reconfig_every_epochs: Forecast + resize every N epochs.
        deploy_time_s: Seconds between admission and ACTIVE ("after few
            seconds, user devices ... are allowed to connect").
        min_history_for_forecast: Demand samples required before the
            forecaster is trusted for overbooking.
        forecast_history_epochs: Tail length the forecaster refits on.
        simulate_ues: Create UE populations and run attach procedures
            (disable for large parameter sweeps).
        max_ues_per_slice: Cap on simulated UEs per slice.
        self_healing: Re-route slices whose transport path traverses a
            failed link (checked every monitoring epoch).
        respect_calendar: Check admission against the advance-reservation
            calendar ("accounting for ... upcoming requests", paper §2).
            Disabled only by the D11 ablation, which quantifies the
            promise-breaking a myopic broker causes.
        event_log_capacity: Retention of the northbound event feed
            (``GET /v1/events``); oldest events are evicted beyond it.
        install_workers: Concurrent-job cap of the async batch install
            planner (see :class:`~repro.drivers.planner.
            BatchInstallPlanner`; a token pool, not a thread pool).
        install_batch_size: Maximum installs one planner batch runs
            concurrently; larger admission bursts are split.
        install_timeout_s: Default per-operation southbound deadline
            (wall-clock) for batched installs; a domain driver that has
            not completed a prepare/commit within this budget is
            treated as hung — the job unwinds cleanly while healthy
            jobs proceed, and the straggler is compensated when it
            completes.  Drivers declaring their own
            ``DriverCapabilities.operation_timeout_s`` override it;
            ``None`` waits forever (the blocking path's behavior).
        durability_dir: Root directory of the durable control-plane
            store (write-ahead journal + snapshots).  ``None`` (the
            default) keeps the control plane memory-only, exactly the
            pre-durability behavior; set it and every state transition
            is journaled before it is acknowledged, making
            restart-without-losing-slices possible (see
            :mod:`repro.store` and ``docs/ARCHITECTURE.md``).
        checkpoint_every_records: Auto-checkpoint threshold — once this
            many journal records accumulate past the latest snapshot,
            the monitoring loop writes a full-state snapshot and
            compacts the journal (bounding recovery time by
            churn-since-checkpoint, the gap benchmark D12 measures).
            ``0`` disables auto-checkpoints.
        journal_fsync_every: Journal group-commit size: fsync every N
            appended records (every append is still flushed to the OS
            immediately).  ``1`` = fully synchronous, ``0`` = never
            fsync.
        shard_id: Position of this orchestrator in a sharded control
            plane (:mod:`repro.cluster`).  When set together with
            ``durability_dir``, the store namespaces itself under
            ``<durability_dir>/shard-<id>/`` so every shard owns its
            own journal + snapshot family (and a warm standby can tail
            exactly one shard's WAL).  ``None`` (the default) keeps the
            single-process layout.
        observability: Switch for the control-plane observability
            subsystem (:mod:`repro.obs`): tracing spans across
            admission → placement → per-domain prepare/commit →
            journal → event emission, per-stage wall-clock latency
            histograms, and the ``GET /v1/admin/metrics`` /
            ``/v1/admin/traces`` surfaces.  Defaults to the
            ``REPRO_OBS_ENABLED=1`` environment flag (i.e. off); when
            off, every instrumentation point resolves to a shared
            no-op singleton — no allocation, no locks, no timing.
        observability_trace_capacity: Finished traces (and slow-span
            audit entries) retained in memory.
        observability_slow_span_ms: Spans at least this slow (wall
            clock) are retained in the slow-op audit log with their
            full ancestry.
    """

    monitoring_epoch_s: float = 60.0
    reconfig_every_epochs: int = 5
    deploy_time_s: float = 3.0
    min_history_for_forecast: int = 12
    forecast_history_epochs: int = 288
    simulate_ues: bool = False
    max_ues_per_slice: int = 8
    self_healing: bool = True
    respect_calendar: bool = True
    event_log_capacity: int = 1024
    install_workers: int = 8
    install_batch_size: int = 16
    install_timeout_s: Optional[float] = None
    durability_dir: Optional[str] = None
    checkpoint_every_records: int = 512
    journal_fsync_every: int = 32
    shard_id: Optional[int] = None
    observability: bool = field(
        default_factory=lambda: os.environ.get("REPRO_OBS_ENABLED", "") == "1"
    )
    observability_trace_capacity: int = 256
    observability_slow_span_ms: float = 250.0


@dataclass
class SliceRuntime:
    """Per-slice live state the orchestrator tracks."""

    network_slice: NetworkSlice
    profile: TrafficProfile
    forecaster: Optional[Forecaster] = None
    effective_fraction: float = 1.0
    epc: Optional[EpcInstance] = None
    ues: List[UserEquipment] = field(default_factory=list)
    last_demand_mbps: float = 0.0
    last_delivered_mbps: float = 0.0
    reservations: Dict[str, Reservation] = field(default_factory=dict)


class Orchestrator:
    """The end-to-end slice orchestrator of the demo."""

    def __init__(
        self,
        sim: Simulator,
        allocator: MultiDomainAllocator,
        plmn_pool: Optional[PlmnPool] = None,
        admission: Optional[AdmissionPolicy] = None,
        overbooking: Optional[OverbookingPolicy] = None,
        forecaster_factory: Optional[Callable[[], Forecaster]] = None,
        config: Optional[OrchestratorConfig] = None,
        streams: Optional[RandomStreams] = None,
        registry: Optional[DriverRegistry] = None,
        planner: Optional[BatchInstallPlanner] = None,
        store: Optional["ControlPlaneStore | NullStore"] = None,
    ) -> None:
        self.sim = sim
        self.allocator = allocator
        # Southbound: every lifecycle operation goes through the driver
        # registry; the default wires adapters over the allocator's
        # controllers (RAN → transport → cloud → EPC, in install order).
        self.registry = registry or build_default_registry(allocator)
        self.plmn_pool = plmn_pool or PlmnPool(size=12)
        self.admission = admission or FcfsPolicy()
        self.overbooking = overbooking or NoOverbooking()
        self.forecaster_factory = forecaster_factory or (
            lambda: HoltWintersForecaster(season_length=24)
        )
        self.config = config or OrchestratorConfig()
        self.streams = streams or RandomStreams(seed=0)
        # Control-plane observability (repro.obs): spans + histograms
        # across the install pipeline.  Disabled (the default) resolves
        # to the shared no-op singleton — zero per-call allocation.
        self.obs: Any = (
            ControlPlaneObservability(
                trace_capacity=self.config.observability_trace_capacity,
                slow_span_ms=self.config.observability_slow_span_ms,
            )
            if self.config.observability
            else NOOP_OBS
        )
        self.metrics = MetricsRegistry()
        self.collector = TelemetryCollector(
            self.metrics,
            ran=allocator.ran,
            transport=allocator.transport,
            cloud=allocator.cloud,
        )
        self.ledger = RevenueLedger()
        self.events = EventLog(capacity=self.config.event_log_capacity)
        self.events.obs = self.obs
        self.sla_monitor = SlaMonitor()
        self.gain_tracker = MultiplexingGainTracker()
        from repro.core.calendar import ResourceCalendar

        self.calendar = ResourceCalendar(allocator.aggregate_capacity_vector())
        # Durable control plane: every state transition is journaled
        # (write-ahead) before it is acknowledged; a NullStore makes
        # all of this free when no durability_dir is configured.
        self.store = store if store is not None else open_store(
            self.config.durability_dir,
            fsync_every=self.config.journal_fsync_every,
            checkpoint_every=self.config.checkpoint_every_records,
            shard_id=self.config.shard_id,
        )
        #: Leader lease of a sharded deployment (duck-typed — anything
        #: with ``heartbeat() -> bool``; see :mod:`repro.cluster.lease`).
        #: Refreshed every monitoring epoch; a failed refresh means a
        #: standby promoted itself over us, and we fence (stop durable
        #: writes) instead of split-braining the shard's WAL.
        self.lease: Optional[Any] = None
        bind_obs = getattr(self.store, "bind_obs", None)
        if bind_obs is not None:  # duck-typed store stand-ins may lack it
            bind_obs(self.obs)
        #: Extra state sections (name → provider) merged into every
        #: checkpoint — the service layer registers its tenant quotas
        #: here so they survive restarts too.
        self.durable_sections: Dict[str, Callable[[], dict]] = {}
        #: Tenant quotas recovered from the journal before any service
        #: layer exists — a later :class:`~repro.api.service.
        #: SliceService` seeds itself from (and then supersedes) this,
        #: and checkpoints carry it meanwhile so quotas can never be
        #: compacted away by a service-less restart.
        self.recovered_quotas: Dict[str, dict] = {}
        self.durable_sections["quotas"] = lambda: self.recovered_quotas
        if self.store.enabled:
            # Tee the northbound feed into the journal: this is what
            # backs the durable GET /v1/events?after_lsn= cursor.
            self.events.sink = self._journal_event
        # Fleet-scale installs: admission bursts (broker windows, the
        # epoch-drained admission queue) run through the event-driven
        # async batch planner instead of looping slice-by-slice.
        self.planner = planner or BatchInstallPlanner(
            self.registry,
            max_workers=self.config.install_workers,
            batch_size=self.config.install_batch_size,
            operation_timeout_s=self.config.install_timeout_s,
            on_record=self._journal_driver_record if self.store.enabled else None,
            obs=self.obs,
        )
        if self.obs.enabled:
            # Pull an externally supplied planner and the southbound
            # drivers into the same trace/metric space (a planner with
            # its own live sink keeps it).
            if not self.planner.obs.enabled:
                self.planner.obs = self.obs
            for driver in self.registry.drivers():
                driver.obs = self.obs
        self._runtimes: Dict[str, SliceRuntime] = {}
        self._all_slices: Dict[str, NetworkSlice] = {}
        #: (request, profile, optional decision callback) awaiting the
        #: next batched install (drained every monitoring epoch).
        self._admission_queue: List[Tuple[SliceRequest, TrafficProfile, Optional[Callable[[AdmissionDecision], None]]]] = []
        self._pending_advance: Dict[str, float] = {}  # request_id -> start_time
        #: request objects of pending advance bookings (checkpointed so
        #: promises survive a restart).
        self._advance_requests: Dict[str, SliceRequest] = {}
        # slice_id -> (slice, domains whose backend refused to release)
        self._stuck_releases: Dict[str, Tuple[NetworkSlice, List[str]]] = {}
        self._epoch_counter = 0
        self._monitor_process = PeriodicProcess(
            sim,
            self.config.monitoring_epoch_s,
            self._monitoring_epoch,
            name="monitoring-epoch",
        )

    # ------------------------------------------------------------------
    # Lifecycle of the orchestrator itself
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic monitoring loop."""
        self._monitor_process.start()

    def attach_lease(self, lease: Any) -> None:
        """Adopt a leader lease (sharded deployments): the monitoring
        loop refreshes it every epoch and fences this process — closes
        the durable store, dropping all further writes — the moment the
        refresh fails because another worker took the shard over."""
        self.lease = lease

    def stop(self) -> None:
        """Halt the monitoring loop."""
        self._monitor_process.stop()

    # ------------------------------------------------------------------
    # Durability (write-ahead journal + snapshots + recovery support)
    # ------------------------------------------------------------------
    def _journal(self, record_type: str, **data) -> int:
        """Write-ahead one control-plane transition (no-op when the
        store is a :class:`~repro.store.store.NullStore`)."""
        return self.store.append(record_type, time=self.sim.now, **data)

    def _journal_event(self, event) -> None:
        """EventLog sink: tee every northbound event into the journal
        (backs the durable ``GET /v1/events?after_lsn=`` cursor)."""
        self.store.append("event.emitted", time=event.time, event=event.to_dict())

    def _journal_driver_record(
        self, record_type: str, domain: str, slice_id: str, reservation_id: str
    ) -> None:
        """Planner durability hook: per-driver reservation transitions,
        called from completion threads (the journal is thread-safe)."""
        self.store.append(
            record_type,
            time=self.sim.now,
            domain=domain,
            slice_id=slice_id,
            reservation_id=reservation_id,
        )

    def durable_state(self) -> dict:
        """The full-state checkpoint image (the
        :class:`~repro.store.codec.ReplayState` shape): live slices,
        the admission queue, pending advance bookings, and any
        registered extra sections (tenant quotas)."""
        live: Dict[str, dict] = {}
        for slice_id, runtime in self._runtimes.items():
            network_slice = runtime.network_slice
            if network_slice.state not in (
                SliceState.ADMITTED, SliceState.DEPLOYING, SliceState.ACTIVE
            ):
                continue
            request = network_slice.request
            booking = self.calendar.get(request.request_id)
            live[slice_id] = {
                "request": request_to_dict(request),
                "plmn": network_slice.plmn.plmn_id if network_slice.plmn else None,
                "fraction": runtime.effective_fraction,
                "status": "active"
                if network_slice.state is SliceState.ACTIVE
                else "installed",
                "installed_at": network_slice.admitted_at
                if network_slice.admitted_at is not None
                else self.sim.now,
                "activated_at": network_slice.active_at,
                "window": [booking.start, booking.end] if booking else None,
                "reservations": {
                    domain: r.reservation_id
                    for domain, r in runtime.reservations.items()
                },
            }
        state = {
            "time": self.sim.now,
            "live": live,
            "in_flight": {},
            "queued": {
                request.request_id: request_to_dict(request)
                for request, _, _ in self._admission_queue
            },
            "advance": {
                request_id: {
                    "request": request_to_dict(request),
                    "start_time": self._pending_advance.get(request_id, 0.0),
                }
                for request_id, request in self._advance_requests.items()
                if request_id in self._pending_advance
            },
            "last_event_seq": self.events.last_seq,
            # High-water mark of issued request ordinals: a snapshot-only
            # restore must never re-issue an id, even when every slice
            # that carried it already terminated.
            "last_request_ordinal": peek_request_counter() - 1,
        }
        for name, provider in self.durable_sections.items():
            state[name] = provider()
        return state

    def checkpoint(self) -> dict:
        """Write a full-state snapshot and compact the journal.

        Raises:
            OrchestratorError: When durability is disabled.
        """
        if not self.store.enabled:
            raise OrchestratorError(
                "durability is disabled (no durability_dir configured)"
            )
        lsn = self.store.checkpoint(self.durable_state())
        self.metrics.record(self.sim.now, "store.checkpoint_lsn", float(lsn))
        return {
            "checkpoint_lsn": lsn,
            "time": self.sim.now,
            "records_since_checkpoint": self.store.records_since_checkpoint,
        }

    def _drain_planner_events(self) -> None:
        """Surface the planner's buffered incidents (op timeouts,
        background compensations) on the northbound feed — on this
        thread, never a completion thread."""
        drain = getattr(self.planner, "drain_events", None)
        if drain is None:
            return
        for event_type, payload in drain():
            slice_id = payload.pop("slice_id", None)
            record = self._all_slices.get(slice_id) if slice_id else None
            self.events.emit(
                self.sim.now,
                event_type,
                slice_id=slice_id,
                tenant_id=record.request.tenant_id if record else None,
                **payload,
            )

    def default_profile(self, request: SliceRequest) -> TrafficProfile:
        """The vertical-preset traffic profile for a request — what
        recovery (and re-enqueued admissions) attach when the original
        profile object died with the old process."""
        from repro.traffic.verticals import vertical_for

        spec = vertical_for(request.service_type)
        rng = self.streams.stream(f"profile-{request.request_id}")
        return spec.sample_profile(request.sla.throughput_mbps, rng)

    def adopt_recovered_slice(
        self,
        request: SliceRequest,
        *,
        plmn_id: Optional[str],
        fraction: float,
        reservations: Dict[str, Reservation],
        profile: Optional[TrafficProfile] = None,
        active_remaining_s: Optional[float] = None,
        deploy_remaining_s: Optional[float] = None,
        window_remaining_s: Optional[float] = None,
    ) -> NetworkSlice:
        """Re-adopt a slice the southbound still holds COMMITTED after
        a restart: rebuild its runtime around the drivers' live
        reservations (nothing is re-prepared), re-claim its PLMN,
        re-promise its calendar window, and restart its lifecycle
        clocks rebased onto the new sim clock.

        Args:
            active_remaining_s: Seconds of ACTIVE lifetime left (the
                slice was ACTIVE at the crash); ``None`` for a slice
                still pending activation.
            deploy_remaining_s: Seconds until activation for a slice
                adopted as DEPLOYING (defaults to ``deploy_time_s``).
            window_remaining_s: Seconds until the calendar promise
                ends (computed from the lifecycle when omitted).
        """
        network_slice = NetworkSlice(request)
        slice_id = network_slice.slice_id
        self._all_slices[slice_id] = network_slice
        if plmn_id:
            network_slice.plmn = self.plmn_pool.claim(slice_id, plmn_id)
        now = self.sim.now
        network_slice.transition(SliceState.ADMITTED, now)
        network_slice.allocation = self._compose_allocation(reservations)
        runtime = SliceRuntime(
            network_slice=network_slice,
            profile=profile or self.default_profile(request),
            effective_fraction=fraction,
            reservations=dict(reservations),
        )
        epc_reservation = reservations.get("epc")
        if epc_reservation is not None:
            runtime.epc = epc_reservation.details.get("instance")
        self._runtimes[slice_id] = runtime
        if self.config.respect_calendar and not self.calendar.has(request.request_id):
            if window_remaining_s is None:
                if active_remaining_s is not None:
                    window_remaining_s = active_remaining_s
                else:
                    deploy_left = (
                        self.config.deploy_time_s
                        if deploy_remaining_s is None
                        else deploy_remaining_s
                    )
                    window_remaining_s = deploy_left + request.sla.duration_s
            self.calendar.commit(
                request.request_id,
                now,
                now + max(window_remaining_s, 1e-9),
                self.shrunk_demand(request, fraction),
            )
        booking = self.calendar.get(request.request_id)
        self._journal(
            "slice.installed",
            request=request_to_dict(request),
            slice_id=slice_id,
            plmn=plmn_id,
            fraction=fraction,
            reservations={d: r.reservation_id for d, r in reservations.items()},
            window=[booking.start, booking.end] if booking else None,
        )
        network_slice.transition(SliceState.DEPLOYING, now)
        if active_remaining_s is not None:
            network_slice.transition(SliceState.ACTIVE, now)
            self._journal("slice.activated", slice_id=slice_id)
            self.sim.schedule(
                max(active_remaining_s, 0.0),
                lambda: self._expire(slice_id),
                name=f"expire-{slice_id}",
            )
        else:
            self.sim.schedule(
                max(
                    deploy_remaining_s
                    if deploy_remaining_s is not None
                    else self.config.deploy_time_s,
                    0.0,
                ),
                lambda: self._activate(slice_id),
                name=f"activate-{slice_id}",
            )
        self.events.emit(
            now,
            "slice.adopted",
            slice_id=slice_id,
            tenant_id=request.tenant_id,
            state=network_slice.state.value,
        )
        return network_slice

    def restore_advance_booking(
        self,
        request: SliceRequest,
        *,
        start_in_s: float,
        profile: Optional[TrafficProfile] = None,
    ) -> None:
        """Re-promise a journaled advance booking after a restart.

        Unlike :meth:`submit_advance` this performs **no** feasibility
        check — the promise was already made (and charged for) before
        the crash; recovery must honour it, not re-litigate it.
        """
        profile = profile or self.default_profile(request)
        start_time = self.sim.now + max(start_in_s, 0.0)
        fraction = self.cold_start_fraction(request)
        end_time = start_time + request.sla.duration_s + self.config.deploy_time_s
        if self.config.respect_calendar and not self.calendar.has(request.request_id):
            self.calendar.commit(
                request.request_id, start_time, end_time,
                self.shrunk_demand(request, fraction),
            )
        self._pending_advance[request.request_id] = start_time
        self._advance_requests[request.request_id] = request
        self._journal(
            "booking.committed",
            request=request_to_dict(request),
            start_time=start_time,
        )

        def install() -> None:
            self._advance_requests.pop(request.request_id, None)
            if self._pending_advance.pop(request.request_id, None) is None:
                return  # booking was cancelled before its start time
            decision = self.install_admitted(request, profile)
            if not decision.admitted and self.calendar.has(request.request_id):
                self.calendar.release(request.request_id)

        self.sim.schedule_at(start_time, install, name=f"advance-{request.request_id}")

    # ------------------------------------------------------------------
    # Request handling (dashboard "request a slice" button)
    # ------------------------------------------------------------------
    def cold_start_fraction(self, request: SliceRequest) -> float:
        """Overbooking posture for a brand-new slice (no history yet):
        the policy's cold-start answer on the nominal throughput."""
        decision = self.overbooking.decide(
            request.request_id, request.sla.throughput_mbps, forecaster=None
        )
        return decision.fraction

    def cold_start_fractions(self, requests: List[SliceRequest]) -> List[float]:
        """Cold-start overbooking posture for a whole decision window.

        One policy call covers every request, so forecast-driven
        policies run their (shared) quantile math once per window
        instead of once per request.
        """
        decisions = self.overbooking.decide_window(
            [(r.request_id, r.sla.throughput_mbps) for r in requests],
            forecaster=None,
        )
        return [decision.fraction for decision in decisions]

    def shrunk_demand(self, request: SliceRequest, fraction: float) -> ResourceVector:
        """Multi-domain demand with the overbooking shrinkage applied.

        PRBs and transport bandwidth shrink; VMs are not overbookable.
        """
        demand = self.allocator.demand_vector(request)
        return ResourceVector(
            prbs=demand.prbs * fraction,
            mbps=demand.mbps * fraction,
            vcpus=demand.vcpus,
        )

    def submit(self, request: SliceRequest, profile: TrafficProfile) -> AdmissionDecision:
        """Online admission + allocation for one slice request.

        Returns the admission decision; on acceptance the slice is
        ADMITTED immediately and becomes ACTIVE ``deploy_time_s`` later.
        """
        fraction = self.cold_start_fraction(request)
        shrunk = self.shrunk_demand(request, fraction)
        free = self.allocator.free_vector()
        with self.obs.timed("admission", label="sync"):
            decision = self.admission.decide(request, shrunk, free)
        if not decision.admitted:
            return self.reject(request, decision.reason)
        # "Accounting for ... upcoming requests" (paper §2): an immediate
        # slice must not consume capacity promised to advance bookings.
        if self.config.respect_calendar:
            horizon = self.sim.now + request.sla.duration_s + self.config.deploy_time_s
            if not self.calendar.fits(shrunk, self.sim.now, horizon):
                return self.reject(
                    request, "conflicts with advance reservations on the calendar"
                )
        return self.install_admitted(request, profile)

    def submit_advance(
        self,
        request: SliceRequest,
        profile: TrafficProfile,
        start_time: float,
    ) -> AdmissionDecision:
        """Book a slice that should start at a *future* instant.

        Admission checks the resource calendar over the slice's whole
        lifetime (ongoing slices + already-promised bookings); accepted
        bookings are committed to the calendar immediately and installed
        when ``start_time`` arrives.  An install-time allocation failure
        (e.g. a fragmentation race) is booked as a rejection then.

        Raises:
            OrchestratorError: If ``start_time`` is in the past.
        """
        if start_time < self.sim.now:
            raise OrchestratorError(
                f"advance booking must start in the future "
                f"(start={start_time}, now={self.sim.now})"
            )
        fraction = self.cold_start_fraction(request)
        shrunk = self.shrunk_demand(request, fraction)
        end_time = start_time + request.sla.duration_s + self.config.deploy_time_s
        if self.config.respect_calendar:
            if not self.calendar.fits(shrunk, start_time, end_time):
                return self.reject(
                    request, "insufficient projected capacity over the booking window"
                )
            self.calendar.commit(request.request_id, start_time, end_time, shrunk)

        self._pending_advance[request.request_id] = start_time
        self._advance_requests[request.request_id] = request
        self._journal(
            "booking.committed",
            request=request_to_dict(request),
            start_time=start_time,
        )

        def install() -> None:
            self._advance_requests.pop(request.request_id, None)
            if self._pending_advance.pop(request.request_id, None) is None:
                return  # booking was cancelled before its start time
            decision = self.install_admitted(request, profile)
            if not decision.admitted and self.calendar.has(request.request_id):
                self.calendar.release(request.request_id)

        self.sim.schedule_at(start_time, install, name=f"advance-{request.request_id}")
        return AdmissionDecision(
            request_id=request.request_id,
            admitted=True,
            reason=f"booked for t={start_time:.0f}s",
            expected_value=request.price,
        )

    def advance_start_time(self, request_id: str) -> Optional[float]:
        """Start time of a still-pending advance booking (None otherwise)."""
        return self._pending_advance.get(request_id)

    def cancel_advance(self, request_id: str, tenant_id: Optional[str] = None) -> None:
        """Withdraw an advance booking before its start time.

        Frees the calendar window immediately; the already-scheduled
        install event fires harmlessly (it checks the pending record).

        Raises:
            OrchestratorError: If no such booking is pending (unknown
                id, or its install already fired).
        """
        start_time = self._pending_advance.pop(request_id, None)
        if start_time is None:
            raise OrchestratorError(f"no pending advance booking {request_id}")
        self._advance_requests.pop(request_id, None)
        if self.calendar.has(request_id):
            self.calendar.release(request_id)
        self._journal("booking.cancelled", request_id=request_id)
        self.events.emit(
            self.sim.now,
            "booking.cancelled",
            tenant_id=tenant_id,
            booking_id=request_id,
            start_time=start_time,
        )

    def reject(self, request: SliceRequest, reason: str) -> AdmissionDecision:
        """Record a rejection (admission said no, or the broker dropped it)."""
        network_slice = NetworkSlice(request)
        self._all_slices[network_slice.slice_id] = network_slice
        network_slice.transition(SliceState.REJECTED, self.sim.now)
        self.ledger.book_rejection(request, reason, self.sim.now)
        self._journal(
            "slice.rejected",
            request_id=request.request_id,
            slice_id=network_slice.slice_id,
            reason=reason,
        )
        self.events.emit(
            self.sim.now,
            "slice.rejected",
            slice_id=network_slice.slice_id,
            tenant_id=request.tenant_id,
            reason=reason,
        )
        return AdmissionDecision(
            request_id=request.request_id,
            admitted=False,
            reason=reason,
            slice_id=network_slice.slice_id,
        )

    def _book_install_rejection(
        self, network_slice: NetworkSlice, reason: str
    ) -> AdmissionDecision:
        """Bookkeeping for an install that failed after admission said
        yes: free the PLMN (if held), record the rejection, emit the
        event."""
        request = network_slice.request
        if network_slice.plmn is not None:
            self.plmn_pool.release(network_slice.slice_id)
            network_slice.plmn = None
        network_slice.transition(SliceState.REJECTED, self.sim.now)
        self.ledger.book_rejection(request, reason, self.sim.now)
        self._journal(
            "slice.rejected",
            request_id=request.request_id,
            slice_id=network_slice.slice_id,
            reason=reason,
        )
        self.events.emit(
            self.sim.now,
            "slice.rejected",
            slice_id=network_slice.slice_id,
            tenant_id=request.tenant_id,
            reason=reason,
        )
        return AdmissionDecision(
            request_id=request.request_id,
            admitted=False,
            reason=reason,
            slice_id=network_slice.slice_id,
        )

    def _finalize_install(
        self,
        network_slice: NetworkSlice,
        profile: TrafficProfile,
        fraction: float,
        reservations: Dict[str, Reservation],
        span_parent: Any = None,
    ) -> AdmissionDecision:
        """Post-install bookkeeping shared by the sequential and batched
        paths: state transitions, ledger, events, calendar, runtime and
        the deferred activation.  ``span_parent`` (the batched path's
        per-job span context) hangs the journal/event stages of this
        job under its trace; the sequential path passes none and stays
        span-free."""
        obs = self.obs if span_parent is not None else NOOP_OBS
        request = network_slice.request
        network_slice.transition(SliceState.ADMITTED, self.sim.now)
        self.ledger.book_admission(network_slice.slice_id, request)
        with obs.span("event", parent=span_parent):
            self.events.emit(
                self.sim.now,
                "slice.admitted",
                slice_id=network_slice.slice_id,
                tenant_id=request.tenant_id,
                price=request.price,
            )
        # Keep the calendar in sync (advance bookings committed earlier
        # keep their original window).
        if not self.calendar.has(request.request_id):
            self.calendar.commit(
                request.request_id,
                self.sim.now,
                self.sim.now + request.sla.duration_s + self.config.deploy_time_s,
                self.shrunk_demand(request, fraction),
            )
        # WAL: the install is durable from here — a crash after this
        # record must re-adopt the slice, not forfeit it.
        booking = self.calendar.get(request.request_id)
        with obs.span("journal", parent=span_parent):
            self._journal(
                "slice.installed",
                request=request_to_dict(request),
                slice_id=network_slice.slice_id,
                plmn=network_slice.plmn.plmn_id if network_slice.plmn else None,
                fraction=fraction,
                reservations={d: r.reservation_id for d, r in reservations.items()},
                window=[booking.start, booking.end] if booking is not None else None,
            )
        runtime = SliceRuntime(
            network_slice=network_slice,
            profile=profile,
            effective_fraction=fraction,
            reservations=reservations,
        )
        # Contract-clean EPC binding: whatever backend serves the "epc"
        # domain reports its instance (if any) in the reservation.
        epc_reservation = reservations.get("epc")
        if epc_reservation is not None:
            runtime.epc = epc_reservation.details.get("instance")
        if network_slice.allocation is None:
            network_slice.allocation = self._compose_allocation(reservations)
        self._runtimes[network_slice.slice_id] = runtime
        network_slice.transition(SliceState.DEPLOYING, self.sim.now)
        self.sim.schedule(
            self.config.deploy_time_s,
            lambda: self._activate(network_slice.slice_id),
            name=f"activate-{network_slice.slice_id}",
        )
        return AdmissionDecision(
            request_id=request.request_id,
            admitted=True,
            reason="installed",
            expected_value=request.price,
            slice_id=network_slice.slice_id,
        )

    def install_admitted(
        self, request: SliceRequest, profile: TrafficProfile
    ) -> AdmissionDecision:
        """Install a slice whose admission decision was already positive
        (taken by :meth:`submit` or by an external batch broker).

        The install can still fail on PLMN exhaustion or an allocation
        race; such failures are booked as rejections.
        """
        network_slice = NetworkSlice(request)
        self._all_slices[network_slice.slice_id] = network_slice
        fraction = self.cold_start_fraction(request)
        # PLMN mapping (MOCN): a slice cannot exist without an identity.
        try:
            network_slice.plmn = self.plmn_pool.allocate(network_slice.slice_id)
        except PlmnPoolExhausted as exc:
            return self._book_install_rejection(network_slice, str(exc))
        self._journal(
            "install.started",
            request=request_to_dict(request),
            slice_id=network_slice.slice_id,
            plmn=network_slice.plmn.plmn_id,
            fraction=fraction,
        )
        try:
            reservations = self._install_via_drivers(network_slice, fraction)
        except TransactionError as exc:
            return self._book_install_rejection(network_slice, str(exc))
        return self._finalize_install(network_slice, profile, fraction, reservations)

    def enqueue_admitted(
        self,
        request: SliceRequest,
        profile: TrafficProfile,
        on_decision: Optional[Callable[[AdmissionDecision], None]] = None,
    ) -> None:
        """Queue an already-admitted request for the next batched
        install — the monitoring-epoch loop drains the queue through the
        concurrent :class:`~repro.drivers.planner.BatchInstallPlanner`
        instead of installing slice-by-slice.  ``on_decision`` (if any)
        fires with the final install outcome when the batch lands."""
        self._journal("admission.enqueued", request=request_to_dict(request))
        self._admission_queue.append((request, profile, on_decision))

    @property
    def pending_installs(self) -> int:
        """Admitted requests queued for the next batched install."""
        return len(self._admission_queue)

    def _drain_admission_queue(self) -> None:
        """Monitoring-epoch drain: batch-install everything queued."""
        if not self._admission_queue:
            return
        queued, self._admission_queue = self._admission_queue, []
        decisions = self.install_admitted_batch(
            [(request, profile) for request, profile, _ in queued]
        )
        for (_, _, on_decision), decision in zip(queued, decisions):
            if on_decision is not None:
                on_decision(decision)

    def install_admitted_batch(
        self, admissions: List[Tuple[SliceRequest, TrafficProfile]]
    ) -> List[AdmissionDecision]:
        """Install a *batch* of already-admitted slices concurrently.

        Placement planning (PLMN identity, ingress cell, candidate DCs)
        runs sequentially on the calling thread against a point-in-time
        capacity snapshot; the southbound prepare/commit work — where a
        real deployment spends its seconds — then runs through the
        concurrent batch planner.  Two jobs planned onto the same scarce
        resource race like any concurrent installer's would: the loser's
        prepare fails, its job unwinds with zero residue, and the slice
        is booked as rejected (the same contract the aggregate batch
        admission already documents).

        Decisions are returned in submission order; rollback events are
        emitted only for installs that ultimately failed, matching the
        sequential path's deferred-rollback semantics.

        Installs are stall-isolated per job: the planner drives the
        drivers' futures-based lifecycle, so a hung southbound domain
        delays (or, under ``config.install_timeout_s``, cleanly fails)
        only the jobs that touched it — every other job in the batch
        commits in its own latency.
        """
        obs = self.obs
        batch_span = obs.span("install.batch", jobs=len(admissions))
        results: List[Optional[AdmissionDecision]] = [None] * len(admissions)
        jobs: List[InstallJob] = []
        staged: Dict[int, Tuple[NetworkSlice, TrafficProfile, float]] = {}
        job_spans: Dict[int, Any] = {}
        # Every job is planned against one capacity snapshot, so picks
        # must see the load the earlier picks staged (otherwise a burst
        # of winners all pins the same "best" cell and the losers fail
        # at prepare time instead of spreading across the fleet).
        planned_cells: Dict[str, PlannedCellLoad] = {}
        for index, (request, profile) in enumerate(admissions):
            network_slice = NetworkSlice(request)
            self._all_slices[network_slice.slice_id] = network_slice
            job_span = obs.span(
                "install.job",
                parent=batch_span.context,
                slice_id=network_slice.slice_id,
            )
            job_spans[index] = job_span
            # Admission stage: cold-start posture + PLMN identity.
            admission_span = obs.span("admission", parent=job_span.context)
            fraction = self.cold_start_fraction(request)
            try:
                network_slice.plmn = self.plmn_pool.allocate(network_slice.slice_id)
            except PlmnPoolExhausted as exc:
                admission_span.finish("error", error=str(exc))
                job_span.finish("error", error=str(exc))
                results[index] = self._book_install_rejection(network_slice, str(exc))
                continue
            admission_span.finish()
            # Placement stage: cell probe + candidate-DC ranking.
            placement_span = obs.span("placement", parent=job_span.context)
            try:
                attempts = self._plan_install_attempts(
                    network_slice, fraction, planned_cells=planned_cells
                )
            except TransactionError as exc:
                placement_span.finish("error", error=str(exc))
                job_span.finish("error", error=str(exc))
                results[index] = self._book_install_rejection(network_slice, str(exc))
                continue
            placement_span.finish()
            self._journal(
                "install.started",
                request=request_to_dict(request),
                slice_id=network_slice.slice_id,
                plmn=network_slice.plmn.plmn_id,
                fraction=fraction,
            )
            staged[index] = (network_slice, profile, fraction)
            jobs.append(
                InstallJob(
                    slice_id=network_slice.slice_id,
                    attempts=attempts,
                    validate=(
                        lambda reservations, ns=network_slice: self._validate_latency(
                            ns, reservations
                        )
                    ),
                    tag=index,
                    # The job span's context rides through the planner's
                    # state machine so every per-domain prepare/commit
                    # span parents here no matter which completion
                    # thread closes it.
                    span_context=job_span.context,
                )
            )
        for outcome in self.planner.install(jobs):
            index = outcome.job.tag
            network_slice, profile, fraction = staged[index]
            job_span = job_spans[index]
            if outcome.ok:
                results[index] = self._finalize_install(
                    network_slice,
                    profile,
                    fraction,
                    outcome.reservations,
                    span_parent=job_span.context,
                )
                job_span.finish()
            else:
                # Surface the failed install's unwinds on the feed (the
                # planner withheld rollbacks of retried-then-successful
                # attempts, per the deferred-rollback contract).
                for domain, reservation, reason in outcome.rollbacks:
                    self._emit_rollback(domain, reservation, reason)
                results[index] = self._book_install_rejection(
                    network_slice, str(outcome.error)
                )
                job_span.finish("error", error=str(outcome.error))
        self._drain_planner_events()
        batch_span.finish()
        assert all(decision is not None for decision in results)
        return results  # type: ignore[return-value]

    def _plan_install_attempts(
        self,
        network_slice: NetworkSlice,
        fraction: float,
        planned_cells: Optional[Dict[str, PlannedCellLoad]] = None,
    ) -> List[Dict[str, DomainSpec]]:
        """Placement pre-work for one batched install: probe the ingress
        cell, rank candidate DCs, and build one full spec-map attempt
        per candidate (the batch planner re-prepares everything per
        attempt, so no prefix/suffix split is needed).

        Args:
            planned_cells: Shared batch placement ledger; the pick made
                here is recorded into it so later jobs in the same batch
                see the staged load.

        Raises:
            TransactionError: When planning already rules the slice out
                (no cell, no feasible DC).
        """
        request = network_slice.request
        slice_id = network_slice.slice_id
        try:
            demand = self.allocator.demand_vector(request)
        except AllocationError as exc:
            raise TransactionError(exc.domain, exc.message) from exc
        effective_prbs = max(1, round(demand.prbs * fraction))
        enb_id = self.allocator.ran.best_enb_for(
            request.sla.throughput_mbps, effective_prbs, planned=planned_cells
        )
        if enb_id is None:
            raise TransactionError(
                "ran", f"no eNB can host {effective_prbs} PRBs for slice {slice_id}"
            )
        enb_node = self.allocator.ran.enb(enb_id).transport_node
        candidates = self.allocator.candidate_datacenters(request, enb_node)
        if not candidates:
            raise TransactionError(
                "cloud", f"no datacenter satisfies compute + latency for {slice_id}"
            )
        if planned_cells is not None:
            planned_cells.setdefault(enb_id, PlannedCellLoad()).add(effective_prbs)
        return [
            self._install_specs(
                network_slice, fraction, enb_id, enb_node, dc, demand=demand
            )
            for dc in candidates
        ]

    # ------------------------------------------------------------------
    # Southbound driver plumbing
    # ------------------------------------------------------------------
    def _emit_rollback(self, domain: str, reservation: Reservation, reason: str) -> None:
        """Surface a rolled-back domain on the northbound event feed."""
        self.events.emit(
            self.sim.now,
            "driver.rollback",
            slice_id=reservation.slice_id,
            tenant_id=reservation.spec.tenant_id,
            domain=domain,
            reason=reason,
        )

    #: Domains whose spec depends on the candidate datacenter; they are
    #: (re-)prepared inside the per-candidate loop, everything before
    #: them is prepared once.
    _DC_DEPENDENT_DOMAINS = ("transport", "cloud", "epc")

    def _install_specs(
        self,
        network_slice: NetworkSlice,
        fraction: float,
        enb_id: str,
        enb_node: str,
        dc=None,
        demand=None,
        domains: Optional[List[str]] = None,
    ) -> Dict[str, DomainSpec]:
        """One :class:`DomainSpec` per domain (default: every registered
        one) for one install attempt, pinned to the probed cell and,
        when given, one candidate DC — DC-dependent attributes stay
        empty otherwise."""
        request = network_slice.request
        if demand is None:
            demand = self.allocator.demand_vector(request)
        if domains is None:
            domains = self.registry.domains()
        common = dict(
            slice_id=network_slice.slice_id,
            tenant_id=request.tenant_id,
            throughput_mbps=request.sla.throughput_mbps,
            max_latency_ms=request.sla.max_latency_ms,
            duration_s=request.sla.duration_s,
            effective_fraction=fraction,
            vcpus=demand.vcpus,
        )
        plmn = network_slice.plmn
        known = {
            "ran": {"plmn": plmn, "enb_id": enb_id},
            "epc": {"plmn_id": plmn.plmn_id if plmn else None},
        }
        if dc is not None:
            known["transport"] = {
                "src": enb_node,
                "dst": dc.gateway_node,
                "max_delay_ms": self.allocator.transport_budget_ms(request, dc),
                "plmn_id": plmn.plmn_id if plmn else None,
            }
            known["cloud"] = {"dc_id": dc.dc_id}
        return {
            domain: DomainSpec(attributes=known.get(domain, {}), **common)
            for domain in domains
        }

    def _validate_latency(
        self, network_slice: NetworkSlice, reservations: Dict[str, Reservation]
    ) -> None:
        """Never commit a latency-violating end-to-end allocation."""
        allocation = self._compose_allocation(reservations)
        if allocation is None:
            return
        bound = network_slice.request.sla.max_latency_ms
        if allocation.total_latency_ms > bound + 1e-9:
            raise DriverError(
                "orchestrator",
                f"allocation latency {allocation.total_latency_ms:.2f} ms "
                f"exceeds SLA {bound:.2f} ms",
            )

    @staticmethod
    def _compose_allocation(
        reservations: Dict[str, Reservation]
    ) -> Optional[EndToEndAllocation]:
        """The legacy end-to-end view, when all three data-plane domains
        participated (custom registries may omit some)."""
        try:
            return EndToEndAllocation(
                ran=reservations["ran"].details["allocation"],
                transport=reservations["transport"].details["allocation"],
                cloud=reservations["cloud"].details["allocation"],
            )
        except KeyError:
            return None

    def _install_via_drivers(
        self, network_slice: NetworkSlice, fraction: float
    ) -> Dict[str, Reservation]:
        """Two-phase install across every registered domain.

        The ingress cell is probed first (it pins the transport source
        node).  Domains whose spec is independent of the datacenter
        choice — RAN and any extra domains registered before transport —
        are prepared exactly *once*; the DC-dependent tail (transport,
        cloud, EPC, later extras) then runs one prepare→validate→commit
        transaction per candidate DC.  A failed attempt unwinds its own
        segment (rollback events land on the feed) before the next
        candidate is tried; if every candidate fails, the prefix is
        rolled back too — nothing is left reserved anywhere.

        Raises:
            TransactionError: When no candidate DC yields a committed
                end-to-end install.
        """
        request = network_slice.request
        slice_id = network_slice.slice_id
        try:
            demand = self.allocator.demand_vector(request)
        except AllocationError as exc:
            # Planning failure (e.g. an empty RAN fleet) books a
            # rejection like any other install failure.
            raise TransactionError(exc.domain, exc.message) from exc
        effective_prbs = max(1, round(demand.prbs * fraction))
        enb_id = self.allocator.ran.best_enb_for(
            request.sla.throughput_mbps, effective_prbs
        )
        if enb_id is None:
            raise TransactionError(
                "ran", f"no eNB can host {effective_prbs} PRBs for slice {slice_id}"
            )
        enb_node = self.allocator.ran.enb(enb_id).transport_node
        candidates = self.allocator.candidate_datacenters(request, enb_node)
        if not candidates:
            raise TransactionError(
                "cloud", f"no datacenter satisfies compute + latency for {slice_id}"
            )
        domains = self.registry.domains()
        split = 0
        while split < len(domains) and domains[split] not in self._DC_DEPENDENT_DOMAINS:
            split += 1
        prefix_domains, suffix_domains = domains[:split], domains[split:]
        # Rollback events buffer until the install's fate is known: a
        # retried-then-successful install must not put driver.rollback
        # noise on the feed (consumers treat it as an install failure).
        deferred_rollbacks: List[Tuple[str, Reservation, str]] = []

        def buffer_rollback(domain: str, reservation: Reservation, reason: str) -> None:
            deferred_rollbacks.append((domain, reservation, reason))

        def flush_rollbacks() -> None:
            for domain, reservation, reason in deferred_rollbacks:
                self._emit_rollback(domain, reservation, reason)

        unwinder = InstallTransaction(self.registry, on_rollback=buffer_rollback)
        # --- Prepare the DC-independent prefix once -------------------
        prefix_specs = self._install_specs(
            network_slice, fraction, enb_id, enb_node, demand=demand,
            domains=prefix_domains,
        )
        try:
            prefix_prepared = unwinder.prepare_domains(prefix_domains, prefix_specs)
        except TransactionError:
            flush_rollbacks()
            raise
        prefix_reservations = {r.domain: r for _, r in prefix_prepared}
        # --- Try each candidate DC over the dependent tail ------------
        sub_registry = DriverRegistry([self.registry.get(d) for d in suffix_domains])
        transaction = InstallTransaction(sub_registry, on_rollback=buffer_rollback)
        last_error: Optional[TransactionError] = None
        for dc in candidates:
            sub_specs = self._install_specs(
                network_slice, fraction, enb_id, enb_node, dc, demand=demand,
                domains=suffix_domains,
            )
            try:
                suffix_reservations = transaction.run(
                    sub_specs,
                    validate=lambda res: self._validate_latency(
                        network_slice, {**prefix_reservations, **res}
                    ),
                )
            except TransactionError as exc:
                last_error = exc
                continue
            try:
                for driver, reservation in prefix_prepared:
                    driver.commit(reservation)
            except Exception as exc:  # any failure must unwind
                suffix_pairs = [
                    (sub_registry.get(d), suffix_reservations[d])
                    for d in suffix_domains
                ]
                # Install order was prefix-then-suffix; unwind reverses it.
                unwinder.unwind(prefix_prepared + suffix_pairs, str(exc))
                flush_rollbacks()
                raise TransactionError(
                    getattr(exc, "domain", "orchestrator"),
                    getattr(exc, "message", str(exc)),
                ) from exc
            reservations = {**prefix_reservations, **suffix_reservations}
            network_slice.allocation = self._compose_allocation(reservations)
            return reservations
        unwinder.unwind(prefix_prepared, str(last_error))
        flush_rollbacks()
        assert last_error is not None
        raise last_error

    def _release_domains(self, network_slice: NetworkSlice) -> List[str]:
        """Free the slice in every domain, newest-registered first.

        Domains holding nothing are skipped silently (idempotent-ish);
        a *real* backend release failure is surfaced on the metrics and
        the event feed — the driver keeps the reservation COMMITTED, the
        failing domains are returned, and the monitoring loop retries
        them every epoch until the capacity is actually freed.
        """
        slice_id = network_slice.slice_id
        failed: List[str] = []
        for driver in reversed(self.registry.drivers()):
            try:
                driver.release(slice_id)
            except DriverAbsentError:
                continue
            except DriverError as exc:
                failed.append(driver.domain)
                self.metrics.record(
                    self.sim.now, "driver.release_failed", 1.0, label=slice_id
                )
                self.events.emit(
                    self.sim.now,
                    "driver.release_failed",
                    slice_id=slice_id,
                    tenant_id=network_slice.request.tenant_id,
                    domain=driver.domain,
                    reason=str(exc),
                )
                continue
        network_slice.allocation = None
        return failed

    def _teardown_slice(self, network_slice: NetworkSlice) -> None:
        """Release every domain; free the PLMN only once all succeed.

        A stuck backend release keeps the PLMN out of the pool — handing
        it to a new slice while the old backend still serves under it
        would put two slices on one PLMN.  The stuck domains are retried
        each monitoring epoch.
        """
        slice_id = network_slice.slice_id
        failed = self._release_domains(network_slice)
        if failed:
            self._stuck_releases[slice_id] = (network_slice, failed)
        else:
            self.plmn_pool.release(slice_id)

    def _retry_stuck_releases(self) -> None:
        """Monitoring-epoch sweep over releases a backend refused."""
        for slice_id in list(self._stuck_releases):
            network_slice, domains = self._stuck_releases[slice_id]
            remaining: List[str] = []
            for domain in domains:
                if domain not in self.registry:
                    continue  # driver unregistered — nothing left to free
                try:
                    self.registry.get(domain).release(slice_id)
                except DriverAbsentError:
                    continue  # freed out-of-band
                except DriverError:
                    remaining.append(domain)
            if remaining:
                self._stuck_releases[slice_id] = (network_slice, remaining)
                continue
            del self._stuck_releases[slice_id]
            self.plmn_pool.release(slice_id)
            self.events.emit(
                self.sim.now,
                "driver.release_recovered",
                slice_id=slice_id,
                tenant_id=network_slice.request.tenant_id,
                domains=list(domains),
            )

    def _resize_domains(
        self,
        runtime: SliceRuntime,
        new_throughput_mbps: float,
        new_fraction: float,
    ) -> None:
        """Re-dimension the slice in every resize-capable domain.

        Applied in registry order with compensation: a failing domain
        rolls the already-resized ones back to their previous spec, so
        the domains never disagree about the slice's size.

        Raises:
            DriverError: When some domain cannot fit the new size (after
                compensation).
        """
        network_slice = runtime.network_slice
        slice_id = network_slice.slice_id
        if not 0.0 < new_fraction <= 1.0:
            raise DriverError(
                "orchestrator",
                f"effective fraction must be in (0, 1], got {new_fraction}",
            )
        if new_throughput_mbps <= 0:
            raise DriverError(
                "orchestrator",
                f"throughput must be positive, got {new_throughput_mbps}",
            )
        resized = []  # [(driver, previous spec)] for compensation
        for driver in self.registry.drivers():
            if not driver.capabilities().supports_resize:
                continue
            reservation = driver.reservation_of(slice_id)
            if reservation is None:
                continue
            old_spec = reservation.spec
            new_spec = DomainSpec(
                slice_id=slice_id,
                tenant_id=network_slice.request.tenant_id,
                throughput_mbps=new_throughput_mbps,
                max_latency_ms=network_slice.request.sla.max_latency_ms,
                duration_s=network_slice.request.sla.duration_s,
                effective_fraction=new_fraction,
                vcpus=old_spec.vcpus,
                attributes=dict(old_spec.attributes),
            )
            try:
                driver.resize(slice_id, new_spec)
                resized.append((driver, old_spec))
            except DriverError:
                # Compensate: restore the previous size everywhere.
                for done, prev_spec in reversed(resized):
                    try:
                        done.resize(slice_id, prev_spec)
                    except DriverError:  # pragma: no cover - best effort
                        continue
                raise
        if not resized:
            # No domain actually re-dimensioned anything — succeeding
            # here would rewrite the SLA/calendar with no backing change
            # (the legacy allocator raised in this situation too).
            raise DriverError(
                "orchestrator", f"slice {slice_id} is not allocated"
            )
        # Refresh the composed end-to-end view from the live reservations.
        reservations = {}
        for driver in self.registry.drivers():
            reservation = driver.reservation_of(slice_id)
            if reservation is not None:
                reservations[driver.domain] = reservation
        runtime.reservations = reservations
        composed = self._compose_allocation(reservations)
        if composed is not None:
            network_slice.allocation = composed

    def _activate(self, slice_id: str) -> None:
        runtime = self._runtimes.get(slice_id)
        if runtime is None:
            return
        network_slice = runtime.network_slice
        if network_slice.state is not SliceState.DEPLOYING:
            return
        network_slice.transition(SliceState.ACTIVE, self.sim.now)
        self._journal("slice.activated", slice_id=slice_id)
        self.events.emit(
            self.sim.now,
            "slice.activated",
            slice_id=slice_id,
            tenant_id=network_slice.request.tenant_id,
        )
        if self.config.simulate_ues:
            self._spawn_ues(runtime)
        # Expiry is measured from activation (the SLA's duration).
        self.sim.schedule(
            network_slice.request.sla.duration_s,
            lambda: self._expire(slice_id),
            name=f"expire-{slice_id}",
        )

    def _spawn_ues(self, runtime: SliceRuntime) -> None:
        """Create the slice's vEPC binding + UE population and attach them."""
        network_slice = runtime.network_slice
        slice_id = network_slice.slice_id
        if network_slice.plmn is None or network_slice.allocation is None:
            return
        if runtime.epc is None:
            if "epc" in runtime.reservations:
                # An EPC domain owns the core but exposed no instance
                # (custom backend) — never bind a duplicate inline.
                return
            # No EPC domain in the registry — bind the instance inline.
            stack = self.allocator.cloud.stack_of(slice_id)
            if stack is None:
                return
            runtime.epc = EpcInstance(slice_id, network_slice.plmn.plmn_id, stack)
        enb = self.allocator.ran.enb(network_slice.allocation.ran.enb_id)
        rng = self.streams.stream(f"ues-{slice_id}")
        n_ues = min(network_slice.request.n_users, self.config.max_ues_per_slice)
        procedure = AttachProcedure(
            enb, runtime.epc, network_slice.allocation.transport.delay_ms
        )
        for _ in range(n_ues):
            ue = UserEquipment(network_slice.plmn, slice_id, rng=rng)
            runtime.epc.provision_subscriber(ue.imsi)
            enb.register_ue(ue)
            runtime.ues.append(ue)
            outcome = procedure.attach(ue)
            self.metrics.record(
                self.sim.now,
                "ue.attach_latency_ms",
                outcome.latency_ms if outcome.success else -1.0,
                label=slice_id,
            )

    def terminate_early(self, slice_id: str, refund: bool = True) -> float:
        """Tenant-initiated teardown of an ACTIVE slice.

        Optionally refunds the unused fraction of the slice's price
        (pro-rata on remaining duration).  Returns the refund amount.

        Raises:
            OrchestratorError: If the slice is not ACTIVE.
        """
        runtime = self._runtimes.get(slice_id)
        if runtime is None or runtime.network_slice.state is not SliceState.ACTIVE:
            raise OrchestratorError(f"slice {slice_id} is not active")
        network_slice = runtime.network_slice
        amount = 0.0
        if refund and network_slice.active_at is not None:
            served = self.sim.now - network_slice.active_at
            total = network_slice.request.sla.duration_s
            unused = max(0.0, 1.0 - served / total)
            amount = network_slice.request.price * unused
            self.ledger.book_refund(slice_id, amount)
        self._expire(slice_id)
        return amount

    def cancel(self, slice_id: str, refund: bool = True) -> float:
        """Tenant-initiated cancellation of a slice that is not yet ACTIVE.

        An ADMITTED/DEPLOYING slice has committed resources but serves no
        traffic yet, so cancelling releases everything and (optionally)
        refunds the full price.  The already-scheduled activation event
        fires harmlessly: ``_activate`` ignores slices whose state left
        DEPLOYING.  Returns the refund amount.

        Raises:
            OrchestratorError: If the slice is unknown or already ACTIVE
                (use :meth:`terminate_early`) or terminal.
        """
        runtime = self._runtimes.get(slice_id)
        if runtime is None or runtime.network_slice.state not in (
            SliceState.ADMITTED,
            SliceState.DEPLOYING,
        ):
            raise OrchestratorError(f"slice {slice_id} is not pending activation")
        self._runtimes.pop(slice_id)
        network_slice = runtime.network_slice
        self._teardown_slice(network_slice)
        if self.calendar.has(network_slice.request.request_id):
            self.calendar.release(network_slice.request.request_id)
        amount = 0.0
        if refund:
            amount = network_slice.request.price
            self.ledger.book_refund(slice_id, amount)
        network_slice.transition(SliceState.CANCELLED, self.sim.now)
        self._journal("slice.cancelled", slice_id=slice_id)
        self.events.emit(
            self.sim.now,
            "slice.cancelled",
            slice_id=slice_id,
            tenant_id=network_slice.request.tenant_id,
            refund=amount,
        )
        return amount

    def _expire(self, slice_id: str) -> None:
        runtime = self._runtimes.pop(slice_id, None)
        if runtime is None:
            return
        network_slice = runtime.network_slice
        if network_slice.state is not SliceState.ACTIVE:
            return
        for ue in runtime.ues:
            if ue.attached:
                ue.detach()
        self._teardown_slice(network_slice)
        if runtime.epc is not None and runtime.epc.running:
            # Inline-bound instance (no EPC driver released it above).
            runtime.epc.shutdown()
        if self.calendar.has(network_slice.request.request_id):
            self.calendar.release(network_slice.request.request_id)
        network_slice.transition(SliceState.EXPIRED, self.sim.now)
        self._journal("slice.expired", slice_id=slice_id)
        self.events.emit(
            self.sim.now,
            "slice.expired",
            slice_id=slice_id,
            tenant_id=network_slice.request.tenant_id,
            violation_epochs=network_slice.violation_epochs,
            served_epochs=network_slice.served_epochs,
        )

    def what_if(self, request: SliceRequest) -> dict:
        """Evaluate a hypothetical request without committing anything.

        The demo dashboard "checks the infrastructure resources
        availability in each domain" before a tenant confirms; this is
        that probe.  Returns a per-domain feasibility report plus the
        overall admission verdict the request would receive right now.
        """
        fraction = self.cold_start_fraction(request)
        shrunk = self.shrunk_demand(request, fraction)
        free = self.allocator.free_vector()
        report: dict = {
            "request_id": request.request_id,
            "effective_fraction": fraction,
            "demand": {"prbs": shrunk.prbs, "mbps": shrunk.mbps, "vcpus": shrunk.vcpus},
        }
        # Per-domain availability.
        effective_prbs = max(1, round(shrunk.prbs))
        enb_id = self.allocator.ran.best_enb_for(
            request.sla.throughput_mbps, effective_prbs
        )
        report["ran"] = {"feasible": enb_id is not None, "enb": enb_id}
        candidate_dcs: list = []
        if enb_id is not None:
            enb_node = self.allocator.ran.enb(enb_id).transport_node
            candidate_dcs = self.allocator.candidate_datacenters(request, enb_node)
        report["cloud"] = {
            "feasible": bool(candidate_dcs),
            "candidate_dcs": [dc.dc_id for dc in candidate_dcs],
        }
        report["transport"] = {"feasible": bool(candidate_dcs)}
        decision = self.admission.decide(request, shrunk, free)
        calendar_ok = True
        if self.config.respect_calendar:
            horizon = self.sim.now + request.sla.duration_s + self.config.deploy_time_s
            calendar_ok = self.calendar.fits(shrunk, self.sim.now, horizon)
        report["calendar"] = {"feasible": calendar_ok}
        report["would_admit"] = bool(
            decision.admitted and candidate_dcs and calendar_ok
            and self.plmn_pool.available > 0
        )
        report["plmn_available"] = self.plmn_pool.available
        return report

    def modify_slice(self, slice_id: str, new_throughput_mbps: float) -> AdmissionDecision:
        """Tenant-requested scaling of an ACTIVE slice's throughput SLA.

        On success the slice keeps its cell, path, vEPC and PLMN; only
        the reservations (and the tenant's traffic profile peak) change.
        The price is *not* re-negotiated — pricing policy is out of the
        demo's scope.

        Returns:
            An admission-style decision (admitted=False if the grow does
            not fit; the slice then continues unchanged).
        """
        runtime = self._runtimes.get(slice_id)
        if runtime is None or runtime.network_slice.state is not SliceState.ACTIVE:
            return AdmissionDecision(
                request_id=slice_id,
                admitted=False,
                reason="slice not active",
            )
        network_slice = runtime.network_slice
        try:
            self._resize_domains(
                runtime, new_throughput_mbps, runtime.effective_fraction
            )
        except DriverError as exc:
            return AdmissionDecision(
                request_id=slice_id, admitted=False, reason=str(exc)
            )
        # Update the SLA (frozen dataclass → replace) and the profile peak.
        from repro.core.slices import SLA

        old_sla = network_slice.request.sla
        network_slice.request.sla = SLA(
            throughput_mbps=new_throughput_mbps,
            max_latency_ms=old_sla.max_latency_ms,
            duration_s=old_sla.duration_s,
            availability=old_sla.availability,
        )
        runtime.profile.peak_mbps = new_throughput_mbps
        if self.calendar.has(network_slice.request.request_id):
            self.calendar.update_demand(
                network_slice.request.request_id,
                self.shrunk_demand(network_slice.request, runtime.effective_fraction),
            )
        self.metrics.record(
            self.sim.now, "slice.modified_mbps", new_throughput_mbps, label=slice_id
        )
        self._journal(
            "slice.modified", slice_id=slice_id, throughput_mbps=new_throughput_mbps
        )
        return AdmissionDecision(
            request_id=slice_id,
            admitted=True,
            reason=f"rescaled to {new_throughput_mbps:.1f} Mb/s",
        )

    # ------------------------------------------------------------------
    # Monitoring + reconfiguration loop
    # ------------------------------------------------------------------
    def _monitoring_epoch(self) -> None:
        obs = self.obs
        epoch_started = perf_counter() if obs.enabled else None
        if epoch_started is not None:
            obs.gauge_set("queue.pending_installs", float(len(self._admission_queue)))
            obs.gauge_set("queue.stuck_releases", float(len(self._stuck_releases)))
        self._epoch_counter += 1
        now = self.sim.now
        # Leader lease first: journaling anything after losing the
        # shard would interleave a deposed leader's records with the
        # promoted standby's WAL.
        if self.lease is not None and not self.lease.heartbeat():
            self.store.close()  # fenced: same semantics as a crash
            self.events.emit(
                now, "lease.fenced", shard_id=self.config.shard_id
            )
            self.lease = None
        # Durable heartbeat: recovery rebases lifecycle clocks against
        # the newest journaled time, so an idle control plane must
        # still bound its crash-time estimate to one epoch.
        self._journal("clock.tick", epoch=self._epoch_counter)
        # Fleet-scale installs: drain everything admitted since the last
        # epoch through the concurrent batch planner in one go.
        self._drain_admission_queue()
        # Late stragglers compensated since the last epoch surface as
        # events now, on this thread.
        self._drain_planner_events()
        if self._stuck_releases:
            self._retry_stuck_releases()
        active = {
            sid: rt
            for sid, rt in self._runtimes.items()
            if rt.network_slice.state is SliceState.ACTIVE
        }
        if self.config.self_healing:
            self._heal_paths(active)
        rng = self.streams.stream("demand-noise")
        demands: Dict[str, float] = {}
        priorities: Dict[str, int] = {}
        for slice_id, runtime in active.items():
            demands[slice_id] = runtime.profile.demand(now, rng)
            priorities[slice_id] = runtime.network_slice.request.priority
            runtime.last_demand_mbps = demands[slice_id]
        delivered_ran = (
            self.allocator.ran.serve_epoch(demands, priorities=priorities)
            if demands
            else {}
        )
        for slice_id, runtime in active.items():
            network_slice = runtime.network_slice
            demand = demands[slice_id]
            delivered = delivered_ran.get(slice_id, 0.0)
            delivered = min(delivered, self._transport_cap_mbps(runtime, demand))
            runtime.last_delivered_mbps = delivered
            nominal = network_slice.request.sla.throughput_mbps
            violated = self.sla_monitor.check_epoch(slice_id, demand, delivered, nominal)
            network_slice.record_epoch(violated)
            if violated:
                self.ledger.book_penalty(slice_id, network_slice.request.penalty_rate)
                self.events.emit(
                    now,
                    "sla.violation",
                    slice_id=slice_id,
                    tenant_id=network_slice.request.tenant_id,
                    demand_mbps=float(demand),
                    delivered_mbps=float(delivered),
                    penalty=network_slice.request.penalty_rate,
                )
            if isinstance(self.overbooking, AdaptiveOverbooking):
                self.overbooking.observe(violated)
            self.collector.record_slice_epoch(now, slice_id, demand, delivered, violated)
        self.collector.collect_domains(now)
        ran_util = self.allocator.ran.utilization()
        self.gain_tracker.record(
            now, ran_util["nominal_reserved"], max(1, ran_util["total_prbs"])
        )
        if self._epoch_counter % self.config.reconfig_every_epochs == 0:
            self.calendar.prune_before(now)
            self._reconfigure(active)
        # Durable store hygiene: once enough churn accumulated past the
        # latest snapshot, checkpoint + compact so recovery stays fast.
        if self.store.should_checkpoint():
            self.checkpoint()
        if epoch_started is not None:
            obs.observe(
                "orchestrator.epoch", (perf_counter() - epoch_started) * 1000.0
            )

    def _heal_paths(self, active: Dict[str, SliceRuntime]) -> None:
        """Attempt re-routing, via any repair-capable driver (transport
        in the default wiring), for slices whose domain reports ill."""
        healers = [
            d for d in self.registry.drivers() if d.capabilities().supports_repair
        ]
        if not healers:
            return
        for slice_id, runtime in active.items():
            allocation = runtime.network_slice.allocation
            if allocation is None:
                continue
            for driver in healers:
                try:
                    healthy = driver.health(slice_id).get("healthy", True)
                except DriverAbsentError:
                    continue  # slice not installed in this domain — benign
                except DriverError:
                    # A real health-check failure must not pass silently.
                    self.metrics.record(
                        self.sim.now, "slice.repair_failed", 1.0, label=slice_id
                    )
                    continue
                if healthy:
                    continue
                try:
                    repaired = driver.repair(slice_id)
                except DriverError:
                    # No feasible detour right now; the slice will violate
                    # its SLA until a link recovers — exactly the penalty
                    # the overbooking ledger accounts for.
                    self.metrics.record(
                        self.sim.now, "slice.repair_failed", 1.0, label=slice_id
                    )
                    continue
                new_transport = repaired.details.get("allocation")
                if driver.domain == "transport" and new_transport is not None:
                    runtime.network_slice.allocation = EndToEndAllocation(
                        ran=allocation.ran,
                        transport=new_transport,
                        cloud=allocation.cloud,
                    )
                self.metrics.record(
                    self.sim.now, "slice.path_repaired", 1.0, label=slice_id
                )
                self.events.emit(
                    self.sim.now,
                    "slice.path_repaired",
                    slice_id=slice_id,
                    tenant_id=runtime.network_slice.request.tenant_id,
                )

    def _transport_cap_mbps(self, runtime: SliceRuntime, demand: float) -> float:
        """Throughput ceiling the transport path imposes this epoch.

        A path traversing a failed link delivers nothing.  Otherwise the
        slice is always entitled to its effective reservation; beyond
        it, it may borrow the bottleneck link's residual (unused,
        never-reserved) capacity.  Borrowed residual is not contended
        between slices within one epoch — an approximation that slightly
        favours transport, keeping the RAN the binding domain as in the
        demo testbed.
        """
        allocation = runtime.network_slice.allocation
        if allocation is None:
            return 0.0
        path = allocation.transport.path
        if not path.link_ids:
            return float("inf")
        topo = self.allocator.transport.topology
        if any(not topo.link(lid).up for lid in path.link_ids):
            return 0.0
        residual = min(topo.link(lid).residual_mbps for lid in path.link_ids)
        return allocation.transport.effective_mbps + max(0.0, residual)

    def _reconfigure(self, active: Dict[str, SliceRuntime]) -> None:
        """Refit forecasters and resize effective reservations.

        This is the "dynamic configuration solution that maximizes the
        statistical multiplexing of network slices resources": slices
        with enough history get their commitment shrunk to the
        forecast's safe level; slices trending up are grown back toward
        nominal (when capacity allows).
        """
        for slice_id, runtime in active.items():
            history = self.collector.demand_history(slice_id)
            if len(history) < self.config.min_history_for_forecast:
                continue
            if runtime.forecaster is None:
                runtime.forecaster = self.forecaster_factory()
            tail = history.tail(self.config.forecast_history_epochs)
            try:
                runtime.forecaster.fit(tail)
            except ForecastError:
                continue
            nominal = runtime.network_slice.request.sla.throughput_mbps
            decision = self.overbooking.decide(
                slice_id, nominal, forecaster=runtime.forecaster
            )
            new_fraction = decision.fraction
            if abs(new_fraction - runtime.effective_fraction) < 0.02:
                continue
            try:
                old_fraction = runtime.effective_fraction
                self._resize_domains(
                    runtime,
                    runtime.network_slice.request.sla.throughput_mbps,
                    new_fraction,
                )
                runtime.effective_fraction = new_fraction
                self._journal(
                    "slice.reconfigured", slice_id=slice_id, fraction=new_fraction
                )
                self.metrics.record(
                    self.sim.now, "slice.effective_fraction", new_fraction, label=slice_id
                )
                self.events.emit(
                    self.sim.now,
                    "slice.reconfigured",
                    slice_id=slice_id,
                    tenant_id=runtime.network_slice.request.tenant_id,
                    old_fraction=old_fraction,
                    new_fraction=new_fraction,
                )
                # Keep the calendar booking in step with the shrunk
                # commitment, so admission sees the freed capacity.
                request = runtime.network_slice.request
                if self.calendar.has(request.request_id):
                    self.calendar.update_demand(
                        request.request_id, self.shrunk_demand(request, new_fraction)
                    )
            except DriverError:
                # Growing back may not fit if newcomers took the space —
                # the overbooking risk surfaces as SLA violations instead.
                continue

    # ------------------------------------------------------------------
    # Introspection (dashboard + tests)
    # ------------------------------------------------------------------
    def slice(self, slice_id: str) -> NetworkSlice:
        """Lookup any slice ever submitted.

        Raises:
            OrchestratorError: If unknown.
        """
        try:
            return self._all_slices[slice_id]
        except KeyError:
            raise OrchestratorError(f"unknown slice {slice_id}") from None

    def active_slices(self) -> List[NetworkSlice]:
        """Slices currently ACTIVE."""
        return [
            rt.network_slice
            for rt in self._runtimes.values()
            if rt.network_slice.state is SliceState.ACTIVE
        ]

    def live_slices(self) -> List[NetworkSlice]:
        """Slices currently holding resources (ADMITTED/DEPLOYING/ACTIVE) —
        O(live), unlike :meth:`all_slices` which scans history."""
        return [rt.network_slice for rt in self._runtimes.values()]

    def has_slice(self, slice_id: str) -> bool:
        """Whether a slice record (any state) exists — O(1)."""
        return slice_id in self._all_slices

    def runtime(self, slice_id: str) -> Optional[SliceRuntime]:
        """Live runtime of an installed slice (None once expired)."""
        return self._runtimes.get(slice_id)

    def all_slices(self) -> List[NetworkSlice]:
        """Every slice ever submitted, in submission order."""
        return list(self._all_slices.values())

    def snapshot(self) -> dict:
        """Dashboard-ready state snapshot."""
        ran_util = self.allocator.ran.utilization()
        transport_util = self.allocator.transport.utilization()
        cloud_util = self.allocator.cloud.utilization()
        return {
            "time": self.sim.now,
            "slices": [s.to_dict() for s in self._all_slices.values()],
            "active": len(self.active_slices()),
            "ledger": self.ledger.summary(),
            "violation_rate": self.sla_monitor.violation_rate(),
            "multiplexing_gain": self.gain_tracker.gain(
                ran_util["nominal_reserved"], max(1, ran_util["total_prbs"])
            ),
            "southbound": {
                "domains": self.registry.domains(),
                "capabilities": self.registry.capabilities(),
                "planner": {
                    "batches_run": self.planner.batches_run,
                    "jobs_installed": self.planner.jobs_installed,
                    "jobs_failed": self.planner.jobs_failed,
                    "ops_timed_out": self.planner.ops_timed_out,
                    "ops_compensated": self.planner.ops_compensated,
                    "pending_installs": self.pending_installs,
                },
            },
            "durability": self.store.status(),
            "observability": self.obs.status(),
            "domains": {
                "ran": ran_util,
                "transport": {
                    "total_capacity_mbps": transport_util["total_capacity_mbps"],
                    "effective_reserved_mbps": transport_util["effective_reserved_mbps"],
                    "nominal_reserved_mbps": transport_util["nominal_reserved_mbps"],
                    "active_paths": transport_util["active_paths"],
                },
                "cloud": cloud_util,
            },
        }


__all__ = [
    "Orchestrator",
    "OrchestratorConfig",
    "OrchestratorError",
    "SliceRuntime",
]
