"""Revenue and penalty accounting.

The demo dashboard "shows the current gains vs. penalties when multiple
network slices are running"; :class:`RevenueLedger` is the book those
numbers come from.  Every admission books the slice's price, every SLA
violation epoch books a penalty, and every rejection books the revenue
left on the table (opportunity cost, reported but not subtracted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.slices import SliceRequest


class LedgerError(RuntimeError):
    """Raised on double-booking or unknown slices."""


@dataclass
class LedgerEntry:
    """Per-slice account.

    Attributes:
        slice_id: The slice this account belongs to.
        price: Revenue booked at admission.
        penalties: Total penalties accrued so far.
        violation_epochs: Number of penalized epochs.
    """

    slice_id: str
    price: float
    penalties: float = 0.0
    violation_epochs: int = 0

    @property
    def net(self) -> float:
        """Price minus penalties for this slice."""
        return self.price - self.penalties


@dataclass
class RejectionRecord:
    """One rejected request (opportunity-cost reporting)."""

    request_id: str
    price: float
    reason: str
    at_time: float


class UtilizationPricer:
    """Congestion pricing: quote multipliers from current utilization.

    The demo dashboard lets the tenant state "the price willing to be
    paid"; a production broker would *quote* instead.  This pricer
    implements the standard convex congestion curve: the multiplier is
    ``1 + slope × utilization^exponent``, so quotes stay near list price
    on an idle network and climb steeply as it fills — making the
    revenue-max admission policies self-reinforcing under load.
    """

    def __init__(
        self,
        base_rate_per_mbps_hour: float = 1.0,
        slope: float = 2.0,
        exponent: float = 2.0,
    ) -> None:
        if base_rate_per_mbps_hour <= 0:
            raise LedgerError(
                f"base rate must be positive, got {base_rate_per_mbps_hour}"
            )
        if slope < 0:
            raise LedgerError(f"slope must be non-negative, got {slope}")
        if exponent <= 0:
            raise LedgerError(f"exponent must be positive, got {exponent}")
        self.base_rate = float(base_rate_per_mbps_hour)
        self.slope = float(slope)
        self.exponent = float(exponent)

    def multiplier(self, utilization: float) -> float:
        """Price multiplier at a utilization level (clipped to [0, 1])."""
        u = min(1.0, max(0.0, utilization))
        return 1.0 + self.slope * (u**self.exponent)

    def quote(
        self, throughput_mbps: float, duration_s: float, utilization: float
    ) -> float:
        """Quoted price for a slice at the current utilization.

        Raises:
            LedgerError: On non-positive throughput or duration.
        """
        if throughput_mbps <= 0 or duration_s <= 0:
            raise LedgerError("throughput and duration must be positive")
        hours = duration_s / 3_600.0
        return (
            self.base_rate * throughput_mbps * hours * self.multiplier(utilization)
        )


class RevenueLedger:
    """Account book for admissions, penalties and rejections."""

    def __init__(self) -> None:
        self._entries: Dict[str, LedgerEntry] = {}
        self._rejections: List[RejectionRecord] = []

    # ------------------------------------------------------------------
    # Booking
    # ------------------------------------------------------------------
    def book_admission(self, slice_id: str, request: SliceRequest) -> LedgerEntry:
        """Open the slice's account and book its price.

        Raises:
            LedgerError: If the slice is already booked.
        """
        if slice_id in self._entries:
            raise LedgerError(f"slice {slice_id} already booked")
        entry = LedgerEntry(slice_id=slice_id, price=request.price)
        self._entries[slice_id] = entry
        return entry

    def book_penalty(self, slice_id: str, amount: float) -> None:
        """Accrue one violation epoch's penalty against the slice.

        Raises:
            LedgerError: If the slice is unknown or the amount negative.
        """
        if amount < 0:
            raise LedgerError(f"penalty cannot be negative, got {amount}")
        entry = self._entries.get(slice_id)
        if entry is None:
            raise LedgerError(f"slice {slice_id} has no account")
        entry.penalties += amount
        entry.violation_epochs += 1

    def book_refund(self, slice_id: str, amount: float) -> None:
        """Refund part of a slice's price (early termination).

        Refunds reduce the booked price directly, never below zero.

        Raises:
            LedgerError: On an unknown slice, a negative amount, or a
                refund exceeding the remaining booked price.
        """
        if amount < 0:
            raise LedgerError(f"refund cannot be negative, got {amount}")
        entry = self._entries.get(slice_id)
        if entry is None:
            raise LedgerError(f"slice {slice_id} has no account")
        if amount > entry.price + 1e-9:
            raise LedgerError(
                f"refund {amount} exceeds booked price {entry.price}"
            )
        entry.price -= amount

    def book_rejection(self, request: SliceRequest, reason: str, at_time: float) -> None:
        """Record a rejected request and the revenue foregone."""
        self._rejections.append(
            RejectionRecord(
                request_id=request.request_id,
                price=request.price,
                reason=reason,
                at_time=at_time,
            )
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def entry(self, slice_id: str) -> LedgerEntry:
        """The slice's account.

        Raises:
            LedgerError: If unknown.
        """
        try:
            return self._entries[slice_id]
        except KeyError:
            raise LedgerError(f"slice {slice_id} has no account") from None

    @property
    def gross_revenue(self) -> float:
        """Sum of booked prices."""
        return sum(e.price for e in self._entries.values())

    @property
    def total_penalties(self) -> float:
        """Sum of accrued penalties."""
        return sum(e.penalties for e in self._entries.values())

    @property
    def net_revenue(self) -> float:
        """Gross revenue minus penalties — the number the broker maximizes."""
        return self.gross_revenue - self.total_penalties

    @property
    def rejected_revenue(self) -> float:
        """Revenue of rejected requests (opportunity cost, informational)."""
        return sum(r.price for r in self._rejections)

    @property
    def admissions(self) -> int:
        """Number of booked slices."""
        return len(self._entries)

    @property
    def rejections(self) -> int:
        """Number of rejected requests."""
        return len(self._rejections)

    def acceptance_ratio(self) -> float:
        """Admitted / (admitted + rejected); 0.0 before any decision."""
        total = self.admissions + self.rejections
        return self.admissions / total if total else 0.0

    def rejection_records(self) -> List[RejectionRecord]:
        """All rejection records, oldest first."""
        return list(self._rejections)

    def summary(self) -> dict:
        """Dashboard-ready totals."""
        return {
            "gross_revenue": self.gross_revenue,
            "total_penalties": self.total_penalties,
            "net_revenue": self.net_revenue,
            "rejected_revenue": self.rejected_revenue,
            "admissions": self.admissions,
            "rejections": self.rejections,
            "acceptance_ratio": self.acceptance_ratio(),
        }


__all__ = ["LedgerEntry", "LedgerError", "RejectionRecord", "RevenueLedger"]
