"""Overbooking engine: statistical multiplexing of slice reservations.

The central idea of the paper.  A slice's SLA nominally reserves its
peak throughput, but real demand sits well below peak most of the time.
The engine therefore commits only an *effective* fraction of each
nominal reservation, freeing capacity for additional slices.  Three
policies are provided:

- :class:`NoOverbooking` — effective = nominal (the safe baseline),
- :class:`FixedOverbooking` — effective = nominal / factor, a static knob,
- :class:`ForecastOverbooking` — effective = the forecaster's upper
  ``q``-quantile of imminent demand (never above nominal),
- :class:`AdaptiveOverbooking` — wraps ForecastOverbooking in a feedback
  loop that tunes ``q`` to hit a target SLA-violation rate, realizing the
  demo's "trade-off between multiplexing gain and SLA violations".

:class:`MultiplexingGainTracker` and :class:`SlaMonitor` produce the two
series the demo dashboard plots: achieved gain and accrued penalties.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.forecasting import Forecaster
from repro.monitoring.timeseries import TimeSeries


class OverbookingError(RuntimeError):
    """Raised on invalid overbooking configuration."""


@dataclass(frozen=True)
class OverbookingDecision:
    """Effective commitment for one slice in one domain.

    Attributes:
        slice_id: Subject slice.
        nominal: SLA-implied reservation (Mb/s, PRBs, ... caller's unit).
        effective: What will actually be committed (≤ nominal, > 0).
    """

    slice_id: str
    nominal: float
    effective: float

    def __post_init__(self) -> None:
        if self.nominal <= 0:
            raise OverbookingError(f"nominal must be positive, got {self.nominal}")
        if not 0 < self.effective <= self.nominal + 1e-9:
            raise OverbookingError(
                f"effective must be in (0, nominal={self.nominal}], got {self.effective}"
            )

    @property
    def fraction(self) -> float:
        """effective / nominal — the shrinkage factor in (0, 1]."""
        return self.effective / self.nominal


class OverbookingPolicy(ABC):
    """Maps a slice's nominal reservation to an effective commitment."""

    #: Hard floor on the shrinkage fraction: never commit less than this
    #: share of nominal, whatever the forecast says.
    MIN_FRACTION = 0.1

    @abstractmethod
    def decide(
        self,
        slice_id: str,
        nominal: float,
        forecaster: Optional[Forecaster] = None,
    ) -> OverbookingDecision:
        """Compute the effective commitment for a slice."""

    def decide_window(
        self,
        requests: Sequence[Tuple[str, float]],
        forecaster: Optional[Forecaster] = None,
    ) -> List[OverbookingDecision]:
        """Effective commitments for a whole decision window.

        Policies whose shrinkage depends only on the (shared) forecast
        override this to run the quantile math once per window instead
        of once per request; the default simply loops :meth:`decide`.

        Args:
            requests: ``(slice_id, nominal)`` pairs of the window.
        """
        return [self.decide(sid, nominal, forecaster) for sid, nominal in requests]

    def _clamp(self, slice_id: str, nominal: float, effective: float) -> OverbookingDecision:
        effective = min(nominal, max(self.MIN_FRACTION * nominal, effective))
        return OverbookingDecision(slice_id=slice_id, nominal=nominal, effective=effective)


class NoOverbooking(OverbookingPolicy):
    """Commit the full nominal reservation (baseline)."""

    def decide(
        self,
        slice_id: str,
        nominal: float,
        forecaster: Optional[Forecaster] = None,
    ) -> OverbookingDecision:
        if nominal <= 0:
            raise OverbookingError(f"nominal must be positive, got {nominal}")
        return OverbookingDecision(slice_id=slice_id, nominal=nominal, effective=nominal)


class FixedOverbooking(OverbookingPolicy):
    """Commit nominal / factor, e.g. factor 1.5 ⇒ commit 67% of nominal.

    The factor is the *carrier-level* overbooking ratio achievable when
    every slice receives the same shrinkage.
    """

    def __init__(self, factor: float = 1.5) -> None:
        if factor < 1.0:
            raise OverbookingError(f"factor must be ≥ 1, got {factor}")
        self.factor = float(factor)

    def decide(
        self,
        slice_id: str,
        nominal: float,
        forecaster: Optional[Forecaster] = None,
    ) -> OverbookingDecision:
        if nominal <= 0:
            raise OverbookingError(f"nominal must be positive, got {nominal}")
        return self._clamp(slice_id, nominal, nominal / self.factor)


class ForecastOverbooking(OverbookingPolicy):
    """Commit the forecaster's upper ``q``-quantile of imminent demand.

    Falls back to the full nominal reservation when no forecaster is
    available (cold start: a new slice has no history yet), which makes
    overbooking strictly opt-in as data accumulates — the demo behaviour
    of "monitoring past slice traffic behaviours".
    """

    def __init__(self, quantile: float = 0.95, horizon: int = 1) -> None:
        if not 0.0 < quantile < 1.0:
            raise OverbookingError(f"quantile must be in (0, 1), got {quantile}")
        if horizon < 1:
            raise OverbookingError(f"horizon must be ≥ 1, got {horizon}")
        self.quantile = float(quantile)
        self.horizon = int(horizon)

    def decide(
        self,
        slice_id: str,
        nominal: float,
        forecaster: Optional[Forecaster] = None,
    ) -> OverbookingDecision:
        if nominal <= 0:
            raise OverbookingError(f"nominal must be positive, got {nominal}")
        if forecaster is None:
            return OverbookingDecision(slice_id=slice_id, nominal=nominal, effective=nominal)
        predicted = forecaster.forecast_quantile(self.horizon, self.quantile)
        return self._clamp(slice_id, nominal, predicted)

    def decide_window(
        self,
        requests: Sequence[Tuple[str, float]],
        forecaster: Optional[Forecaster] = None,
    ) -> List[OverbookingDecision]:
        """One quantile forecast shared by the whole window.

        The shrinkage target depends only on the forecaster, so it is
        computed once and clamped per request — identical decisions to
        calling :meth:`decide` per request, minus the per-request
        quantile recomputation.
        """
        if forecaster is None:
            return [
                OverbookingDecision(slice_id=sid, nominal=nominal, effective=nominal)
                for sid, nominal in requests
            ]
        predicted = forecaster.forecast_quantile(self.horizon, self.quantile)
        return [self._clamp(sid, nominal, predicted) for sid, nominal in requests]


class AdaptiveOverbooking(OverbookingPolicy):
    """Feedback controller trading multiplexing gain against violations.

    Maintains an internal forecast quantile ``q``: observed violation
    rate above the budget ⇒ raise ``q`` (commit more, safer); below
    budget ⇒ lower ``q`` (commit less, more gain).  The step is
    proportional to the error, clipped to keep ``q`` in a sane band.

    Args:
        violation_budget: Target fraction of violated epochs (e.g. 0.05).
        initial_quantile: Starting ``q``.
        gain: Proportional step size of the controller.
    """

    Q_MIN = 0.5
    Q_MAX = 0.999

    def __init__(
        self,
        violation_budget: float = 0.05,
        initial_quantile: float = 0.9,
        gain: float = 0.5,
    ) -> None:
        if not 0.0 <= violation_budget < 1.0:
            raise OverbookingError(
                f"violation budget must be in [0, 1), got {violation_budget}"
            )
        if not self.Q_MIN <= initial_quantile <= self.Q_MAX:
            raise OverbookingError(
                f"initial quantile must be in [{self.Q_MIN}, {self.Q_MAX}]"
            )
        if gain <= 0:
            raise OverbookingError(f"gain must be positive, got {gain}")
        self.violation_budget = float(violation_budget)
        self.gain = float(gain)
        self._inner = ForecastOverbooking(quantile=initial_quantile)
        self._epochs = 0
        self._violations = 0

    @property
    def quantile(self) -> float:
        """Current operating quantile of the inner forecast policy."""
        return self._inner.quantile

    def observe(self, violated: bool) -> None:
        """Feed one monitoring epoch's outcome into the controller."""
        self._epochs += 1
        if violated:
            self._violations += 1
        rate = self._violations / self._epochs
        error = rate - self.violation_budget
        new_q = self._inner.quantile + self.gain * error
        self._inner.quantile = min(self.Q_MAX, max(self.Q_MIN, new_q))

    def observed_violation_rate(self) -> float:
        """Empirical violation rate seen so far."""
        return self._violations / self._epochs if self._epochs else 0.0

    def decide(
        self,
        slice_id: str,
        nominal: float,
        forecaster: Optional[Forecaster] = None,
    ) -> OverbookingDecision:
        return self._inner.decide(slice_id, nominal, forecaster)

    def decide_window(
        self,
        requests: Sequence[Tuple[str, float]],
        forecaster: Optional[Forecaster] = None,
    ) -> List[OverbookingDecision]:
        return self._inner.decide_window(requests, forecaster)


class MultiplexingGainTracker:
    """Tracks the gain metric the demo dashboard displays.

    Gain is defined per domain as ``nominal committed / physical
    capacity`` — 1.0 means no overbooking; 1.6 means the broker sold 60%
    more nominal capacity than physically exists.  The tracker keeps a
    time series so the dashboard can plot gain alongside penalties.
    """

    def __init__(self) -> None:
        self.series = TimeSeries(name="multiplexing_gain")

    @staticmethod
    def gain(nominal_committed: float, capacity: float) -> float:
        """Instantaneous gain (0.0 when capacity is 0).

        Raises:
            OverbookingError: If capacity is negative.
        """
        if capacity < 0:
            raise OverbookingError(f"capacity cannot be negative, got {capacity}")
        if capacity == 0:
            return 0.0
        return nominal_committed / capacity

    def record(self, t: float, nominal_committed: float, capacity: float) -> float:
        """Record the instantaneous gain at ``t`` and return it."""
        g = self.gain(nominal_committed, capacity)
        self.series.append(t, g)
        return g

    def peak_gain(self) -> float:
        """Highest recorded gain (0.0 before any record)."""
        return float(self.series.values().max()) if len(self.series) else 0.0

    def mean_gain(self) -> float:
        """Average recorded gain."""
        return self.series.mean()


class SlaMonitor:
    """Per-epoch SLA violation detection and penalty computation.

    A slice's epoch is violated when delivered throughput falls short of
    what the tenant was *entitled to*: ``min(demand, nominal)``.  Demand
    above nominal is the tenant exceeding its own SLA — not a violation
    — and a small relative tolerance absorbs floating-point noise.
    """

    def __init__(self, tolerance: float = 0.01) -> None:
        if not 0.0 <= tolerance < 1.0:
            raise OverbookingError(f"tolerance must be in [0, 1), got {tolerance}")
        self.tolerance = float(tolerance)
        self.total_epochs = 0
        self.total_violations = 0
        self._per_slice: Dict[str, Dict[str, int]] = {}

    def check_epoch(
        self,
        slice_id: str,
        demand: float,
        delivered: float,
        nominal: float,
    ) -> bool:
        """Evaluate one epoch; returns True when the SLA was violated."""
        if nominal <= 0:
            raise OverbookingError(f"nominal must be positive, got {nominal}")
        entitled = min(demand, nominal)
        violated = delivered < entitled * (1.0 - self.tolerance) - 1e-9
        self.total_epochs += 1
        counters = self._per_slice.setdefault(
            slice_id, {"epochs": 0, "violations": 0}
        )
        counters["epochs"] += 1
        if violated:
            self.total_violations += 1
            counters["violations"] += 1
        return violated

    def violation_rate(self, slice_id: Optional[str] = None) -> float:
        """Overall (or per-slice) fraction of violated epochs."""
        if slice_id is None:
            return self.total_violations / self.total_epochs if self.total_epochs else 0.0
        counters = self._per_slice.get(slice_id)
        if not counters or counters["epochs"] == 0:
            return 0.0
        return counters["violations"] / counters["epochs"]

    def slices_monitored(self) -> int:
        """How many distinct slices produced at least one epoch."""
        return len(self._per_slice)


__all__ = [
    "AdaptiveOverbooking",
    "FixedOverbooking",
    "ForecastOverbooking",
    "MultiplexingGainTracker",
    "NoOverbooking",
    "OverbookingDecision",
    "OverbookingError",
    "OverbookingPolicy",
    "SlaMonitor",
]
