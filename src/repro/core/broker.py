"""Batch-window slice broker.

The 5G slice-broker model the paper builds on (Samdanis et al., ref [3])
collects tenant requests over a *decision window* and admits the subset
that maximizes revenue — the setting where knapsack admission actually
beats first-come-first-served (experiment D1 measures the gap; this
module wires the mechanism into the live orchestrator).

Requests submitted through :class:`SliceBroker` queue until the window
closes; the batch policy then picks the winning subset against the
current free-capacity vector, winners are installed through the
orchestrator, and losers are booked as rejections.  The window trades
tenant-visible admission latency for revenue — the ``window_s`` knob is
ablated in ``benchmarks/bench_d9_batch_window.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional, Tuple

from repro.core.admission import AdmissionDecision, AdmissionPolicy, KnapsackPolicy
from repro.core.orchestrator import Orchestrator
from repro.core.slices import SliceRequest
from repro.store.codec import request_to_dict
from repro.traffic.patterns import TrafficProfile


class BrokerError(RuntimeError):
    """Raised on broker misuse."""


#: Notified with the final decision when a queued request's window flushes.
DecisionCallback = Callable[[AdmissionDecision], None]


@dataclass
class PendingRequest:
    """A request waiting for the current window to close."""

    request: SliceRequest
    profile: TrafficProfile
    enqueued_at: float
    on_decision: Optional[DecisionCallback] = None


class SliceBroker:
    """Windowed batch admission on top of an orchestrator.

    Args:
        orchestrator: The orchestrator that installs winning slices.
        window_s: Decision-window length; the first request of an empty
            queue arms the flush timer.
        policy: Batch admission policy (default: knapsack revenue max).
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        window_s: float = 300.0,
        policy: Optional[AdmissionPolicy] = None,
    ) -> None:
        if window_s <= 0:
            raise BrokerError(f"window must be positive, got {window_s}")
        self.orchestrator = orchestrator
        self.window_s = float(window_s)
        self.policy = policy or KnapsackPolicy()
        self._queue: List[PendingRequest] = []
        self._flush_armed = False
        self.windows_flushed = 0
        self.decisions: List[AdmissionDecision] = []
        # Durable windows: queued-but-undecided requests are journaled
        # (``broker.enqueued`` / ``broker.decided``) and carried in
        # every checkpoint, so a crash mid-window no longer silently
        # drops them — recovery re-offers the survivors through online
        # admission (see RecoveryManager._requeue_broker_windows).
        orchestrator.durable_sections["broker_pending"] = self._pending_state

    def _pending_state(self) -> dict:
        """Checkpoint section: the current window's undecided requests."""
        return {
            pending.request.request_id: request_to_dict(pending.request)
            for pending in self._queue
        }

    @property
    def pending(self) -> int:
        """Requests waiting in the current window."""
        return len(self._queue)

    def submit(
        self,
        request: SliceRequest,
        profile: TrafficProfile,
        on_decision: Optional[DecisionCallback] = None,
    ) -> str:
        """Enqueue a request for the current decision window.

        Unlike :meth:`Orchestrator.submit`, no decision is returned —
        the tenant hears back when the window flushes (poll
        :attr:`decisions`, the orchestrator's slice states, or pass an
        ``on_decision`` callback, which the northbound API uses to
        resolve its async operation resources).  Returns the request id
        so callers can correlate the eventual decision.
        """
        # Write-ahead before the request is visible in the window: an
        # acknowledged enqueue must survive a crash of the process.
        self.orchestrator.store.append(
            "broker.enqueued",
            time=self.orchestrator.sim.now,
            request=request_to_dict(request),
            window_s=self.window_s,
        )
        self._queue.append(
            PendingRequest(
                request=request,
                profile=profile,
                enqueued_at=self.orchestrator.sim.now,
                on_decision=on_decision,
            )
        )
        if not self._flush_armed:
            self._flush_armed = True
            self.orchestrator.sim.schedule(
                self.window_s, self.flush, name="broker-window-flush"
            )
        return request.request_id

    def flush(self) -> List[AdmissionDecision]:
        """Close the window: batch-decide and install/reject everything.

        Winners are installed as *one* concurrent batch through the
        orchestrator's :class:`~repro.drivers.planner.BatchInstallPlanner`
        — a window of N admitted slices deploys in roughly the time the
        slowest single install takes, not the sum of all N.  Since the
        planner's async rewrite the batch is also stall-isolated per
        job: a hung southbound domain delays (or, with a configured
        ``install_timeout_s`` deadline, cleanly fails) only the winners
        that touched it, never the rest of the window.
        """
        self._flush_armed = False
        if not self._queue:
            return []
        obs = self.orchestrator.obs
        flush_started = None
        if obs.enabled:
            obs.gauge_set("queue.broker_window", float(len(self._queue)))
            flush_started = perf_counter()
        batch, self._queue = self._queue, []
        self.windows_flushed += 1
        fractions = self.orchestrator.cold_start_fractions(
            [pending.request for pending in batch]
        )
        candidates: List[Tuple[SliceRequest, "object"]] = [
            (pending.request, self.orchestrator.shrunk_demand(pending.request, fraction))
            for pending, fraction in zip(batch, fractions)
        ]
        free = self.orchestrator.allocator.aggregate_free_vector()
        with obs.timed("broker.decide", label=type(self.policy).__name__):
            batch_decisions = self.policy.decide_batch(candidates, free)
        outcomes: List[Optional[AdmissionDecision]] = []
        winners: List[Tuple[int, PendingRequest]] = []
        now = self.orchestrator.sim.now

        def journal_decided(pending: PendingRequest, outcome) -> None:
            # The window's durable claim on a request ends with its
            # decision (the install/reject records already released it —
            # this is the explicit audit record the replay fold keys on
            # for requests with no lifecycle record yet).
            self.orchestrator.store.append(
                "broker.decided",
                time=now,
                request_id=pending.request.request_id,
                admitted=bool(outcome.admitted) if outcome is not None else False,
                reason=getattr(outcome, "reason", None),
            )

        for index, ((pending, decision), (_, demand)) in enumerate(
            zip(zip(batch, batch_decisions), candidates)
        ):
            if not decision.admitted:
                outcome = self.orchestrator.reject(pending.request, decision.reason)
                outcomes.append(outcome)
                # Journal the loser the moment it is decided: if the
                # install batch below dies mid-window, recovery must not
                # re-offer an already-rejected request through admission
                # (that would double-decide it).
                journal_decided(pending, outcome)
                continue
            # Winners must still respect capacity promised to advance
            # bookings ("upcoming requests", paper §2) — same check
            # Orchestrator.submit applies online.
            if self.orchestrator.config.respect_calendar:
                horizon = (
                    now
                    + pending.request.sla.duration_s
                    + self.orchestrator.config.deploy_time_s
                )
                if not self.orchestrator.calendar.fits(demand, now, horizon):
                    outcome = self.orchestrator.reject(
                        pending.request,
                        "conflicts with advance reservations on the calendar",
                    )
                    outcomes.append(outcome)
                    journal_decided(pending, outcome)
                    continue
            outcomes.append(None)  # resolved by the batched install below
            winners.append((index, pending))
        if winners:
            # Winners are journaled only after their install resolves:
            # a crash inside the batch leaves them undecided in the
            # journal, minus any whose ``install.started`` record
            # already landed — recovery re-offers exactly that set, so
            # no request is ever decided twice.
            installed = self.orchestrator.install_admitted_batch(
                [(pending.request, pending.profile) for _, pending in winners]
            )
            for (index, pending), outcome in zip(winners, installed):
                outcomes[index] = outcome
                journal_decided(pending, outcome)
        for pending, outcome in zip(batch, outcomes):
            if pending.on_decision is not None:
                pending.on_decision(outcome)
        self.decisions.extend(outcomes)
        if flush_started is not None:
            obs.observe("broker.flush", (perf_counter() - flush_started) * 1000.0)
        return outcomes


__all__ = ["BrokerError", "DecisionCallback", "PendingRequest", "SliceBroker"]
