"""Admission-control engine.

"Admit network slice requests such that the overall system revenues are
maximized" (paper §1, following the 5G slice-broker model of Samdanis et
al. — ref [3]).  Admission reasons over an abstract per-request
:class:`ResourceVector` (PRBs on the RAN, Mb/s on transport, vCPUs in
the cloud) against the infrastructure's free-capacity vector, so the
same policies serve both the live orchestrator and the offline
benchmark harness.

Two operating modes:

- **online** — :meth:`AdmissionPolicy.decide` on each arrival
  (what the live demo does);
- **batch** — :meth:`AdmissionPolicy.decide_batch` over a decision
  window, which is where revenue maximization diverges from
  first-come-first-served (the D1 experiment).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.slices import SliceRequest


class AdmissionError(RuntimeError):
    """Raised on malformed admission inputs."""


@dataclass(frozen=True)
class ResourceVector:
    """Multi-domain resource footprint (all components ≥ 0).

    Attributes:
        prbs: Radio resource blocks.
        mbps: Transport bandwidth.
        vcpus: Compute cores.
    """

    prbs: float = 0.0
    mbps: float = 0.0
    vcpus: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (("prbs", self.prbs), ("mbps", self.mbps), ("vcpus", self.vcpus)):
            if value < 0:
                raise AdmissionError(f"{name} cannot be negative, got {value}")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.prbs + other.prbs, self.mbps + other.mbps, self.vcpus + other.vcpus
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            max(0.0, self.prbs - other.prbs),
            max(0.0, self.mbps - other.mbps),
            max(0.0, self.vcpus - other.vcpus),
        )

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """Component-wise ≤ with a small tolerance."""
        return (
            self.prbs <= capacity.prbs + 1e-9
            and self.mbps <= capacity.mbps + 1e-9
            and self.vcpus <= capacity.vcpus + 1e-9
        )

    def max_fraction_of(self, capacity: "ResourceVector") -> float:
        """Largest per-dimension usage fraction (∞ if a zero-capacity
        dimension is demanded) — the scalarization the knapsack uses."""
        fractions = []
        for demand, cap in (
            (self.prbs, capacity.prbs),
            (self.mbps, capacity.mbps),
            (self.vcpus, capacity.vcpus),
        ):
            if demand <= 0:
                continue
            if cap <= 0:
                return float("inf")
            fractions.append(demand / cap)
        return max(fractions) if fractions else 0.0

    def scale(self, factor: float) -> "ResourceVector":
        """Multiply every component by ``factor`` (≥ 0)."""
        if factor < 0:
            raise AdmissionError(f"scale factor cannot be negative, got {factor}")
        return ResourceVector(self.prbs * factor, self.mbps * factor, self.vcpus * factor)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission evaluation.

    Attributes:
        request_id: The evaluated request.
        admitted: Verdict.
        reason: Human-readable justification.
        expected_value: Revenue the decision expects to realize.
        slice_id: Identity of the slice record the orchestrator created
            for this request (admitted *and* rejected slices get one;
            None for pure policy-layer decisions that never reached the
            orchestrator, e.g. advance bookings not yet installed).
    """

    request_id: str
    admitted: bool
    reason: str
    expected_value: float = 0.0
    slice_id: Optional[str] = None


#: Estimates the expected penalty cost of admitting a request; the
#: revenue-max policies subtract it from the price.  Signature:
#: ``(request) -> expected penalty``.
PenaltyEstimator = Callable[[SliceRequest], float]


def default_penalty_estimator(risk: float = 0.02) -> PenaltyEstimator:
    """Expected penalty = risk × violation epochs × penalty rate.

    ``risk`` is the assumed per-epoch violation probability under the
    current overbooking posture; monitoring epochs are 60 s.
    """
    if not 0.0 <= risk <= 1.0:
        raise AdmissionError(f"risk must be in [0, 1], got {risk}")

    def estimate(request: SliceRequest) -> float:
        epochs = max(1.0, request.sla.duration_s / 60.0)
        return risk * epochs * request.penalty_rate

    return estimate


class AdmissionPolicy(ABC):
    """Base class for admission policies."""

    name = "abstract"

    @abstractmethod
    def decide(
        self,
        request: SliceRequest,
        demand: ResourceVector,
        free: ResourceVector,
    ) -> AdmissionDecision:
        """Online decision for one arriving request."""

    def decide_batch(
        self,
        candidates: Sequence[Tuple[SliceRequest, ResourceVector]],
        capacity: ResourceVector,
    ) -> List[AdmissionDecision]:
        """Batch decision over a window (default: online FCFS sweep)."""
        decisions: List[AdmissionDecision] = []
        free = capacity
        for request, demand in candidates:
            decision = self.decide(request, demand, free)
            decisions.append(decision)
            if decision.admitted:
                free = free - demand
        return decisions


class FcfsPolicy(AdmissionPolicy):
    """Accept any request whose demand fits the free capacity.

    The revenue-blind baseline: the order of arrival fully determines
    who gets in.
    """

    name = "fcfs"

    def decide(
        self,
        request: SliceRequest,
        demand: ResourceVector,
        free: ResourceVector,
    ) -> AdmissionDecision:
        if demand.fits_within(free):
            return AdmissionDecision(
                request_id=request.request_id,
                admitted=True,
                reason="fits free capacity",
                expected_value=request.price,
            )
        return AdmissionDecision(
            request_id=request.request_id,
            admitted=False,
            reason="insufficient capacity",
        )


class GreedyPricePolicy(AdmissionPolicy):
    """Batch: admit in order of value density (value per bottleneck unit).

    Online it behaves like FCFS but refuses requests whose expected value
    (price minus estimated penalties) is non-positive.
    """

    name = "greedy"

    def __init__(self, penalty_estimator: Optional[PenaltyEstimator] = None) -> None:
        self.penalty_estimator = penalty_estimator or (lambda request: 0.0)

    def _value(self, request: SliceRequest) -> float:
        return request.price - self.penalty_estimator(request)

    def decide(
        self,
        request: SliceRequest,
        demand: ResourceVector,
        free: ResourceVector,
    ) -> AdmissionDecision:
        value = self._value(request)
        if value <= 0:
            return AdmissionDecision(
                request_id=request.request_id,
                admitted=False,
                reason="non-positive expected value",
                expected_value=value,
            )
        if not demand.fits_within(free):
            return AdmissionDecision(
                request_id=request.request_id,
                admitted=False,
                reason="insufficient capacity",
                expected_value=value,
            )
        return AdmissionDecision(
            request_id=request.request_id,
            admitted=True,
            reason="positive value and fits",
            expected_value=value,
        )

    def decide_batch(
        self,
        candidates: Sequence[Tuple[SliceRequest, ResourceVector]],
        capacity: ResourceVector,
    ) -> List[AdmissionDecision]:
        order = sorted(
            range(len(candidates)),
            key=lambda i: (
                -self._value(candidates[i][0])
                / max(candidates[i][1].max_fraction_of(capacity), 1e-9)
            ),
        )
        decisions: List[Optional[AdmissionDecision]] = [None] * len(candidates)
        free = capacity
        for i in order:
            request, demand = candidates[i]
            decision = self.decide(request, demand, free)
            decisions[i] = decision
            if decision.admitted:
                free = free - demand
        return [d for d in decisions if d is not None]


class KnapsackPolicy(AdmissionPolicy):
    """Batch revenue maximization by dynamic-programming knapsack.

    Each candidate is scalarized to its bottleneck fraction of capacity
    (its largest per-dimension share) and discretized into
    ``resolution`` units; the DP maximizes total expected value subject
    to the unit budget.  Because per-dimension usage never exceeds the
    bottleneck fraction, any unit-feasible selection is vector-feasible
    — the DP is conservative but sound.  A greedy repair pass then fills
    the vector capacity the scalarization left unused, and the final
    answer is whichever of {DP + fill, pure greedy} earns more — so this
    policy dominates :class:`GreedyPricePolicy` by construction.

    Online, it falls back to greedy value-positive FCFS (a knapsack over
    one item is just that).
    """

    name = "knapsack"

    def __init__(
        self,
        resolution: int = 200,
        penalty_estimator: Optional[PenaltyEstimator] = None,
    ) -> None:
        if resolution < 10:
            raise AdmissionError(f"resolution must be ≥ 10, got {resolution}")
        self.resolution = int(resolution)
        self.penalty_estimator = penalty_estimator or (lambda request: 0.0)
        self._greedy = GreedyPricePolicy(penalty_estimator=self.penalty_estimator)

    def decide(
        self,
        request: SliceRequest,
        demand: ResourceVector,
        free: ResourceVector,
    ) -> AdmissionDecision:
        return self._greedy.decide(request, demand, free)

    def decide_batch(
        self,
        candidates: Sequence[Tuple[SliceRequest, ResourceVector]],
        capacity: ResourceVector,
    ) -> List[AdmissionDecision]:
        n = len(candidates)
        values = [
            candidates[i][0].price - self.penalty_estimator(candidates[i][0])
            for i in range(n)
        ]
        weights: List[int] = []
        for _, demand in candidates:
            fraction = demand.max_fraction_of(capacity)
            if math.isinf(fraction) or fraction > 1.0:
                weights.append(self.resolution + 1)  # can never fit
            else:
                weights.append(max(1, math.ceil(fraction * self.resolution)))
        budget = self.resolution
        # 1-D DP over unit budget; keep the chosen set via bitmask-free
        # backtracking table (parent pointers).
        NEG = float("-inf")
        dp = [0.0] + [NEG] * budget
        take: List[List[bool]] = [[False] * (budget + 1) for _ in range(n)]
        for i in range(n):
            w, v = weights[i], values[i]
            if w > budget or v <= 0:
                continue
            for b in range(budget, w - 1, -1):
                if dp[b - w] != NEG and dp[b - w] + v > dp[b]:
                    dp[b] = dp[b - w] + v
                    take[i][b] = True
        # Backtrack from the best budget level.
        best_budget = max(range(budget + 1), key=lambda b: dp[b] if dp[b] != NEG else NEG)
        chosen = set()
        b = best_budget
        for i in range(n - 1, -1, -1):
            if take[i][b]:
                chosen.add(i)
                b -= weights[i]
        # Repair pass: the scalarization (Σ max-fractions ≤ 1) is
        # conservative, so vector capacity usually remains after the DP
        # selection.  Greedily fill it with the remaining positive-value
        # candidates in value-density order.
        free = capacity
        admitted: set = set()
        for i, (request, demand) in enumerate(candidates):
            if i in chosen and demand.fits_within(free):
                free = free - demand
                admitted.add(i)
        fill_order = sorted(
            (i for i in range(n) if i not in admitted and values[i] > 0),
            key=lambda i: -values[i]
            / max(candidates[i][1].max_fraction_of(capacity), 1e-9),
        )
        for i in fill_order:
            demand = candidates[i][1]
            if demand.fits_within(free):
                free = free - demand
                admitted.add(i)
        # Keep whichever of {DP+fill, pure greedy} earns more, so the
        # knapsack policy dominates greedy by construction.
        greedy_decisions = self._greedy.decide_batch(candidates, capacity)
        greedy_value = sum(
            values[i] for i, d in enumerate(greedy_decisions) if d.admitted
        )
        dp_value = sum(values[i] for i in admitted)
        if greedy_value > dp_value:
            return greedy_decisions
        decisions: List[AdmissionDecision] = []
        for i, (request, demand) in enumerate(candidates):
            if i in admitted:
                decisions.append(
                    AdmissionDecision(
                        request_id=request.request_id,
                        admitted=True,
                        reason="knapsack-selected",
                        expected_value=values[i],
                    )
                )
            else:
                decisions.append(
                    AdmissionDecision(
                        request_id=request.request_id,
                        admitted=False,
                        reason="not selected by knapsack",
                        expected_value=values[i],
                    )
                )
        return decisions


class TrunkReservationPolicy(AdmissionPolicy):
    """Priority headroom ("trunk reservation") admission.

    The classical telephony policy adapted to slices: low-priority
    requests are admitted only while utilization stays below a
    threshold; the reserved headroom above it is kept for high-priority
    requests (URLLC, automotive safety), which are admitted whenever
    they physically fit.  This keeps premium acceptance high under load
    at a small cost in total admissions.

    Args:
        headroom: Fraction of capacity reserved for priorities ≥
            ``premium_priority`` (e.g. 0.2 keeps the top 20% free).
        premium_priority: Priority level granting access to the headroom.
        capacity: The full capacity vector (needed to convert the free
            vector into a utilization level).
    """

    name = "trunk-reservation"

    def __init__(
        self,
        capacity: ResourceVector,
        headroom: float = 0.2,
        premium_priority: int = 2,
    ) -> None:
        if not 0.0 <= headroom < 1.0:
            raise AdmissionError(f"headroom must be in [0, 1), got {headroom}")
        self.capacity = capacity
        self.headroom = float(headroom)
        self.premium_priority = int(premium_priority)

    def decide(
        self,
        request: SliceRequest,
        demand: ResourceVector,
        free: ResourceVector,
    ) -> AdmissionDecision:
        if not demand.fits_within(free):
            return AdmissionDecision(
                request_id=request.request_id,
                admitted=False,
                reason="insufficient capacity",
            )
        if request.priority >= self.premium_priority:
            return AdmissionDecision(
                request_id=request.request_id,
                admitted=True,
                reason="premium priority",
                expected_value=request.price,
            )
        # Non-premium: the post-admission utilization must stay below
        # 1 − headroom on every dimension.
        remaining = free - demand
        threshold = self.headroom
        for dim in ("prbs", "mbps", "vcpus"):
            cap = getattr(self.capacity, dim)
            if cap <= 0:
                continue
            if getattr(remaining, dim) / cap < threshold - 1e-9:
                return AdmissionDecision(
                    request_id=request.request_id,
                    admitted=False,
                    reason=f"headroom reserved for premium traffic ({dim})",
                )
        return AdmissionDecision(
            request_id=request.request_id,
            admitted=True,
            reason="below trunk-reservation threshold",
            expected_value=request.price,
        )


class OverbookingAwarePolicy(AdmissionPolicy):
    """Online policy that evaluates *overbooked* (shrunk) demand.

    Wraps an inner policy; the caller provides the shrinkage factor
    (from the overbooking engine's decisions) and this policy admits
    against ``demand × factor`` instead of the nominal demand — the
    mechanism by which overbooking raises acceptance.
    """

    name = "overbooking-aware"

    def __init__(
        self,
        inner: Optional[AdmissionPolicy] = None,
        shrink_factor: float = 0.6,
    ) -> None:
        if not 0.0 < shrink_factor <= 1.0:
            raise AdmissionError(
                f"shrink factor must be in (0, 1], got {shrink_factor}"
            )
        self.inner = inner or FcfsPolicy()
        self.shrink_factor = float(shrink_factor)

    def decide(
        self,
        request: SliceRequest,
        demand: ResourceVector,
        free: ResourceVector,
    ) -> AdmissionDecision:
        shrunk = demand.scale(self.shrink_factor)
        decision = self.inner.decide(request, shrunk, free)
        if decision.admitted:
            return AdmissionDecision(
                request_id=decision.request_id,
                admitted=True,
                reason=f"admitted at {self.shrink_factor:.0%} effective demand",
                expected_value=decision.expected_value,
            )
        return decision


__all__ = [
    "AdmissionDecision",
    "AdmissionError",
    "AdmissionPolicy",
    "FcfsPolicy",
    "GreedyPricePolicy",
    "KnapsackPolicy",
    "OverbookingAwarePolicy",
    "PenaltyEstimator",
    "ResourceVector",
    "TrunkReservationPolicy",
    "default_penalty_estimator",
]
