"""Multi-domain placement planning.

Given a slice request, answer the cross-domain questions the admission
and install engines ask — "radio resources (PRBs) are reserved through
the RAN controller, dedicated paths are selected to guarantee the
required delay and capacity in the transport network and cloud (or
mobile edge) data centers are selected to satisfy the network slice
SLAs" (paper §3).

The allocator owns two cross-domain concerns:

1. **Latency budget split** — RAN segment + transport path + DC
   processing must stay within the SLA bound; the transport path is
   searched with whatever budget the fixed RAN/DC terms leave.
2. **Edge-vs-core selection** — core capacity is plentiful but far;
   the allocator prefers the core DC when the latency budget allows and
   spills latency-tight slices (URLLC, automotive) to the edge,
   preserving scarce edge capacity for the slices that need it.

This is a pure *planning* surface: demand estimation, free/aggregate
capacity vectors, candidate-DC ranking, the latency-budget split and
the commit-nothing feasibility probe.  The lifecycle itself — the
pre-driver-API ``allocate``/``release``/``modify_throughput``/
``resize`` methods that once committed resources here — is retired:
every install, resize, release and repair runs through
:mod:`repro.drivers` (the two-phase transaction / batch planner over
the :class:`~repro.drivers.registry.DriverRegistry`).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cloud.controller import CloudAllocation, CloudController
from repro.cloud.datacenter import Datacenter, DatacenterTier
from repro.core.admission import ResourceVector
from repro.core.slices import SliceRequest
from repro.epc.components import epc_template
from repro.ran.controller import (
    RAN_SEGMENT_LATENCY_MS,
    RanAllocation,
    RanController,
)
from repro.transport.controller import (
    TransportAllocation,
    TransportController,
)
from repro.transport.paths import PathRequest


class AllocationError(RuntimeError):
    """Raised when end-to-end planning fails; names the failing domain."""

    def __init__(self, domain: str, message: str) -> None:
        super().__init__(f"[{domain}] {message}")
        self.domain = domain
        self.message = message


@dataclass(frozen=True)
class EndToEndAllocation:
    """The slice's committed resources across all three domains."""

    ran: RanAllocation
    transport: TransportAllocation
    cloud: CloudAllocation

    @property
    def total_latency_ms(self) -> float:
        """End-to-end user-plane latency of the allocation."""
        return (
            self.ran.latency_ms
            + self.transport.delay_ms
            + self.cloud.processing_delay_ms
        )


class MultiDomainAllocator:
    """Plans slices across RAN, transport and cloud (commits nothing)."""

    def __init__(
        self,
        ran: RanController,
        transport: TransportController,
        cloud: CloudController,
    ) -> None:
        self.ran = ran
        self.transport = transport
        self.cloud = cloud
        # Delta-maintained uplink aggregates: per eNB transport node we
        # cache the best residual of its up out-links, kept in a sorted
        # index (for the max) alongside a running sum weighted by how
        # many eNBs hang off the node.  The topology's dirty-node feed
        # tells us which nodes to re-derive — including after direct
        # ``link.fail()``/``restore()`` calls that bypass the transport
        # controller — so ``free_vector``/``aggregate_free_vector`` no
        # longer walk every uplink per call.
        self._uplink_dirty = transport.topology.subscribe_dirty()
        self._uplink_count: Dict[str, int] = {}  # node -> #eNBs attached
        self._uplink_best: Dict[str, float] = {}  # node -> best residual
        self._uplink_index: List[Tuple[float, str]] = []  # sorted (best, node)
        self._uplink_sum = 0.0  # sum over eNBs of their node's best residual
        self._ran_seen_version = -1

    # ------------------------------------------------------------------
    # Delta-maintained uplink aggregates
    # ------------------------------------------------------------------
    def _node_best_residual(self, node: str) -> float:
        best = 0.0
        for link in self.transport.topology.out_links(node):
            if link.up and link.residual_mbps > best:
                best = link.residual_mbps
        return best

    def _refresh_uplinks(self) -> None:
        """Bring the uplink aggregates up to date (O(#dirty nodes))."""
        if self.ran.inventory_version != self._ran_seen_version:
            self._uplink_count = {}
            for enb in self.ran.enbs():
                node = enb.transport_node
                self._uplink_count[node] = self._uplink_count.get(node, 0) + 1
            self._uplink_best = {}
            self._uplink_index = []
            self._uplink_sum = 0.0
            for node, count in self._uplink_count.items():
                best = self._node_best_residual(node)
                self._uplink_best[node] = best
                insort(self._uplink_index, (best, node))
                self._uplink_sum += best * count
            self._ran_seen_version = self.ran.inventory_version
            self._uplink_dirty.clear()
            return
        if not self._uplink_dirty:
            return
        for node in self._uplink_dirty:
            count = self._uplink_count.get(node)
            if count is None:
                continue
            old = self._uplink_best[node]
            best = self._node_best_residual(node)
            if best == old:
                continue
            self._uplink_index.pop(bisect_left(self._uplink_index, (old, node)))
            insort(self._uplink_index, (best, node))
            self._uplink_best[node] = best
            self._uplink_sum += (best - old) * count
        self._uplink_dirty.clear()

    def verify_uplink_aggregates(self) -> None:
        """Cross-check the delta-maintained aggregates against a recompute.

        Raises:
            AllocationError: If the cached per-node bests, the max index
                or the running sum drifted from ground truth (property
                tests call this after randomized schedules).
        """
        self._refresh_uplinks()
        expected_sum = 0.0
        for enb in self.ran.enbs():
            node = enb.transport_node
            best = self._node_best_residual(node)
            expected_sum += best
            if abs(self._uplink_best.get(node, -1.0) - best) > 1e-6:
                raise AllocationError(
                    "transport",
                    f"cached best residual for {node} is "
                    f"{self._uplink_best.get(node)}, expected {best}",
                )
        if abs(expected_sum - self._uplink_sum) > 1e-6:
            raise AllocationError(
                "transport",
                f"running uplink sum {self._uplink_sum} drifted from {expected_sum}",
            )
        if sorted(self._uplink_index) != self._uplink_index or len(
            self._uplink_index
        ) != len(self._uplink_best):
            raise AllocationError("transport", "uplink max-index corrupted")

    # ------------------------------------------------------------------
    # Demand estimation (admission input)
    # ------------------------------------------------------------------
    def demand_vector(self, request: SliceRequest) -> ResourceVector:
        """Nominal multi-domain footprint of a request.

        PRBs are dimensioned at the fleet's reference CQI; transport
        bandwidth equals the SLA throughput; vCPUs come from the vEPC
        template.
        """
        enbs = self.ran.enbs()
        if not enbs:
            raise AllocationError("ran", "no eNBs registered")
        prbs = enbs[0].prbs_for_throughput(request.sla.throughput_mbps)
        template = epc_template("probe")
        return ResourceVector(
            prbs=float(prbs),
            mbps=request.sla.throughput_mbps,
            vcpus=float(template.total_vcpus),
        )

    def free_vector(self) -> ResourceVector:
        """Current free capacity across the three domains.

        RAN free PRBs are taken from the *single best cell* (a slice
        lives on one cell, so fleet-wide sums would overstate what one
        request can use); transport uses the most permissive residual of
        the eNB uplinks; cloud sums free vCPUs.
        """
        self._refresh_uplinks()
        free_prbs = self.ran.max_free_prbs()
        free_mbps = self._uplink_index[-1][0] if self._uplink_index else 0.0
        free_vcpus = sum(dc.free_vcpus for dc in self.cloud.datacenters())
        return ResourceVector(prbs=float(free_prbs), mbps=free_mbps, vcpus=float(free_vcpus))

    def aggregate_capacity_vector(self) -> ResourceVector:
        """Fleet-wide *total* capacity (free + committed).

        The resource-calendar capacity for advance reservations: total
        PRBs across cells, summed best-uplink capacity per eNB, and
        total datacenter vCPUs.
        """
        total_prbs = sum(enb.grid.total_prbs for enb in self.ran.enbs())
        total_mbps = 0.0
        for enb in self.ran.enbs():
            capacities = [
                link.capacity_mbps
                for link in self.transport.topology.out_links(enb.transport_node)
            ]
            total_mbps += max(capacities, default=0.0)
        total_vcpus = sum(dc.total_vcpus for dc in self.cloud.datacenters())
        return ResourceVector(
            prbs=float(total_prbs), mbps=total_mbps, vcpus=float(total_vcpus)
        )

    def aggregate_free_vector(self) -> ResourceVector:
        """Fleet-wide free capacity for *batch* planning.

        Unlike :meth:`free_vector` (what one request can use right now),
        this sums across cells and uplinks — the right capacity for a
        batch broker deciding a whole window, where each winner lands on
        its own cell.  A selection that fits the aggregate can still
        fail per-cell placement at install time; the installer handles
        that by booking a rejection.
        """
        self._refresh_uplinks()
        free_prbs = self.ran.total_free_prbs()
        free_mbps = self._uplink_sum
        free_vcpus = sum(dc.free_vcpus for dc in self.cloud.datacenters())
        return ResourceVector(prbs=float(free_prbs), mbps=free_mbps, vcpus=float(free_vcpus))

    # ------------------------------------------------------------------
    # DC selection under the latency budget
    # ------------------------------------------------------------------
    def transport_budget_ms(self, request: SliceRequest, dc: Datacenter) -> float:
        """Path-delay budget left after the fixed RAN and DC terms."""
        return request.sla.max_latency_ms - RAN_SEGMENT_LATENCY_MS - dc.processing_delay_ms

    # Backwards-compatible alias (pre-driver-API name).
    _transport_budget_ms = transport_budget_ms

    def candidate_datacenters(self, request: SliceRequest, enb_node: str) -> List[Datacenter]:
        """Feasible DCs for the slice's vEPC, core-first when latency allows.

        A DC qualifies if (i) its free compute hosts the vEPC template
        and (ii) a transport path from the eNB meets the remaining
        latency budget at the SLA bandwidth.
        """
        template = epc_template(request.request_id)
        ordered = sorted(
            self.cloud.datacenters(),
            key=lambda dc: 0 if dc.tier is DatacenterTier.CORE else 1,
        )
        candidates = []
        for dc in ordered:
            if not dc.can_host_flavors(template.flavors()):
                continue
            budget = self._transport_budget_ms(request, dc)
            if budget <= 0:
                continue
            path_request = PathRequest(
                src=enb_node,
                dst=dc.gateway_node,
                min_bandwidth_mbps=request.sla.throughput_mbps,
                max_delay_ms=budget,
            )
            if self.transport.feasible(path_request):
                candidates.append(dc)
        return candidates

    # ------------------------------------------------------------------
    # Feasibility probe (admission support; commits nothing)
    # ------------------------------------------------------------------
    def feasible(self, request: SliceRequest, effective_fraction: float = 1.0) -> bool:
        """Whether the slice could currently be allocated end-to-end."""
        demand = self.demand_vector(request)
        effective_prbs = max(1, round(demand.prbs * effective_fraction))
        enb_id = self.ran.best_enb_for(request.sla.throughput_mbps, effective_prbs)
        if enb_id is None:
            return False
        enb_node = self.ran.enb(enb_id).transport_node
        return bool(self.candidate_datacenters(request, enb_node))


__all__ = ["AllocationError", "EndToEndAllocation", "MultiDomainAllocator"]
