"""Multi-domain resource allocation.

Given an admitted slice, commit resources in all three domains —
"radio resources (PRBs) are reserved through the RAN controller,
dedicated paths are selected to guarantee the required delay and
capacity in the transport network and cloud (or mobile edge) data
centers are selected to satisfy the network slice SLAs" (paper §3).

The allocator owns two cross-domain concerns:

1. **Latency budget split** — RAN segment + transport path + DC
   processing must stay within the SLA bound; the transport path is
   searched with whatever budget the fixed RAN/DC terms leave.
2. **Edge-vs-core selection** — core capacity is plentiful but far;
   the allocator prefers the core DC when the latency budget allows and
   spills latency-tight slices (URLLC, automotive) to the edge,
   preserving scarce edge capacity for the slices that need it.

Failure in any domain rolls back the domains already committed, so a
rejected slice never leaks resources.

.. deprecated::
   The *lifecycle* methods here (``allocate``/``release``/
   ``modify_throughput``/``resize``) are the pre-driver-API commit path,
   retained for direct tests and tooling.  Production installs go
   through :mod:`repro.drivers` (the orchestrator's two-phase
   transaction over the :class:`~repro.drivers.registry.DriverRegistry`);
   mixing the two paths on one live testbed leaks driver-side
   reservation records — release through the same path you installed
   with.  The planning/feasibility surface (``demand_vector``,
   ``free_vector``, ``candidate_datacenters``, ``transport_budget_ms``,
   aggregate vectors) remains fully supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cloud.controller import CloudAllocation, CloudController
from repro.cloud.datacenter import CloudError, Datacenter, DatacenterTier
from repro.core.admission import ResourceVector
from repro.core.slices import NetworkSlice, SliceRequest
from repro.epc.components import epc_template
from repro.ran.controller import (
    RAN_SEGMENT_LATENCY_MS,
    RanAllocation,
    RanController,
)
from repro.ran.enb import RanConfigError
from repro.transport.controller import (
    TransportAllocation,
    TransportController,
    TransportError,
)
from repro.transport.paths import PathRequest


class AllocationError(RuntimeError):
    """Raised when end-to-end allocation fails; names the failing domain."""

    def __init__(self, domain: str, message: str) -> None:
        super().__init__(f"[{domain}] {message}")
        self.domain = domain
        self.message = message


@dataclass(frozen=True)
class EndToEndAllocation:
    """The slice's committed resources across all three domains."""

    ran: RanAllocation
    transport: TransportAllocation
    cloud: CloudAllocation

    @property
    def total_latency_ms(self) -> float:
        """End-to-end user-plane latency of the allocation."""
        return (
            self.ran.latency_ms
            + self.transport.delay_ms
            + self.cloud.processing_delay_ms
        )


class MultiDomainAllocator:
    """Commits slices across RAN, transport and cloud with rollback."""

    def __init__(
        self,
        ran: RanController,
        transport: TransportController,
        cloud: CloudController,
    ) -> None:
        self.ran = ran
        self.transport = transport
        self.cloud = cloud

    # ------------------------------------------------------------------
    # Demand estimation (admission input)
    # ------------------------------------------------------------------
    def demand_vector(self, request: SliceRequest) -> ResourceVector:
        """Nominal multi-domain footprint of a request.

        PRBs are dimensioned at the fleet's reference CQI; transport
        bandwidth equals the SLA throughput; vCPUs come from the vEPC
        template.
        """
        enbs = self.ran.enbs()
        if not enbs:
            raise AllocationError("ran", "no eNBs registered")
        prbs = enbs[0].prbs_for_throughput(request.sla.throughput_mbps)
        template = epc_template("probe")
        return ResourceVector(
            prbs=float(prbs),
            mbps=request.sla.throughput_mbps,
            vcpus=float(template.total_vcpus),
        )

    def free_vector(self) -> ResourceVector:
        """Current free capacity across the three domains.

        RAN free PRBs are taken from the *single best cell* (a slice
        lives on one cell, so fleet-wide sums would overstate what one
        request can use); transport uses the most permissive residual of
        the eNB uplinks; cloud sums free vCPUs.
        """
        free_prbs = max(self.ran.free_prbs().values(), default=0)
        residuals = [
            link.residual_mbps
            for enb in self.ran.enbs()
            for link in self.transport.topology.out_links(enb.transport_node)
            if link.up
        ]
        free_mbps = max(residuals, default=0.0)
        free_vcpus = sum(dc.free_vcpus for dc in self.cloud.datacenters())
        return ResourceVector(prbs=float(free_prbs), mbps=free_mbps, vcpus=float(free_vcpus))

    def aggregate_capacity_vector(self) -> ResourceVector:
        """Fleet-wide *total* capacity (free + committed).

        The resource-calendar capacity for advance reservations: total
        PRBs across cells, summed best-uplink capacity per eNB, and
        total datacenter vCPUs.
        """
        total_prbs = sum(enb.grid.total_prbs for enb in self.ran.enbs())
        total_mbps = 0.0
        for enb in self.ran.enbs():
            capacities = [
                link.capacity_mbps
                for link in self.transport.topology.out_links(enb.transport_node)
            ]
            total_mbps += max(capacities, default=0.0)
        total_vcpus = sum(dc.total_vcpus for dc in self.cloud.datacenters())
        return ResourceVector(
            prbs=float(total_prbs), mbps=total_mbps, vcpus=float(total_vcpus)
        )

    def aggregate_free_vector(self) -> ResourceVector:
        """Fleet-wide free capacity for *batch* planning.

        Unlike :meth:`free_vector` (what one request can use right now),
        this sums across cells and uplinks — the right capacity for a
        batch broker deciding a whole window, where each winner lands on
        its own cell.  A selection that fits the aggregate can still
        fail per-cell placement at install time; the installer handles
        that by booking a rejection.
        """
        free_prbs = sum(self.ran.free_prbs().values())
        free_mbps = 0.0
        for enb in self.ran.enbs():
            residuals = [
                link.residual_mbps
                for link in self.transport.topology.out_links(enb.transport_node)
                if link.up
            ]
            free_mbps += max(residuals, default=0.0)
        free_vcpus = sum(dc.free_vcpus for dc in self.cloud.datacenters())
        return ResourceVector(prbs=float(free_prbs), mbps=free_mbps, vcpus=float(free_vcpus))

    # ------------------------------------------------------------------
    # DC selection under the latency budget
    # ------------------------------------------------------------------
    def transport_budget_ms(self, request: SliceRequest, dc: Datacenter) -> float:
        """Path-delay budget left after the fixed RAN and DC terms."""
        return request.sla.max_latency_ms - RAN_SEGMENT_LATENCY_MS - dc.processing_delay_ms

    # Backwards-compatible alias (pre-driver-API name).
    _transport_budget_ms = transport_budget_ms

    def candidate_datacenters(self, request: SliceRequest, enb_node: str) -> List[Datacenter]:
        """Feasible DCs for the slice's vEPC, core-first when latency allows.

        A DC qualifies if (i) its free compute hosts the vEPC template
        and (ii) a transport path from the eNB meets the remaining
        latency budget at the SLA bandwidth.
        """
        template = epc_template(request.request_id)
        ordered = sorted(
            self.cloud.datacenters(),
            key=lambda dc: 0 if dc.tier is DatacenterTier.CORE else 1,
        )
        candidates = []
        for dc in ordered:
            if not dc.can_host_flavors(template.flavors()):
                continue
            budget = self._transport_budget_ms(request, dc)
            if budget <= 0:
                continue
            path_request = PathRequest(
                src=enb_node,
                dst=dc.gateway_node,
                min_bandwidth_mbps=request.sla.throughput_mbps,
                max_delay_ms=budget,
            )
            if self.transport.feasible(path_request):
                candidates.append(dc)
        return candidates

    # ------------------------------------------------------------------
    # Feasibility probe (admission support; commits nothing)
    # ------------------------------------------------------------------
    def feasible(self, request: SliceRequest, effective_fraction: float = 1.0) -> bool:
        """Whether the slice could currently be allocated end-to-end."""
        demand = self.demand_vector(request)
        effective_prbs = max(1, round(demand.prbs * effective_fraction))
        enb_id = self.ran.best_enb_for(request.sla.throughput_mbps, effective_prbs)
        if enb_id is None:
            return False
        enb_node = self.ran.enb(enb_id).transport_node
        return bool(self.candidate_datacenters(request, enb_node))

    # ------------------------------------------------------------------
    # Commit with rollback
    # ------------------------------------------------------------------
    def allocate(
        self,
        network_slice: NetworkSlice,
        effective_fraction: float = 1.0,
    ) -> EndToEndAllocation:
        """Commit the slice end-to-end.

        Order: RAN first (it pins the ingress node), then transport to
        the chosen DC, then the cloud stack.  On any failure, everything
        committed so far is released and :class:`AllocationError` names
        the failing domain.

        Raises:
            AllocationError: When any domain cannot serve the slice.
        """
        request = network_slice.request
        slice_id = network_slice.slice_id
        if network_slice.plmn is None:
            raise AllocationError("orchestrator", f"slice {slice_id} has no PLMN")
        # --- RAN ------------------------------------------------------
        try:
            ran_alloc = self.ran.install_slice(
                slice_id,
                network_slice.plmn,
                request.sla.throughput_mbps,
                effective_fraction=effective_fraction,
            )
        except RanConfigError as exc:
            raise AllocationError("ran", str(exc)) from exc
        enb_node = self.ran.enb(ran_alloc.enb_id).transport_node
        # --- Cloud target selection ------------------------------------
        candidates = self.candidate_datacenters(request, enb_node)
        if not candidates:
            self.ran.remove_slice(slice_id)
            raise AllocationError(
                "cloud",
                f"no datacenter satisfies compute + latency for {slice_id}",
            )
        last_error: Optional[Exception] = None
        for dc in candidates:
            budget = self._transport_budget_ms(request, dc)
            path_request = PathRequest(
                src=enb_node,
                dst=dc.gateway_node,
                min_bandwidth_mbps=request.sla.throughput_mbps,
                max_delay_ms=budget,
            )
            # --- Transport ------------------------------------------------
            try:
                transport_alloc = self.transport.reserve_path(
                    slice_id,
                    network_slice.plmn.plmn_id,
                    path_request,
                    effective_fraction=effective_fraction,
                )
            except TransportError as exc:
                last_error = exc
                continue
            # --- Cloud ----------------------------------------------------
            try:
                cloud_alloc = self.cloud.deploy(
                    slice_id, epc_template(slice_id), dc.dc_id
                )
            except CloudError as exc:
                self.transport.release_path(slice_id)
                last_error = exc
                continue
            allocation = EndToEndAllocation(
                ran=ran_alloc, transport=transport_alloc, cloud=cloud_alloc
            )
            if allocation.total_latency_ms > request.sla.max_latency_ms + 1e-9:
                # Should not happen (budget math), but never hand out a
                # latency-violating allocation.
                self.cloud.teardown(slice_id)
                self.transport.release_path(slice_id)
                last_error = AllocationError(
                    "orchestrator",
                    f"allocation latency {allocation.total_latency_ms:.2f} ms "
                    f"exceeds SLA {request.sla.max_latency_ms:.2f} ms",
                )
                continue
            network_slice.allocation = allocation
            return allocation
        self.ran.remove_slice(slice_id)
        domain = "transport" if isinstance(last_error, TransportError) else "cloud"
        raise AllocationError(domain, str(last_error)) from last_error

    def release(self, network_slice: NetworkSlice) -> None:
        """Release the slice's resources in every domain (idempotent-ish:
        domains missing the slice are skipped)."""
        slice_id = network_slice.slice_id
        if self.ran.serving_enb_of(slice_id) is not None:
            self.ran.remove_slice(slice_id)
        if self.transport.allocation_of(slice_id) is not None:
            self.transport.release_path(slice_id)
        if self.cloud.stack_of(slice_id) is not None:
            self.cloud.teardown(slice_id)
        network_slice.allocation = None

    def modify_throughput(
        self,
        network_slice: NetworkSlice,
        new_throughput_mbps: float,
        effective_fraction: float = 1.0,
    ) -> EndToEndAllocation:
        """Tenant-requested scaling: re-dimension an active slice.

        RAN and transport reservations are re-nominated in place (same
        cell, same path); the vEPC is untouched.  Atomic across the two
        domains: a transport failure rolls back the RAN change.

        Raises:
            AllocationError: If the slice is not allocated or the grown
                reservation does not fit somewhere.
        """
        if network_slice.allocation is None:
            raise AllocationError(
                "orchestrator", f"slice {network_slice.slice_id} is not allocated"
            )
        if new_throughput_mbps <= 0:
            raise AllocationError(
                "orchestrator", f"throughput must be positive, got {new_throughput_mbps}"
            )
        slice_id = network_slice.slice_id
        old = network_slice.allocation
        old_throughput = old.transport.nominal_mbps
        try:
            ran_alloc = self.ran.modify_slice(
                slice_id, new_throughput_mbps, effective_fraction
            )
        except RanConfigError as exc:
            raise AllocationError("ran", str(exc)) from exc
        try:
            transport_alloc = self.transport.modify_bandwidth(
                slice_id, new_throughput_mbps, effective_fraction
            )
        except TransportError as exc:
            # Revert the RAN re-dimensioning.
            self.ran.modify_slice(
                slice_id,
                old_throughput,
                old.ran.effective_prbs / max(1, old.ran.nominal_prbs),
            )
            raise AllocationError("transport", str(exc)) from exc
        allocation = EndToEndAllocation(
            ran=ran_alloc, transport=transport_alloc, cloud=old.cloud
        )
        network_slice.allocation = allocation
        return allocation

    def resize(self, network_slice: NetworkSlice, effective_fraction: float) -> None:
        """Apply a new overbooking shrinkage to an active slice.

        Raises:
            AllocationError: If the slice is not allocated or the resize
                does not fit in some domain.
        """
        if network_slice.allocation is None:
            raise AllocationError(
                "orchestrator", f"slice {network_slice.slice_id} is not allocated"
            )
        if not 0.0 < effective_fraction <= 1.0:
            raise AllocationError(
                "orchestrator",
                f"effective fraction must be in (0, 1], got {effective_fraction}",
            )
        allocation = network_slice.allocation
        slice_id = network_slice.slice_id
        new_prbs = max(1, round(allocation.ran.nominal_prbs * effective_fraction))
        new_mbps = allocation.transport.nominal_mbps * effective_fraction
        old_prbs = allocation.ran.effective_prbs
        try:
            self.ran.resize_slice(slice_id, new_prbs)
        except RuntimeError as exc:  # RanConfigError or PrbError
            raise AllocationError("resize", str(exc)) from exc
        try:
            self.transport.resize_path(slice_id, new_mbps)
        except RuntimeError as exc:  # TransportError or LinkError
            # Keep the two domains consistent: revert the RAN resize.
            self.ran.resize_slice(slice_id, old_prbs)
            raise AllocationError("resize", str(exc)) from exc
        network_slice.allocation = EndToEndAllocation(
            ran=RanAllocation(
                enb_id=allocation.ran.enb_id,
                nominal_prbs=allocation.ran.nominal_prbs,
                effective_prbs=new_prbs,
                latency_ms=allocation.ran.latency_ms,
            ),
            transport=self.transport.allocation_of(slice_id),
            cloud=allocation.cloud,
        )


__all__ = ["AllocationError", "EndToEndAllocation", "MultiDomainAllocator"]
