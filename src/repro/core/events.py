"""Bounded in-memory orchestration event log.

The northbound API's ``GET /v1/events`` feed is backed by this log: the
orchestrator emits an :class:`OrchestrationEvent` for every externally
observable lifecycle step (admission, rejection, activation, SLA
violation, reconfiguration, path repair, teardown) and tenants poll the
feed with a ``since`` cursor instead of scraping the dashboard snapshot.

The log is deliberately bounded (a deque): it is a *feed*, not an audit
trail — consumers that fall further behind than ``capacity`` events see
a gap, exactly like a Kafka topic with retention.  Sequence numbers are
monotonically increasing and never reused, so a consumer can detect the
gap by comparing the first returned ``seq`` with its cursor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional


class EventLogError(RuntimeError):
    """Raised on event-log misuse."""


@dataclass(frozen=True)
class OrchestrationEvent:
    """One externally visible orchestration event.

    Attributes:
        seq: Monotonic sequence number (the feed cursor).
        time: Simulation time the event occurred.
        event_type: Dotted event name, e.g. ``"slice.admitted"``.
        slice_id: Subject slice (None for system-wide events).
        tenant_id: Owning tenant (None when not slice-scoped).
        data: Small JSON-safe payload with event-specific details.
    """

    seq: int
    time: float
    event_type: str
    slice_id: Optional[str] = None
    tenant_id: Optional[str] = None
    data: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-friendly form served by ``GET /v1/events``."""
        return {
            "seq": self.seq,
            "time": self.time,
            "type": self.event_type,
            "slice_id": self.slice_id,
            "tenant_id": self.tenant_id,
            "data": dict(self.data),
        }


class EventLog:
    """Append-only bounded log with monotonically increasing cursors."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise EventLogError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._events: Deque[OrchestrationEvent] = deque(maxlen=self.capacity)
        self._next_seq = 1
        #: Optional durability tee: called with every appended event
        #: (the orchestrator journals it, which is what backs the
        #: ``GET /v1/events?after_lsn=`` durable cursor).
        self.sink: Optional[Callable[[OrchestrationEvent], None]] = None
        #: Optional control-plane observability sink (emit counter +
        #: buffered-depth gauge); ``None`` keeps emit untouched.
        self.obs = None

    def __len__(self) -> int:
        return len(self._events)

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest event (0 when empty)."""
        return self._next_seq - 1

    @property
    def first_seq(self) -> int:
        """Sequence number of the oldest retained event (0 when empty)."""
        return self._events[0].seq if self._events else 0

    def emit(
        self,
        time: float,
        event_type: str,
        slice_id: Optional[str] = None,
        tenant_id: Optional[str] = None,
        **data: object,
    ) -> OrchestrationEvent:
        """Append one event; old events are evicted beyond ``capacity``."""
        event = OrchestrationEvent(
            seq=self._next_seq,
            time=time,
            event_type=event_type,
            slice_id=slice_id,
            tenant_id=tenant_id,
            data=data,
        )
        self._next_seq += 1
        self._events.append(event)
        if self.sink is not None:
            self.sink(event)
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.counter_add("events.emitted")
            obs.gauge_set("queue.events_buffered", float(len(self._events)))
        return event

    def resume_from(self, seq: int) -> None:
        """Continue numbering after ``seq`` (crash recovery: consumers
        hold cursors into the pre-crash feed, so seq numbers must keep
        rising monotonically across the restart)."""
        self._next_seq = max(self._next_seq, int(seq) + 1)

    def since(
        self, cursor: int = 0, limit: Optional[int] = None
    ) -> List[OrchestrationEvent]:
        """Events with ``seq > cursor``, oldest first, at most ``limit``."""
        if cursor < 0:
            raise EventLogError(f"cursor must be non-negative, got {cursor}")
        out = [e for e in self._events if e.seq > cursor]
        if limit is not None:
            out = out[: max(0, int(limit))]
        return out


__all__ = ["EventLog", "EventLogError", "OrchestrationEvent"]
