"""Command-line interface.

``python -m repro <command>`` drives the reproduction without writing
code:

- ``demo`` — replay a demo-like session and print the dashboard,
- ``scenario`` — run one configurable workload and print its result row,
- ``scenarios`` — run/list the mobility+failure scenario packs
  (``repro scenarios run commuter-failure --seed 42``),
- ``sweep`` — sweep the overbooking factor and print the D2-style table,
- ``experiments`` — list the benchmark experiments and their claims.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.admission import FcfsPolicy, GreedyPricePolicy, KnapsackPolicy
from repro.core.overbooking import (
    AdaptiveOverbooking,
    FixedOverbooking,
    NoOverbooking,
)
from repro.core.slices import ServiceType
from repro.dashboard.reports import format_table
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.traffic.generator import RequestMix

ADMISSION_POLICIES = {
    "fcfs": FcfsPolicy,
    "greedy": GreedyPricePolicy,
    "knapsack": KnapsackPolicy,
}

EXPERIMENTS = [
    ("D1", "bench_d1_admission.py", "revenue-max admission beats naive acceptance"),
    ("D2", "bench_d2_overbooking_gain.py", "overbooking gain vs. penalty trade-off"),
    ("D3", "bench_d3_forecasting.py", "forecasting accuracy enables safe overbooking"),
    ("D4", "bench_d4_e2e_deployment.py", "end-to-end deployment and UE attachment"),
    ("D5", "bench_d5_transport_paths.py", "delay/capacity-guaranteed transport paths"),
    ("D6", "bench_d6_placement.py", "edge vs. core DC selection"),
    ("D7", "bench_d7_adaptive.py", "adaptive gain-vs-violation trade-off"),
    ("D8", "bench_d8_scalability.py", "orchestrator scalability"),
    ("D9", "bench_d9_batch_window.py", "batch-window broker ablation"),
    ("D10", "bench_d10_self_healing.py", "transport self-healing ablation"),
    ("D13", "bench_d13_scenarios.py", "mobility+failure scenario packs score clean"),
]


def _make_overbooking(spec: str):
    """Parse an overbooking spec: ``none``, ``fixed:<factor>`` or
    ``adaptive:<budget>``."""
    if spec == "none":
        return NoOverbooking()
    kind, _, arg = spec.partition(":")
    if kind == "fixed":
        return FixedOverbooking(float(arg or 1.5))
    if kind == "adaptive":
        return AdaptiveOverbooking(violation_budget=float(arg or 0.05))
    raise argparse.ArgumentTypeError(
        f"unknown overbooking spec {spec!r} (none | fixed:<factor> | adaptive:<budget>)"
    )


def _make_mix(spec: Optional[str]) -> Optional[RequestMix]:
    if spec is None or spec == "default":
        return None
    try:
        service_type = ServiceType(spec)
    except ValueError:
        valid = ["default"] + [t.value for t in ServiceType]
        raise argparse.ArgumentTypeError(f"unknown mix {spec!r}; valid: {valid}")
    return RequestMix.single(service_type)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="End-to-end network slice overbooking orchestrator (SIGCOMM'18 demo reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="replay a demo-like session, print the dashboard")
    demo.add_argument("--seed", type=int, default=2018)
    demo.add_argument("--hours", type=float, default=2.0)

    scenario = sub.add_parser("scenario", help="run one workload, print the result row")
    scenario.add_argument("--hours", type=float, default=2.0)
    scenario.add_argument("--interarrival", type=float, default=120.0, help="mean seconds between requests")
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--admission", choices=sorted(ADMISSION_POLICIES), default="fcfs")
    scenario.add_argument("--overbooking", type=_make_overbooking, default=NoOverbooking())
    scenario.add_argument("--mix", type=_make_mix, default=None)
    scenario.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    scenarios = sub.add_parser(
        "scenarios", help="mobility+failure scenario packs (scenario engine)"
    )
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scenarios_run = scenarios_sub.add_parser(
        "run", help="run one pack and print its ScenarioReport"
    )
    scenarios_run.add_argument("name", help="pack name, or a path to a spec JSON file")
    scenarios_run.add_argument("--seed", type=int, default=0)
    scenarios_run.add_argument(
        "--horizon", type=float, default=None, help="override the horizon (seconds)"
    )
    scenarios_run.add_argument(
        "--out", default=None, help="also write the full report JSON to this path"
    )
    scenarios_run.add_argument(
        "--json", action="store_true", help="emit the report JSON on stdout"
    )
    scenarios_sub.add_parser("list", help="list the built-in packs")

    sweep = sub.add_parser("sweep", help="sweep the overbooking factor (D2 table)")
    sweep.add_argument("--hours", type=float, default=2.0)
    sweep.add_argument("--seed", type=int, default=4)
    sweep.add_argument(
        "--factors", type=float, nargs="+", default=[1.0, 1.5, 2.0, 2.5]
    )

    sub.add_parser("experiments", help="list the benchmark experiments")
    return parser


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.api.routes import build_orchestrator_api
    from repro.core.orchestrator import Orchestrator, OrchestratorConfig
    from repro.dashboard.dashboard import Dashboard
    from repro.experiments.testbed import build_testbed
    from repro.sim.engine import Simulator
    from repro.sim.randomness import RandomStreams
    from repro.traffic.generator import RequestGenerator

    testbed = build_testbed()
    sim = Simulator()
    streams = RandomStreams(seed=args.seed)
    orchestrator = Orchestrator(
        sim=sim,
        allocator=testbed.allocator,
        plmn_pool=testbed.plmn_pool,
        admission=GreedyPricePolicy(),
        overbooking=AdaptiveOverbooking(violation_budget=0.05),
        config=OrchestratorConfig(),
        streams=streams,
    )
    orchestrator.start()
    # Tenants talk to the orchestrator through the versioned northbound
    # API, exactly as the demo dashboard would.  API clients cannot ship
    # a TrafficProfile, so the generator's own profile draw is discarded
    # and the service re-samples one from the vertical spec.
    api = build_orchestrator_api(orchestrator)

    def submit_via_v1(request, profile) -> None:
        api.post(
            "/v1/slices",
            body={
                "service_type": request.service_type.value,
                "throughput_mbps": request.sla.throughput_mbps,
                "max_latency_ms": request.sla.max_latency_ms,
                "duration_s": request.sla.duration_s,
                "availability": request.sla.availability,
                "price": request.price,
                "penalty_rate": request.penalty_rate,
                "n_users": request.n_users,
            },
            headers={"X-Tenant-Id": request.tenant_id},
        )

    generator = RequestGenerator(streams.stream("arrivals"), arrival_rate_per_s=1 / 300.0)
    generator.drive(sim, args.hours * 3_600.0, submit_via_v1)
    sim.run_until(args.hours * 3_600.0)
    print(Dashboard(orchestrator).render())
    feed = api.get(f"/v1/events?since={max(0, orchestrator.events.last_seq - 8)}").body
    if feed["events"]:
        print("\n--- Recent events (GET /v1/events) ---")
        for event in feed["events"]:
            print(
                f"  seq={event['seq']:<4d} t={event['time']:8.0f}s "
                f"{event['type']:<20s} {event['slice_id'] or '-'}"
            )
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        horizon_s=args.hours * 3_600.0,
        arrival_rate_per_s=1.0 / args.interarrival,
        seed=args.seed,
        admission=ADMISSION_POLICIES[args.admission](),
        overbooking=args.overbooking,
        mix=args.mix,
    )
    result = run_scenario(config)
    row = result.row()
    if args.json:
        print(json.dumps(row, sort_keys=True))
    else:
        print(format_table(list(row.keys()), [list(row.values())]))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    rows = []
    for factor in args.factors:
        overbooking = NoOverbooking() if factor <= 1.0 else FixedOverbooking(factor)
        result = run_scenario(
            ScenarioConfig(
                horizon_s=args.hours * 3_600.0,
                arrival_rate_per_s=1 / 45.0,
                seed=args.seed,
                overbooking=overbooking,
                mix=RequestMix.single(ServiceType.EMBB),
            )
        )
        rows.append(
            [
                factor,
                result.mean_multiplexing_gain,
                result.violation_rate,
                result.gross_revenue,
                result.total_penalties,
                result.net_revenue,
            ]
        )
    print(
        format_table(
            ["factor", "gain", "viol_rate", "gross", "penalties", "net"], rows
        )
    )
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    print(format_table(["id", "bench", "claim"], EXPERIMENTS))
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    import os

    from repro.scenarios import (
        ScenarioError,
        build_named,
        load_scenario_file,
        named_scenarios,
        run_scenario,
    )
    from repro.scenarios.spec import ScenarioSpec

    if args.scenarios_command == "list":
        from repro.scenarios.spec import _NAMED

        rows = [
            [name, _NAMED[name](0).mobility.model, len(_NAMED[name](0).failures)]
            for name in named_scenarios()
        ]
        print(format_table(["pack", "mobility", "failures"], rows))
        return 0

    try:
        if os.path.exists(args.name) or args.name.endswith(".json"):
            spec = load_scenario_file(args.name)
            payload = spec.to_dict()
            payload["seed"] = args.seed
            spec = ScenarioSpec.from_dict(payload)
        else:
            spec = build_named(args.name, seed=args.seed)
        if args.horizon is not None:
            payload = spec.to_dict()
            payload["horizon_s"] = args.horizon
            spec = ScenarioSpec.from_dict(payload)
    except (ScenarioError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = run_scenario(spec)
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    # Non-zero exit when the run is dirty, so CI smokes fail loudly.
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "demo": cmd_demo,
        "scenario": cmd_scenario,
        "scenarios": cmd_scenarios,
        "sweep": cmd_sweep,
        "experiments": cmd_experiments,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
