"""Trace-driven demand profiles.

Ref [4] of the paper (Sciancalepore et al., INFOCOM'17) trains its
forecaster on a real operator dataset (the Telecom Italia Milan grid).
That dataset is proprietary, so — per the reproduction's substitution
rule — :class:`SyntheticCityTrace` generates traces with the same
published structure: a strong daily cycle, a weekly cycle (weekday vs.
weekend amplitude), lognormal multiplicative noise and occasional flash
events.  :class:`TraceProfile` replays any demand array as a slice
profile, so recorded or generated traces plug into the same machinery
as the analytic shapes.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.traffic.patterns import SECONDS_PER_DAY, TrafficProfile

SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


class TraceProfile(TrafficProfile):
    """Replays a sampled demand trace (fractions of peak).

    Args:
        peak_mbps: Scale of the trace (fraction 1.0 ⇒ this many Mb/s).
        samples: Demand fractions, one per ``sample_period_s``.
        sample_period_s: Spacing of the samples.
        wrap: Replay from the start after the trace ends (else hold the
            last sample).
    """

    def __init__(
        self,
        peak_mbps: float,
        samples: Sequence[float],
        sample_period_s: float = 600.0,
        wrap: bool = True,
        noise_std: float = 0.0,
    ) -> None:
        super().__init__(peak_mbps, noise_std)
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("trace must contain at least one sample")
        if np.any(~np.isfinite(arr)) or np.any(arr < 0):
            raise ValueError("trace samples must be finite and non-negative")
        if sample_period_s <= 0:
            raise ValueError(f"sample period must be positive, got {sample_period_s}")
        self.samples = arr
        self.sample_period_s = float(sample_period_s)
        self.wrap = bool(wrap)

    @property
    def duration_s(self) -> float:
        """Length of one full trace pass."""
        return self.samples.size * self.sample_period_s

    def fraction(self, t: float) -> float:
        idx = int(t / self.sample_period_s)
        if self.wrap:
            idx %= self.samples.size
        else:
            idx = min(idx, self.samples.size - 1)
        return float(self.samples[idx])


class SyntheticCityTrace:
    """Generator of Milan-grid-like mobile demand traces.

    The published characterization of city-scale mobile traffic (used by
    ref [4]) has three robust features this generator reproduces:

    1. a dominant diurnal cycle whose peak hour depends on land use
       (office ~14:00, residential ~21:00, transport ~08:00/18:00),
    2. a weekly cycle — weekends lose 20-40% of weekday volume,
    3. heavy-tailed short-term fluctuations (lognormal multiplicative
       noise) plus rare flash events (crowd gatherings).

    Args:
        land_use: "office", "residential" or "transport" — sets the
            diurnal phase/shape.
        weekend_damping: Multiplier applied on days 5-6 of each week.
        noise_sigma: σ of the lognormal multiplicative noise.
        flash_probability: Per-sample probability of a flash event.
        flash_magnitude: Demand multiplier during a flash event.
    """

    PHASES = {
        "office": (14.0, 1.0),  # peak hour, single-bump weight
        "residential": (21.0, 1.0),
        "transport": (8.0, 0.5),  # two bumps: morning + evening
    }

    def __init__(
        self,
        land_use: str = "residential",
        weekend_damping: float = 0.7,
        noise_sigma: float = 0.15,
        flash_probability: float = 0.002,
        flash_magnitude: float = 1.8,
    ) -> None:
        if land_use not in self.PHASES:
            raise ValueError(
                f"unknown land use {land_use!r}; valid: {sorted(self.PHASES)}"
            )
        if not 0.0 < weekend_damping <= 1.0:
            raise ValueError(f"weekend damping must be in (0, 1], got {weekend_damping}")
        if noise_sigma < 0:
            raise ValueError(f"noise sigma must be non-negative, got {noise_sigma}")
        if not 0.0 <= flash_probability < 1.0:
            raise ValueError("flash probability must be in [0, 1)")
        if flash_magnitude < 1.0:
            raise ValueError(f"flash magnitude must be ≥ 1, got {flash_magnitude}")
        self.land_use = land_use
        self.weekend_damping = float(weekend_damping)
        self.noise_sigma = float(noise_sigma)
        self.flash_probability = float(flash_probability)
        self.flash_magnitude = float(flash_magnitude)

    def _deterministic_fraction(self, t: float) -> float:
        """Diurnal × weekly structure without noise, in [0, 1]."""
        peak_hour, single = self.PHASES[self.land_use]
        hour = (t % SECONDS_PER_DAY) / 3_600.0
        main = 0.5 - 0.5 * math.cos(2.0 * math.pi * (hour - peak_hour - 12.0) / 24.0)
        if single < 1.0:  # transport: add the second (evening) commute bump
            evening = 0.5 - 0.5 * math.cos(
                2.0 * math.pi * (hour - peak_hour - 10.0 - 12.0) / 24.0
            )
            main = max(main * 2 * single, evening * 2 * single)
            main = min(main, 1.0)
        base = 0.15 + 0.85 * main
        day_of_week = int(t // SECONDS_PER_DAY) % 7
        if day_of_week >= 5:
            base *= self.weekend_damping
        return min(1.0, base)

    def generate(
        self,
        n_days: int = 7,
        sample_period_s: float = 600.0,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Generate a fraction-of-peak trace.

        Returns an array of length ``n_days × day/sample_period``,
        clipped to [0, ~flash_magnitude].
        """
        if n_days <= 0:
            raise ValueError(f"n_days must be positive, got {n_days}")
        rng = rng or np.random.default_rng(0)
        n = int(n_days * SECONDS_PER_DAY / sample_period_s)
        times = np.arange(n) * sample_period_s
        base = np.array([self._deterministic_fraction(float(t)) for t in times])
        noise = rng.lognormal(mean=0.0, sigma=self.noise_sigma, size=n)
        flashes = np.where(
            rng.random(n) < self.flash_probability, self.flash_magnitude, 1.0
        )
        return np.clip(base * noise * flashes, 0.0, self.flash_magnitude)

    def profile(
        self,
        peak_mbps: float,
        n_days: int = 7,
        sample_period_s: float = 600.0,
        rng: Optional[np.random.Generator] = None,
    ) -> TraceProfile:
        """Generate a trace and wrap it as a replayable profile."""
        samples = self.generate(n_days, sample_period_s, rng)
        return TraceProfile(
            peak_mbps, samples, sample_period_s=sample_period_s, wrap=True
        )


__all__ = ["SECONDS_PER_WEEK", "SyntheticCityTrace", "TraceProfile"]
