"""Synthetic per-slice traffic demand profiles.

A profile maps (absolute simulation time, RNG) to an instantaneous
demand in Mb/s.  Profiles are expressed as a fraction of the slice's SLA
throughput so the same shape can be reused across slices of different
sizes; :meth:`TrafficProfile.demand` returns absolute Mb/s.

The key quantity for overbooking is the *mean-to-peak ratio*: a slice
that reserves its peak but averages 40% of it leaves 60% of the
reservation idle — that idle fraction is what statistical multiplexing
recovers (refs [1] and [4] of the paper).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

SECONDS_PER_DAY = 86_400.0


class TrafficProfile(ABC):
    """Base class: instantaneous slice demand as a function of time.

    Subclasses implement :meth:`fraction`, the deterministic shape in
    ``[0, 1]`` (possibly above 1 for overload bursts); :meth:`demand`
    scales it to absolute Mb/s and adds multiplicative noise.
    """

    def __init__(self, peak_mbps: float, noise_std: float = 0.05) -> None:
        if peak_mbps <= 0:
            raise ValueError(f"peak must be positive, got {peak_mbps}")
        if noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {noise_std}")
        self.peak_mbps = float(peak_mbps)
        self.noise_std = float(noise_std)

    @abstractmethod
    def fraction(self, t: float) -> float:
        """Deterministic demand shape at time ``t`` as a fraction of peak."""

    def demand(self, t: float, rng: Optional[np.random.Generator] = None) -> float:
        """Instantaneous demand in Mb/s at time ``t`` (noisy if ``rng`` given)."""
        base = self.fraction(t) * self.peak_mbps
        if rng is not None and self.noise_std > 0:
            base *= max(0.0, 1.0 + rng.normal(0.0, self.noise_std))
        return max(0.0, base)

    def mean_fraction(self, horizon_s: float = SECONDS_PER_DAY, samples: int = 288) -> float:
        """Time-averaged fraction of peak over ``horizon_s`` (deterministic part)."""
        times = np.linspace(0.0, horizon_s, samples, endpoint=False)
        return float(np.mean([self.fraction(float(t)) for t in times]))

    def mean_mbps(self, horizon_s: float = SECONDS_PER_DAY) -> float:
        """Time-averaged absolute demand in Mb/s."""
        return self.mean_fraction(horizon_s) * self.peak_mbps


class ConstantProfile(TrafficProfile):
    """Flat demand at ``level`` × peak — the no-multiplexing-gain case."""

    def __init__(self, peak_mbps: float, level: float = 1.0, noise_std: float = 0.05) -> None:
        super().__init__(peak_mbps, noise_std)
        if not 0.0 <= level <= 1.5:
            raise ValueError(f"level must be in [0, 1.5], got {level}")
        self.level = float(level)

    def fraction(self, t: float) -> float:
        return self.level


class DiurnalProfile(TrafficProfile):
    """Sinusoidal day/night pattern — the canonical mobile-traffic shape.

    ``fraction(t) = base + (1 - base) * (0.5 - 0.5 * cos(2π (t/day - phase)))``
    peaks once per period; ``base`` is the overnight floor.  Following the
    mobile-traffic characterization in ref [4], different verticals peak at
    different phases (office vs. residential vs. road traffic), which is
    precisely the anti-correlation overbooking exploits.
    """

    def __init__(
        self,
        peak_mbps: float,
        base: float = 0.2,
        phase: float = 0.0,
        period_s: float = SECONDS_PER_DAY,
        noise_std: float = 0.05,
    ) -> None:
        super().__init__(peak_mbps, noise_std)
        if not 0.0 <= base < 1.0:
            raise ValueError(f"base must be in [0, 1), got {base}")
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        self.base = float(base)
        self.phase = float(phase) % 1.0
        self.period_s = float(period_s)

    def fraction(self, t: float) -> float:
        cycle = (t / self.period_s - self.phase) % 1.0
        return self.base + (1.0 - self.base) * (0.5 - 0.5 * math.cos(2.0 * math.pi * cycle))


class OnOffProfile(TrafficProfile):
    """Square-wave demand: ``on_fraction`` of each period at peak, else floor.

    Models machine-type (mMTC) reporting cycles and scheduled batch
    workloads; the abrupt edges stress the forecaster more than the
    smooth diurnal shape does.
    """

    def __init__(
        self,
        peak_mbps: float,
        on_fraction: float = 0.3,
        period_s: float = 3_600.0,
        floor: float = 0.05,
        noise_std: float = 0.05,
    ) -> None:
        super().__init__(peak_mbps, noise_std)
        if not 0.0 < on_fraction <= 1.0:
            raise ValueError(f"on_fraction must be in (0, 1], got {on_fraction}")
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        if not 0.0 <= floor <= 1.0:
            raise ValueError(f"floor must be in [0, 1], got {floor}")
        self.on_fraction = float(on_fraction)
        self.period_s = float(period_s)
        self.floor = float(floor)

    def fraction(self, t: float) -> float:
        cycle = (t % self.period_s) / self.period_s
        return 1.0 if cycle < self.on_fraction else self.floor


class SpikeProfile(TrafficProfile):
    """Low steady demand with deterministic short spikes to peak.

    Models URLLC / automotive safety bursts: tiny average load but hard
    latency and throughput requirements during the spike.  Spike times
    are derived from a hash of the spike index so the profile is
    deterministic given its parameters.
    """

    def __init__(
        self,
        peak_mbps: float,
        baseline: float = 0.1,
        spike_every_s: float = 600.0,
        spike_duration_s: float = 30.0,
        noise_std: float = 0.05,
    ) -> None:
        super().__init__(peak_mbps, noise_std)
        if not 0.0 <= baseline < 1.0:
            raise ValueError(f"baseline must be in [0, 1), got {baseline}")
        if spike_every_s <= 0 or spike_duration_s <= 0:
            raise ValueError("spike interval and duration must be positive")
        if spike_duration_s >= spike_every_s:
            raise ValueError("spike duration must be shorter than interval")
        self.baseline = float(baseline)
        self.spike_every_s = float(spike_every_s)
        self.spike_duration_s = float(spike_duration_s)

    def fraction(self, t: float) -> float:
        offset = t % self.spike_every_s
        return 1.0 if offset < self.spike_duration_s else self.baseline


__all__ = [
    "SECONDS_PER_DAY",
    "ConstantProfile",
    "DiurnalProfile",
    "OnOffProfile",
    "SpikeProfile",
    "TrafficProfile",
]
