"""Traffic models: demand profiles, vertical presets and request arrivals.

The overbooking engine only pays off when slice traffic is *bursty and
time-varying* relative to its SLA reservation; this package provides the
synthetic stand-in for the demo's live UE traffic — diurnal profiles with
configurable peak-to-mean ratio and noise, plus per-vertical presets
(eMBB, URLLC, mMTC, automotive, e-health) and a Poisson slice-request
generator used by every experiment.
"""

from repro.traffic.patterns import (
    ConstantProfile,
    DiurnalProfile,
    OnOffProfile,
    SpikeProfile,
    TrafficProfile,
)
from repro.traffic.verticals import VerticalSpec, VERTICALS, vertical_for
from repro.traffic.generator import RequestGenerator, RequestMix

__all__ = [
    "ConstantProfile",
    "DiurnalProfile",
    "OnOffProfile",
    "SpikeProfile",
    "TrafficProfile",
    "VerticalSpec",
    "VERTICALS",
    "vertical_for",
    "RequestGenerator",
    "RequestMix",
]
