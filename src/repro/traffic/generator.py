"""Slice-request arrival process.

Generates the demo's "heterogeneous network slice requests": a marked
Poisson process whose marks are drawn from a weighted mix of vertical
presets.  Used both to drive live simulations (scheduling arrivals on
the event engine) and to pre-materialize request batches for the
admission benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.slices import ServiceType, SliceRequest
from repro.traffic.patterns import TrafficProfile
from repro.traffic.verticals import VERTICALS, VerticalSpec


@dataclass
class RequestMix:
    """Weighted mixture of verticals for the arrival process.

    Attributes:
        weights: Mapping service type → relative weight (normalized
            internally; weights need not sum to one).
    """

    weights: Dict[ServiceType, float] = field(
        default_factory=lambda: {
            ServiceType.EMBB: 0.35,
            ServiceType.URLLC: 0.15,
            ServiceType.MMTC: 0.2,
            ServiceType.AUTOMOTIVE: 0.15,
            ServiceType.EHEALTH: 0.15,
        }
    )

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("request mix must contain at least one vertical")
        total = sum(self.weights.values())
        if total <= 0:
            raise ValueError("request mix weights must sum to a positive value")
        self._types = list(self.weights)
        self._probs = np.array([self.weights[t] for t in self._types]) / total

    def sample_type(self, rng: np.random.Generator) -> ServiceType:
        """Draw one vertical according to the mix weights."""
        idx = int(rng.choice(len(self._types), p=self._probs))
        return self._types[idx]

    @classmethod
    def single(cls, service_type: ServiceType) -> "RequestMix":
        """A degenerate mix producing only ``service_type`` requests."""
        return cls(weights={service_type: 1.0})


class RequestGenerator:
    """Poisson slice-request generator with per-vertical marks.

    Args:
        rng: Random generator (use a dedicated stream from
            :class:`repro.sim.RandomStreams` for reproducibility).
        arrival_rate_per_s: Mean request arrival rate λ.
        mix: Vertical mixture for request marks.
        tenants: Tenant names cycled through round-robin-with-jitter.
        specs: Override the vertical preset table (tests use this).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        arrival_rate_per_s: float,
        mix: Optional[RequestMix] = None,
        tenants: Optional[List[str]] = None,
        specs: Optional[Dict[ServiceType, VerticalSpec]] = None,
    ) -> None:
        if arrival_rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {arrival_rate_per_s}")
        self._rng = rng
        self.arrival_rate_per_s = float(arrival_rate_per_s)
        self.mix = mix or RequestMix()
        self.tenants = tenants or [
            "acme-automotive",
            "mediclinic",
            "streamco",
            "sensornet",
            "railops",
        ]
        self._specs = specs or VERTICALS
        self.generated = 0

    def next_interarrival(self) -> float:
        """Draw the next exponential inter-arrival gap in seconds."""
        return float(self._rng.exponential(1.0 / self.arrival_rate_per_s))

    def sample_request(self, arrival_time: float) -> Tuple[SliceRequest, TrafficProfile]:
        """Draw one request and the traffic profile its UEs will follow."""
        service_type = self.mix.sample_type(self._rng)
        spec = self._specs[service_type]
        tenant = self.tenants[int(self._rng.integers(0, len(self.tenants)))]
        request = spec.sample_request(tenant, self._rng, arrival_time=arrival_time)
        profile = spec.sample_profile(request.sla.throughput_mbps, self._rng)
        self.generated += 1
        return request, profile

    def batch(
        self, horizon_s: float, start_time: float = 0.0
    ) -> List[Tuple[SliceRequest, TrafficProfile]]:
        """Materialize every arrival in ``[start_time, start_time + horizon_s)``."""
        out: List[Tuple[SliceRequest, TrafficProfile]] = []
        t = start_time + self.next_interarrival()
        while t < start_time + horizon_s:
            out.append(self.sample_request(t))
            t += self.next_interarrival()
        return out

    def iter_arrivals(
        self, horizon_s: float, start_time: float = 0.0
    ) -> Iterator[Tuple[SliceRequest, TrafficProfile]]:
        """Lazy variant of :meth:`batch`."""
        t = start_time + self.next_interarrival()
        while t < start_time + horizon_s:
            yield self.sample_request(t)
            t += self.next_interarrival()

    def drive(
        self,
        sim,
        horizon_s: float,
        on_request: Callable[[SliceRequest, TrafficProfile], None],
    ) -> int:
        """Schedule all arrivals within ``horizon_s`` onto a simulator.

        Arrivals are pre-materialized (so RNG draws do not interleave
        with other simulation randomness) and scheduled as events.

        Returns:
            Number of arrivals scheduled.
        """
        arrivals = self.batch(horizon_s, start_time=sim.now)

        def make_cb(req: SliceRequest, prof: TrafficProfile) -> Callable[[], None]:
            return lambda: on_request(req, prof)

        for request, profile in arrivals:
            sim.schedule_at(request.arrival_time, make_cb(request, profile), name="request-arrival")
        return len(arrivals)


__all__ = ["RequestGenerator", "RequestMix"]
