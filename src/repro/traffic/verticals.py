"""Per-vertical slice presets.

The demo submits *heterogeneous* slice requests; these presets encode a
plausible request distribution per vertical: SLA ranges (throughput,
latency, duration), economics (price per Mb/s·hour, penalty multiplier)
and the traffic shape its UEs generate.  Numbers follow common 5G
service-class targets (e.g. URLLC latency ≤ 10 ms end-to-end, eMBB tens
of Mb/s) rather than any single standard table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.core.slices import SLA, ServiceType, SliceRequest
from repro.traffic.patterns import (
    ConstantProfile,
    DiurnalProfile,
    OnOffProfile,
    SpikeProfile,
    TrafficProfile,
)


@dataclass(frozen=True)
class VerticalSpec:
    """Distribution of slice requests for one vertical industry.

    Attributes:
        service_type: The archetype tag placed on generated requests.
        throughput_range_mbps: Uniform range for the SLA throughput.
        latency_range_ms: Uniform range for the SLA latency bound.
        duration_range_s: Uniform range for the slice lifetime.
        price_per_mbps_hour: Revenue per reserved Mb/s per hour.
        penalty_multiplier: Penalty-per-violation-epoch as a multiple of
            the per-epoch price.
        availability: SLA availability target.
        users_range: Uniform integer range for expected UE count.
        profile_factory: Builds the traffic profile given
            (peak_mbps, rng) — rng randomizes phase/period only.
    """

    service_type: ServiceType
    throughput_range_mbps: Tuple[float, float]
    latency_range_ms: Tuple[float, float]
    duration_range_s: Tuple[float, float]
    price_per_mbps_hour: float
    penalty_multiplier: float
    availability: float
    users_range: Tuple[int, int]
    profile_factory: Callable[[float, np.random.Generator], TrafficProfile]

    def sample_request(
        self,
        tenant_id: str,
        rng: np.random.Generator,
        arrival_time: float = 0.0,
    ) -> SliceRequest:
        """Draw one slice request from this vertical's distribution."""
        thr = float(rng.uniform(*self.throughput_range_mbps))
        lat = float(rng.uniform(*self.latency_range_ms))
        dur = float(rng.uniform(*self.duration_range_s))
        sla = SLA(
            throughput_mbps=thr,
            max_latency_ms=lat,
            duration_s=dur,
            availability=self.availability,
        )
        hours = dur / 3_600.0
        price = self.price_per_mbps_hour * thr * hours
        # Penalty per violation epoch, scaled so that violating every
        # epoch of the slice's life forfeits penalty_multiplier × price.
        epochs = max(1.0, dur / 60.0)
        penalty_rate = self.penalty_multiplier * price / epochs
        users = int(rng.integers(self.users_range[0], self.users_range[1] + 1))
        return SliceRequest(
            tenant_id=tenant_id,
            service_type=self.service_type,
            sla=sla,
            price=price,
            penalty_rate=penalty_rate,
            arrival_time=arrival_time,
            n_users=users,
        )

    def sample_profile(self, peak_mbps: float, rng: np.random.Generator) -> TrafficProfile:
        """Build the traffic profile for a slice with SLA peak ``peak_mbps``."""
        return self.profile_factory(peak_mbps, rng)


def _embb_profile(peak: float, rng: np.random.Generator) -> TrafficProfile:
    return DiurnalProfile(peak, base=0.15, phase=float(rng.uniform(0.0, 1.0)), noise_std=0.08)


def _urllc_profile(peak: float, rng: np.random.Generator) -> TrafficProfile:
    return SpikeProfile(
        peak,
        baseline=0.08,
        spike_every_s=float(rng.uniform(300.0, 900.0)),
        spike_duration_s=float(rng.uniform(10.0, 40.0)),
        noise_std=0.05,
    )


def _mmtc_profile(peak: float, rng: np.random.Generator) -> TrafficProfile:
    return OnOffProfile(
        peak,
        on_fraction=float(rng.uniform(0.15, 0.35)),
        period_s=float(rng.uniform(1_800.0, 5_400.0)),
        floor=0.05,
        noise_std=0.1,
    )


def _automotive_profile(peak: float, rng: np.random.Generator) -> TrafficProfile:
    # Road traffic peaks at commute hours: two bumps per day ≈ half-day period.
    return DiurnalProfile(
        peak,
        base=0.1,
        phase=float(rng.uniform(0.25, 0.45)),
        period_s=43_200.0,
        noise_std=0.1,
    )


def _ehealth_profile(peak: float, rng: np.random.Generator) -> TrafficProfile:
    return ConstantProfile(peak, level=float(rng.uniform(0.3, 0.5)), noise_std=0.05)


VERTICALS: Dict[ServiceType, VerticalSpec] = {
    ServiceType.EMBB: VerticalSpec(
        service_type=ServiceType.EMBB,
        throughput_range_mbps=(10.0, 25.0),
        latency_range_ms=(40.0, 100.0),
        duration_range_s=(1_800.0, 14_400.0),
        price_per_mbps_hour=1.0,
        penalty_multiplier=1.5,
        availability=0.95,
        users_range=(20, 80),
        profile_factory=_embb_profile,
    ),
    ServiceType.URLLC: VerticalSpec(
        service_type=ServiceType.URLLC,
        throughput_range_mbps=(2.0, 10.0),
        latency_range_ms=(5.0, 15.0),
        duration_range_s=(900.0, 7_200.0),
        price_per_mbps_hour=6.0,
        penalty_multiplier=4.0,
        availability=0.99,
        users_range=(5, 20),
        profile_factory=_urllc_profile,
    ),
    ServiceType.MMTC: VerticalSpec(
        service_type=ServiceType.MMTC,
        throughput_range_mbps=(1.0, 5.0),
        latency_range_ms=(100.0, 500.0),
        duration_range_s=(3_600.0, 28_800.0),
        price_per_mbps_hour=0.5,
        penalty_multiplier=1.0,
        availability=0.9,
        users_range=(100, 500),
        profile_factory=_mmtc_profile,
    ),
    ServiceType.AUTOMOTIVE: VerticalSpec(
        service_type=ServiceType.AUTOMOTIVE,
        throughput_range_mbps=(5.0, 20.0),
        latency_range_ms=(10.0, 30.0),
        duration_range_s=(1_800.0, 10_800.0),
        price_per_mbps_hour=3.0,
        penalty_multiplier=3.0,
        availability=0.98,
        users_range=(30, 120),
        profile_factory=_automotive_profile,
    ),
    ServiceType.EHEALTH: VerticalSpec(
        service_type=ServiceType.EHEALTH,
        throughput_range_mbps=(3.0, 15.0),
        latency_range_ms=(15.0, 50.0),
        duration_range_s=(3_600.0, 21_600.0),
        price_per_mbps_hour=4.0,
        penalty_multiplier=3.5,
        availability=0.99,
        users_range=(10, 40),
        profile_factory=_ehealth_profile,
    ),
}


def vertical_for(service_type: ServiceType) -> VerticalSpec:
    """Lookup the preset for ``service_type``.

    Raises:
        KeyError: If the service type has no preset (should not happen —
            every :class:`ServiceType` member has an entry).
    """
    return VERTICALS[service_type]


__all__ = ["VERTICALS", "VerticalSpec", "vertical_for"]
