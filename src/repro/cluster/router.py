"""The v1 API router of the sharded control plane.

:class:`ShardRouter` speaks the same in-process REST surface as a
single shard's :func:`~repro.api.v1.build_v1_api` — same verbs, same
paths, same error envelope — but in front of N shards:

- **Tenant-affine** calls (create/rescale/delete slices, bookings,
  what-if) are routed to the one shard the
  :class:`~repro.cluster.ring.HashRing` assigns the tenant, and the
  shard's own API answers verbatim.  Detail reads without a tenant
  header fall back to scatter-gather (first non-404 wins).
- **Collection** calls fan out to every shard and merge: pagination is
  re-cut over the globally sorted union (duplicate-free and ordered —
  the cross-shard semantics suite pins this), every item annotated
  with its ``shard``.
- **The durable event feed** merges per-shard WAL cursors as a
  *vector*: LSNs are per-shard sequences, so one integer cannot
  address a cluster position.  ``GET /v1/events?after_lsn=`` accepts
  a plain integer (broadcast to every shard — ``0`` starts from the
  floor) or the vector form ``0:15,1:7``; the response's
  ``next_after_lsn`` advances each component only past the events the
  merged page actually included, so a consumer resuming from it never
  replays and never skips.
- **Admin/metrics** fan out: one Prometheus scrape with a ``shard``
  label injected per series, per-shard state/traces keyed by shard id.

The router holds :class:`~repro.cluster.shard.ShardWorker` objects and
reads their ``api``/``service`` attributes per call — a failover that
swaps a shard's control plane (promotion) redirects traffic with no
router surgery.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlencode

from repro.api.rest import Request, Response, RestApi
from repro.api.schemas import (
    ValidationError,
    error_response,
    parse_int_param,
    parse_pagination,
)
from repro.api.v1 import TENANT_HEADER
from repro.cluster.ring import HashRing
from repro.obs.registry import NOOP_OBS


class VectorCursor:
    """A per-shard LSN position in the merged durable event feed.

    Encoded ``"<shard>:<lsn>,<shard>:<lsn>,..."`` (e.g. ``0:15,1:7``);
    a bare integer broadcasts one LSN to every shard (``0`` = from the
    replay floor everywhere).
    """

    def __init__(self, positions: Dict[int, int]) -> None:
        self.positions = {int(k): int(v) for k, v in positions.items()}

    @classmethod
    def parse(cls, raw: str, shard_count: int) -> "VectorCursor":
        """Parse a cursor string; raises ``ValidationError`` (the 400
        envelope) on malformed input or unknown shard components."""
        raw = (raw or "0").strip()
        try:
            if ":" not in raw:
                scalar = int(raw)
                if scalar < 0:
                    raise ValueError("negative")
                return cls({k: scalar for k in range(shard_count)})
            positions = {k: 0 for k in range(shard_count)}
            for part in raw.split(","):
                shard_text, _, lsn_text = part.partition(":")
                shard, lsn = int(shard_text), int(lsn_text)
                if shard not in positions or lsn < 0:
                    raise ValueError(part)
                positions[shard] = lsn
            return cls(positions)
        except ValueError:
            raise ValidationError(
                "invalid_parameter",
                f"malformed event cursor {raw!r}; expected an integer or "
                f'"<shard>:<lsn>,..." with shards in [0, {shard_count})',
                field="after_lsn",
            ) from None

    def get(self, shard_id: int) -> int:
        return self.positions.get(shard_id, 0)

    def advanced(self, seen: Dict[int, int]) -> "VectorCursor":
        """A copy moved past the per-shard LSNs actually delivered."""
        merged = dict(self.positions)
        for shard_id, lsn in seen.items():
            merged[shard_id] = max(merged.get(shard_id, 0), lsn)
        return VectorCursor(merged)

    def encode(self) -> str:
        return ",".join(
            f"{shard}:{lsn}" for shard, lsn in sorted(self.positions.items())
        )


class ShardRouter:
    """Routes, fans out, and merges the v1 surface over N shards.

    Args:
        ring: The tenant → shard map (shared with the cluster builder).
        shards: Shard workers, indexed by ``shard_id``; each exposes
            ``.api`` (a v1 :class:`RestApi`) and ``.service``.
        obs: Optional control-plane observability sink; when enabled
            the router times its dispatches (``router.dispatch``
            histogram, labelled by route kind).
    """

    def __init__(
        self, ring: HashRing, shards: Sequence[Any], obs: Any = None
    ) -> None:
        if ring.shard_count != len(shards):
            raise ValueError(
                f"ring covers {ring.shard_count} shards, got {len(shards)}"
            )
        self.ring = ring
        self.shards = list(shards)
        self.obs = obs if obs is not None else NOOP_OBS
        self.api = RestApi(enveloped_prefixes=("/v1",))
        self._register()

    # ------------------------------------------------------------------
    # Public dispatch surface (mirrors RestApi)
    # ------------------------------------------------------------------
    def dispatch(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        with self.obs.timed("router.dispatch", label=method.upper()):
            return self.api.dispatch(method, path, body, headers)

    def get(self, path: str, headers: Optional[Dict[str, str]] = None) -> Response:
        return self.dispatch("GET", path, headers=headers)

    def post(
        self,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        return self.dispatch("POST", path, body, headers=headers)

    def patch(
        self,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        return self.dispatch("PATCH", path, body, headers=headers)

    def delete(self, path: str, headers: Optional[Dict[str, str]] = None) -> Response:
        return self.dispatch("DELETE", path, headers=headers)

    # ------------------------------------------------------------------
    # Routing primitives
    # ------------------------------------------------------------------
    def _tenant_of(self, request: Request) -> Optional[str]:
        """The routing tenant: header, query param, or request body."""
        tenant = request.header(TENANT_HEADER) or request.query.get("tenant")
        if tenant:
            return tenant
        if isinstance(request.body, dict):
            body_tenant = request.body.get("tenant_id")
            if body_tenant:
                return str(body_tenant)
        return None

    def _owner(self, tenant_id: str) -> Any:
        return self.shards[self.ring.shard_for(tenant_id)]

    def _forward(self, shard: Any, request: Request) -> Response:
        """Replay ``request`` verbatim against one shard's API."""
        path = request.path
        if request.query:
            path = f"{path}?{urlencode(request.query)}"
        return shard.api.dispatch(
            request.method, path, request.body, request.headers
        )

    def _route_by_tenant(self, request: Request) -> Response:
        """Tenant-affine: one shard owns the call.  Without any tenant
        context the request cannot be partitioned — reject loudly
        rather than guess a shard (create paths default the tenant at
        the *service* layer, so the router defaults it identically)."""
        from repro.api.service import DEFAULT_TENANT

        tenant = self._tenant_of(request) or DEFAULT_TENANT
        return self._forward(self._owner(tenant), request)

    def _route_detail(self, request: Request) -> Response:
        """Detail endpoints (``/v1/slices/{id}`` etc.): route by tenant
        when the caller is scoped, else scatter-gather — ids are unique
        cluster-wide (shards share one request-ordinal space per
        process, and recovery pins the counter past every journaled
        id), so at most one shard answers non-404."""
        tenant = self._tenant_of(request)
        if tenant:
            return self._forward(self._owner(tenant), request)
        fallback: Optional[Response] = None
        for shard in self.shards:
            response = self._forward(shard, request)
            if response.status != 404:
                return response
            fallback = response
        return fallback if fallback is not None else Response(
            status=404, body={"error": {"code": "not_found", "message": "no shards"}}
        )

    # ------------------------------------------------------------------
    # Fan-out + merge handlers
    # ------------------------------------------------------------------
    def _get_slices(self, request: Request) -> Response:
        offset, limit = parse_pagination(request.query)
        tenant = request.header(TENANT_HEADER) or request.query.get("tenant") or None
        state = request.query.get("state")
        merged: List[Tuple[str, int, dict]] = []
        total = 0
        for shard in self.shards:
            page, shard_total = shard.service.list_slices(
                tenant_id=tenant, state=state, offset=0, limit=None
            )
            total += shard_total
            for network_slice in page:
                item = network_slice.to_dict()
                item["shard"] = shard.shard_id
                merged.append((item["slice_id"], shard.shard_id, item))
        # Global order: (slice_id, shard) — stable, total, and
        # independent of per-shard arrival order, so re-cut pages are
        # duplicate-free and seam-consistent.
        merged.sort(key=lambda entry: (entry[0], entry[1]))
        window = [item for _, _, item in merged[offset : offset + limit]]
        return Response(
            status=200,
            body={
                "slices": window,
                "count": len(window),
                "total": total,
                "offset": offset,
                "limit": limit,
            },
        )

    def _get_bookings(self, request: Request) -> Response:
        tenant = request.header(TENANT_HEADER) or request.query.get("tenant") or None
        merged: List[dict] = []
        for shard in self.shards:
            for booking in shard.service.list_bookings(tenant):
                booking["shard"] = shard.shard_id
                merged.append(booking)
        merged.sort(
            key=lambda b: (
                b["start"] if b.get("start") is not None else float("inf"),
                b["booking_id"],
            )
        )
        return Response(status=200, body={"bookings": merged, "count": len(merged)})

    def _get_operations(self, request: Request) -> Response:
        tenant = request.header(TENANT_HEADER) or request.query.get("tenant") or None
        merged: List[dict] = []
        for shard in self.shards:
            for op in shard.service.list_operations(tenant):
                item = op.to_dict()
                item["shard"] = shard.shard_id
                merged.append(item)
        merged.sort(key=lambda item: (item["operation_id"], item["shard"]))
        return Response(
            status=200, body={"operations": merged, "count": len(merged)}
        )

    def _get_events(self, request: Request) -> Response:
        """The merged durable feed (see the module docstring).  The
        in-memory ``since=`` cursor is per-process and meaningless
        across shards, so the router serves only the durable cursor."""
        if "since" in request.query:
            return error_response(
                400,
                "invalid_parameter",
                "the sharded feed has no cluster-wide 'since' sequence; "
                "use the durable vector cursor (after_lsn=)",
                field="since",
            )
        limit = parse_int_param(
            request.query, "limit", default=100, minimum=1, maximum=1000
        )
        tenant = request.header(TENANT_HEADER) or request.query.get("tenant") or None
        cursor = VectorCursor.parse(
            request.query.get("after_lsn", "0"), len(self.shards)
        )
        candidates: List[Tuple[float, int, int, dict]] = []
        floors: Dict[int, int] = {}
        heads: Dict[int, int] = {}
        for shard in self.shards:
            feed = shard.service.events_since(
                {"after_lsn": str(cursor.get(shard.shard_id)), "limit": str(limit)},
                tenant,
            )
            floors[shard.shard_id] = feed.get("replay_floor_lsn", 0)
            heads[shard.shard_id] = feed.get("last_lsn", 0)
            for event in feed["events"]:
                event["shard"] = shard.shard_id
                candidates.append(
                    (float(event.get("time", 0.0)), shard.shard_id, event["lsn"], event)
                )
        # Deterministic merge order; the page cut below keeps the
        # cursor honest — components advance only past *included*
        # events, so the tail a short page dropped is re-fetched next
        # call (no skips), and re-fetching an included lsn is
        # impossible (no replays).
        candidates.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        page = candidates[:limit]
        seen: Dict[int, int] = {}
        for _, shard_id, lsn, _event in page:
            seen[shard_id] = max(seen.get(shard_id, 0), lsn)
        next_cursor = cursor.advanced(seen)
        return Response(
            status=200,
            body={
                "events": [event for _, _, _, event in page],
                "count": len(page),
                "next_after_lsn": next_cursor.encode(),
                "last_lsn": {str(k): v for k, v in heads.items()},
                "replay_floor_lsn": {str(k): v for k, v in floors.items()},
            },
        )

    # ------------------------------------------------------------------
    # Admin fan-out
    # ------------------------------------------------------------------
    def _get_admin_state(self, request: Request) -> Response:
        shards: Dict[str, dict] = {}
        totals = {"live_slices": 0, "active_slices": 0, "pending_installs": 0}
        for shard in self.shards:
            state = shard.service.admin_state()
            shards[str(shard.shard_id)] = state
            control = state.get("control_plane", {})
            for key in totals:
                totals[key] += int(control.get(key, 0))
        return Response(
            status=200,
            body={
                "cluster": {"shard_count": len(self.shards), **totals},
                "shards": shards,
            },
        )

    def _post_admin_checkpoint(self, request: Request) -> Response:
        results: Dict[str, dict] = {}
        worst = 200
        for shard in self.shards:
            response = self._forward(shard, request)
            results[str(shard.shard_id)] = response.body
            worst = max(worst, response.status)
        return Response(status=worst, body={"shards": results})

    def _get_admin_metrics(self, request: Request) -> Response:
        from repro.obs.export import PROMETHEUS_CONTENT_TYPE, merge_expositions

        texts = {
            shard.shard_id: shard.service.metrics_prometheus()
            for shard in self.shards
        }
        return Response(
            status=200,
            text=merge_expositions(texts),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )

    def _get_admin_traces(self, request: Request) -> Response:
        return Response(
            status=200,
            body={
                "shards": {
                    str(shard.shard_id): shard.service.traces(request.query)
                    for shard in self.shards
                }
            },
        )

    def _get_dashboard(self, request: Request) -> Response:
        return Response(
            status=200,
            body={
                "shards": {
                    str(shard.shard_id): shard.service.dashboard()
                    for shard in self.shards
                }
            },
        )

    def _get_domain(self, request: Request) -> Response:
        shards: Dict[str, dict] = {}
        last_404: Optional[Response] = None
        for shard in self.shards:
            response = self._forward(shard, request)
            if response.status == 404:
                last_404 = response
                continue
            shards[str(shard.shard_id)] = response.body
        if not shards and last_404 is not None:
            return last_404
        return Response(status=200, body={"shards": shards})

    def _get_index(self, request: Request) -> Response:
        return Response(
            status=200,
            body={
                "version": "v1",
                "sharding": {
                    "shard_count": len(self.shards),
                    "ring_vnodes": self.ring.vnodes,
                    "event_cursor": "vector (after_lsn=<shard>:<lsn>,...)",
                },
                "routes": [r for r in self.api.routes() if " /v1" in r],
            },
        )

    # ------------------------------------------------------------------
    # Route table
    # ------------------------------------------------------------------
    def _register(self) -> None:
        def guarded(handler):
            def wrapped(request: Request):
                try:
                    return handler(request)
                except ValidationError as exc:
                    return exc.to_response(400)

            return wrapped

        api = self.api
        api.route("GET", "/v1", guarded(self._get_index))
        # Tenant-affine writes → one shard.
        api.route("POST", "/v1/slices", guarded(self._route_by_tenant))
        api.route("POST", "/v1/bookings", guarded(self._route_by_tenant))
        api.route("POST", "/v1/whatif", guarded(self._route_by_tenant))
        # Detail endpoints → owner (or scatter-gather when unscoped).
        api.route("GET", "/v1/slices/{slice_id}", guarded(self._route_detail))
        api.route("PATCH", "/v1/slices/{slice_id}", guarded(self._route_detail))
        api.route("DELETE", "/v1/slices/{slice_id}", guarded(self._route_detail))
        api.route("DELETE", "/v1/bookings/{booking_id}", guarded(self._route_detail))
        api.route("GET", "/v1/operations/{op_id}", guarded(self._route_detail))
        # Collections → fan out + merge.
        api.route("GET", "/v1/slices", guarded(self._get_slices))
        api.route("GET", "/v1/bookings", guarded(self._get_bookings))
        api.route("GET", "/v1/operations", guarded(self._get_operations))
        api.route("GET", "/v1/events", guarded(self._get_events))
        # Observability + admin → fan out.
        api.route("GET", "/v1/dashboard", guarded(self._get_dashboard))
        api.route("GET", "/v1/domains/{domain}", guarded(self._get_domain))
        api.route("GET", "/v1/admin/state", guarded(self._get_admin_state))
        api.route("POST", "/v1/admin/checkpoint", guarded(self._post_admin_checkpoint))
        api.route("GET", "/v1/admin/metrics", guarded(self._get_admin_metrics))
        api.route("GET", "/v1/admin/traces", guarded(self._get_admin_traces))


__all__ = ["ShardRouter", "VectorCursor"]
