"""Sharded control plane: tenant-partitioned orchestrator workers, a
router in front of the v1 API, and journal-tailing warm standbys.

The single-process orchestrator stops scaling once one lock domain and
one WAL serialize every tenant (the D8 sweep shows per-request cost
rising super-linearly with fleet size).  This package splits the
control plane the way the durable store already anticipated:

- :mod:`repro.cluster.ring` — consistent-hash tenant → shard mapping,
  deterministic across processes and stable under shard-count change.
- :mod:`repro.cluster.shard` — one orchestrator worker per shard, each
  journaling to its own ``shard-<id>/`` namespace of the store root,
  plus :class:`~repro.cluster.shard.ControlPlaneCluster`, the builder.
- :mod:`repro.cluster.router` — :class:`~repro.cluster.router.
  ShardRouter`: tenant-affine calls routed to one shard, collection /
  metrics / admin calls fanned out and merged (pagination re-cut,
  durable event cursors merged as a per-shard LSN vector).
- :mod:`repro.cluster.lease` — the leader lease file + heartbeat
  protocol a standby watches for leader death.
- :mod:`repro.cluster.standby` — :class:`~repro.cluster.standby.
  WarmStandby`: tails the leader's WAL with bounded lag and promotes
  itself through the existing RecoveryManager reconciliation when the
  lease goes stale.
"""

from repro.cluster.lease import Lease, LeaseState
from repro.cluster.ring import HashRing
from repro.cluster.router import ShardRouter, VectorCursor
from repro.cluster.shard import ClusterConfig, ControlPlaneCluster, ShardWorker
from repro.cluster.standby import PromotionReport, WarmStandby

__all__ = [
    "ClusterConfig",
    "ControlPlaneCluster",
    "HashRing",
    "Lease",
    "LeaseState",
    "PromotionReport",
    "ShardRouter",
    "ShardWorker",
    "VectorCursor",
    "WarmStandby",
]
