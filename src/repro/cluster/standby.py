"""Journal-tailing warm standby with lease-watch promotion.

The standby is the survivability half of the sharded control plane: a
second worker that follows one shard's write-ahead journal *as it is
written* — folding each record into a live
:class:`~repro.store.codec.ReplayState` image, so its lag behind the
leader is bounded by its polling cadence, not by journal size — and
watches the shard's :class:`~repro.cluster.lease.Lease` heartbeat.

When the heartbeat goes stale (leader SIGKILLed, wedged, partitioned
away), :meth:`WarmStandby.promote`:

1. takes the lease with a bumped epoch (fencing the old leader if it
   was merely paused: its next heartbeat fails and it closes its own
   store),
2. rebuilds a fresh orchestrator + service over the shard's
   *surviving* southbound and its reopened store, and
3. runs the existing :class:`~repro.store.recovery.RecoveryManager`
   reconciliation — the same matrix a restart uses: re-adopt
   fully-COMMITTED slices, compensate orphans, re-enqueue admissions,
   rebase bookings, restore quotas — finishing with a checkpoint that
   becomes the new replay floor, past which the durable event feed
   resumes.

The pre-promotion tailing is what makes the standby *warm*: at
promotion time it has already folded (nearly) the whole journal, so
recovery replays only the records that landed since its last poll.
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.api.rest import RestApi
from repro.api.v1 import build_v1_api
from repro.cluster.lease import Lease
from repro.store.codec import ReplayState
from repro.store.journal import _read_records
from repro.store.snapshot import SnapshotStore
from repro.store.store import shard_directory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.service import SliceService
    from repro.core.orchestrator import Orchestrator
    from repro.store.recovery import RecoveryReport


class StandbyError(RuntimeError):
    """Raised on standby misuse (promoting over a live leader, ...)."""


@dataclass
class PromotionReport:
    """Everything a completed promotion produced."""

    shard_id: int
    recovery_s: float  # wall clock, lease takeover -> reconciled
    replay_lag_records: int  # journal records recovery replayed that
    #                          the standby had not yet tailed
    report: "RecoveryReport"  # the RecoveryManager reconciliation
    orchestrator: "Orchestrator"
    service: "SliceService"
    api: RestApi
    lease: Lease
    replay_floor_lsn: int = 0  # post-promotion durable-cursor floor
    trace: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe image (the failover drill's artifact payload)."""
        return {
            "shard_id": self.shard_id,
            "recovery_s": self.recovery_s,
            "replay_lag_records": self.replay_lag_records,
            "replay_floor_lsn": self.replay_floor_lsn,
            "lease_epoch": self.lease.epoch,
            "recovery": self.report.to_dict(),
            "trace": dict(self.trace),
        }


class WarmStandby:
    """Tails one shard's WAL; promotes itself when the lease goes stale.

    Args:
        shard_id: The shard being shadowed.
        store_root: The cluster's durability root (the standby resolves
            the same ``shard-<id>/`` namespace the leader journals to).
        rebuild: Factory returning a *fresh* ``(orchestrator, service)``
            wired to the shard's surviving southbound and a reopened
            store — the "new process" promotion boots.  Supplied by
            :meth:`~repro.cluster.shard.ControlPlaneCluster.standby_for`.
        lease_timeout_s: Heartbeat staleness that reads as leader death.
        owner: Lease identity of this standby.
    """

    def __init__(
        self,
        shard_id: int,
        store_root: str,
        rebuild: Callable[[], Tuple["Orchestrator", "SliceService"]],
        lease_timeout_s: float = 5.0,
        owner: Optional[str] = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self.directory = shard_directory(store_root, self.shard_id)
        self._journal_path = os.path.join(self.directory, "journal.jsonl")
        self._snapshots = SnapshotStore(self.directory)
        self._rebuild = rebuild
        self.lease = Lease(
            os.path.join(self.directory, Lease.FILENAME),
            owner=owner or f"shard-{self.shard_id}-standby",
            timeout_s=lease_timeout_s,
        )
        self.state = ReplayState()
        self.applied_lsn = 0
        self.polls = 0
        self.promoted: Optional[PromotionReport] = None

    # ------------------------------------------------------------------
    # Tailing
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Fold everything the leader journaled past our position;
        returns the number of records applied.  After a leader
        checkpoint compacted the journal, the standby jumps to the
        snapshot (its pre-compaction fold reached at least that LSN
        anyway — LSNs are monotonic across compactions)."""
        applied = 0
        loaded = self._snapshots.load_latest()
        if loaded is not None and loaded[1] > self.applied_lsn:
            snapshot, lsn = loaded
            self.state = ReplayState.from_dict(snapshot)
            applied += 1
            self.applied_lsn = lsn
        try:
            records = _read_records(self._journal_path, after_lsn=self.applied_lsn)
        except FileNotFoundError:
            records = []
        for record in records:
            self.state.apply(record)
            self.applied_lsn = record.lsn
            applied += 1
        self.polls += 1
        return applied

    def lag_records(self) -> int:
        """Records the leader has journaled that we have not folded —
        the standby's replication lag, bounded by its polling cadence."""
        try:
            records = _read_records(self._journal_path, after_lsn=self.applied_lsn)
        except FileNotFoundError:
            return 0
        return len(records)

    def leader_alive(self) -> bool:
        """Whether the lease heartbeat is still fresh."""
        return not self.lease.is_stale()

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def tick(self) -> Optional[PromotionReport]:
        """One watch cycle: tail the journal, and if the leader's
        heartbeat has gone stale, promote.  Returns the promotion
        report when a promotion happened, else None."""
        self.poll()
        if self.leader_alive():
            return None
        return self.promote()

    def promote(self, force: bool = False) -> PromotionReport:
        """Take over the shard (see the module docstring for the
        protocol).  ``force`` skips the staleness check — drills use it
        to exercise fencing of a paused-but-alive leader.

        Raises:
            StandbyError: When the leader's lease is still fresh and
                ``force`` is not set.
        """
        if self.promoted is not None:
            return self.promoted
        started = _time.monotonic()
        pre_promotion_lsn = self.applied_lsn
        replay_lag = self.lag_records()  # before recovery appends more
        if not self.lease.acquire(force=force):
            raise StandbyError(
                f"shard {self.shard_id} leader lease is still fresh; "
                "refusing to split-brain (use force=True to fence it)"
            )
        orchestrator, service = self._rebuild()
        orchestrator.attach_lease(self.lease)
        from repro.store.recovery import RecoveryManager

        report = RecoveryManager(orchestrator, service=service).restore()
        recovery_s = _time.monotonic() - started
        self.promoted = PromotionReport(
            shard_id=self.shard_id,
            recovery_s=recovery_s,
            replay_lag_records=replay_lag,
            report=report,
            orchestrator=orchestrator,
            service=service,
            api=build_v1_api(service),
            lease=self.lease,
            replay_floor_lsn=orchestrator.store.snapshot_lsn,
            trace={
                "standby_polls": self.polls,
                "standby_applied_lsn": pre_promotion_lsn,
                "state_digest_at_takeover": self.state.digest(),
            },
        )
        return self.promoted


__all__ = ["PromotionReport", "StandbyError", "WarmStandby"]
