"""Shard workers and the cluster builder.

A *shard* is one complete control plane — simulator, orchestrator,
service facade, broker, v1 API — owning a tenant partition (decided by
the :class:`~repro.cluster.ring.HashRing`) and a southbound partition
(its own testbed: in a real deployment each worker process fronts its
own region of the fleet).  Every shard journals to its own
``shard-<id>/`` namespace under the shared durability root and, when
durable, holds the shard's leader lease.

:class:`ControlPlaneCluster` is the builder + process manager the
tests, the failover drill and the benchmarks share: it wires N shards,
puts a :class:`~repro.cluster.router.ShardRouter` in front, and models
process death (``kill_leader``) with the store's SIGKILL semantics — a
closed journal drops every subsequent write, exactly what a killed
process would have never written.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.rest import RestApi
from repro.api.service import SliceService
from repro.api.v1 import build_v1_api
from repro.cluster.lease import Lease
from repro.cluster.ring import HashRing
from repro.cluster.router import ShardRouter
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.slices import PlmnPool
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.store.store import ControlPlaneStore


class ClusterError(RuntimeError):
    """Raised on cluster misuse (bad shard id, dead-shard operations)."""


@dataclass
class ClusterConfig:
    """Shape of a sharded control plane.

    Attributes:
        shards: Number of orchestrator workers (= tenant partitions).
        durability_root: Root of the durable store; each shard journals
            under ``<root>/shard-<id>/``.  ``None`` = memory-only (no
            leases, no standbys, no durable event cursor).
        n_enbs_per_shard: RAN width of each shard's southbound.
        max_plmns_per_enb: Per-cell PLMN capacity of each testbed.
        plmn_pool_size: PLMN identity pool per shard.
        vnodes: Virtual nodes per shard on the hash ring.
        lease_timeout_s: Heartbeat staleness after which a standby
            declares the shard leader dead (wall clock).
        seed: Base random seed; shard *k* uses ``seed + k``.
        orchestrator: Extra :class:`OrchestratorConfig` overrides
            applied to every shard (e.g. ``{"monitoring_epoch_s": 30}``).
    """

    shards: int = 2
    durability_root: Optional[str] = None
    n_enbs_per_shard: int = 2
    max_plmns_per_enb: int = 12
    plmn_pool_size: int = 24
    vnodes: int = 64
    lease_timeout_s: float = 5.0
    seed: int = 7
    orchestrator: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ShardWorker:
    """One shard's live control plane (leader side)."""

    shard_id: int
    testbed: Testbed
    orchestrator: Orchestrator
    service: SliceService
    api: RestApi
    lease: Optional[Lease] = None
    dead: bool = False

    @property
    def sim(self) -> Simulator:
        return self.orchestrator.sim

    @property
    def store(self):
        return self.orchestrator.store

    def run_until(self, end_time: float) -> None:
        """Advance this shard's virtual clock."""
        self.orchestrator.sim.run_until(end_time)


class ControlPlaneCluster:
    """N tenant-sharded control planes behind one router.

    Args:
        config: The cluster shape.
        testbeds: Optional pre-built testbeds, one per shard — the test
            suites inject these to add chaos drivers before the
            orchestrators wire up.  Built from ``config`` when omitted.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        testbeds: Optional[List[Testbed]] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        if self.config.shards < 1:
            raise ClusterError(f"need >= 1 shard, got {self.config.shards}")
        if testbeds is not None and len(testbeds) != self.config.shards:
            raise ClusterError(
                f"got {len(testbeds)} testbeds for {self.config.shards} shards"
            )
        self.ring = HashRing(self.config.shards, vnodes=self.config.vnodes)
        self.shards: List[ShardWorker] = [
            self._build_shard(
                shard_id, testbeds[shard_id] if testbeds is not None else None
            )
            for shard_id in range(self.config.shards)
        ]
        self.router = ShardRouter(self.ring, self.shards)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_testbed(self) -> Testbed:
        return build_testbed(
            TestbedConfig(
                n_enbs=self.config.n_enbs_per_shard,
                max_plmns_per_enb=self.config.max_plmns_per_enb,
                plmn_pool_size=self.config.plmn_pool_size,
            )
        )

    def _build_orchestrator(
        self,
        testbed: Testbed,
        shard_id: int,
        store: Optional[ControlPlaneStore] = None,
    ) -> Orchestrator:
        """A fresh control-plane process over ``testbed``'s southbound
        (each call gets its own simulator + PLMN pool — exactly what a
        process restart loses)."""
        config = OrchestratorConfig(
            durability_dir=self.config.durability_root,
            shard_id=shard_id,
            **self.config.orchestrator,
        )
        return Orchestrator(
            sim=Simulator(),
            allocator=testbed.allocator,
            plmn_pool=PlmnPool(size=self.config.plmn_pool_size),
            config=config,
            streams=RandomStreams(seed=self.config.seed + shard_id),
            registry=testbed.registry,
            store=store,
        )

    def _build_shard(
        self, shard_id: int, testbed: Optional[Testbed]
    ) -> ShardWorker:
        testbed = testbed or self._build_testbed()
        orchestrator = self._build_orchestrator(testbed, shard_id)
        lease = None
        if orchestrator.store.enabled:
            lease = Lease(
                os.path.join(orchestrator.store.directory, Lease.FILENAME),
                owner=f"shard-{shard_id}-leader",
                timeout_s=self.config.lease_timeout_s,
            )
            lease.acquire(force=True)
            orchestrator.attach_lease(lease)
        service = SliceService(orchestrator)
        api = build_v1_api(service)
        orchestrator.start()
        return ShardWorker(
            shard_id=shard_id,
            testbed=testbed,
            orchestrator=orchestrator,
            service=service,
            api=api,
            lease=lease,
        )

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def shard_for(self, tenant_id: str) -> ShardWorker:
        """The worker owning ``tenant_id``."""
        return self.shards[self.ring.shard_for(tenant_id)]

    def shard(self, shard_id: int) -> ShardWorker:
        if not 0 <= shard_id < len(self.shards):
            raise ClusterError(f"unknown shard {shard_id}")
        return self.shards[shard_id]

    # ------------------------------------------------------------------
    # Cluster-wide clock + lifecycle
    # ------------------------------------------------------------------
    def run_until(self, end_time: float) -> None:
        """Advance every live shard's virtual clock in lockstep."""
        for worker in self.shards:
            if not worker.dead:
                worker.run_until(end_time)

    def kill_leader(self, shard_id: int) -> ShardWorker:
        """SIGKILL the shard's leader mid-flight: its journal stops
        accepting writes (whatever in-flight work was never journaled
        is simply gone, like a dead process's page cache), its
        monitoring loop stops, and its lease is never heartbeat again —
        the standby's watch condition."""
        worker = self.shard(shard_id)
        worker.orchestrator.stop()
        worker.store.close()
        worker.dead = True
        return worker

    def adopt_promotion(self, shard_id: int, promotion: "Any") -> ShardWorker:
        """Install a promoted standby (see :class:`~repro.cluster.
        standby.PromotionReport`) as the shard's new leader.  The
        router holds the :class:`ShardWorker` object, not its fields,
        so traffic flows to the new control plane immediately."""
        worker = self.shard(shard_id)
        worker.orchestrator = promotion.orchestrator
        worker.service = promotion.service
        worker.api = promotion.api
        worker.lease = promotion.lease
        worker.dead = False
        promotion.orchestrator.start()
        return worker

    def standby_for(
        self, shard_id: int, lease_timeout_s: Optional[float] = None
    ) -> "Any":
        """A warm standby tailing ``shard_id``'s WAL, ready to promote
        itself over the shard's surviving southbound."""
        from repro.cluster.standby import WarmStandby

        if not self.config.durability_root:
            raise ClusterError("standbys require a durability_root")
        worker = self.shard(shard_id)

        def rebuild() -> "tuple[Orchestrator, SliceService]":
            store = ControlPlaneStore(
                self.config.durability_root,
                shard_id=shard_id,
                fsync_every=self.config.orchestrator.get("journal_fsync_every", 32),
                checkpoint_every=self.config.orchestrator.get(
                    "checkpoint_every_records", 512
                ),
            )
            orchestrator = self._build_orchestrator(
                worker.testbed, shard_id, store=store
            )
            service = SliceService(orchestrator)
            return orchestrator, service

        return WarmStandby(
            shard_id=shard_id,
            store_root=self.config.durability_root,
            rebuild=rebuild,
            lease_timeout_s=lease_timeout_s or self.config.lease_timeout_s,
        )

    def close(self) -> None:
        """Clean shutdown of every shard."""
        for worker in self.shards:
            worker.orchestrator.stop()
            if not worker.dead:
                worker.store.close()
            worker.dead = True


__all__ = ["ClusterConfig", "ClusterError", "ControlPlaneCluster", "ShardWorker"]
