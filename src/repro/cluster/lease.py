"""Leader lease file + heartbeat protocol for one shard.

One tiny JSON file per shard (``lease.json`` in the shard's store
directory) is the shared ground truth of who leads the shard:

- The **leader** acquires the lease (bumping its *epoch*) and
  heartbeats it every monitoring epoch.  Every heartbeat re-reads the
  file first: if another worker's (owner, epoch) is in it, the refresh
  fails and the caller must fence itself — the orchestrator closes its
  durable store, which has exactly crash semantics (all further
  journal writes are dropped).
- The **standby** watches the file's heartbeat timestamp: older than
  ``timeout_s`` (or missing entirely) means the leader is dead, and
  promotion may begin.  Promotion is itself an acquire — the epoch
  bump is what deposes a leader that was merely paused, not dead
  (the classic false-suspicion case), the moment it next heartbeats.

Writes are atomic (tmp + rename, same discipline as the snapshot
store), so a reader never sees a torn lease.  Timestamps are wall
clock (``time.time()``): the lease must be comparable *across*
processes, where the simulators' virtual clocks don't exist.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Optional


class LeaseError(RuntimeError):
    """Raised on lease misuse (e.g. heartbeating before acquiring)."""


@dataclass
class LeaseState:
    """What the lease file currently says."""

    owner: str
    epoch: int
    heartbeat_at: float  # wall clock (time.time())

    def age_s(self, now: Optional[float] = None) -> float:
        """Seconds since the last heartbeat."""
        return (time.time() if now is None else now) - self.heartbeat_at


class Lease:
    """One worker's handle on a shard's leader lease.

    Args:
        path: The lease file (conventionally ``lease.json`` inside the
            shard's store directory).
        owner: This worker's identity, unique per process/worker (e.g.
            ``"shard-0-leader"`` / ``"shard-0-standby"``).
        timeout_s: Staleness threshold — a heartbeat older than this
            reads as leader death.
    """

    FILENAME = "lease.json"

    def __init__(self, path: str, owner: str, timeout_s: float = 5.0) -> None:
        if timeout_s <= 0:
            raise LeaseError(f"timeout must be positive, got {timeout_s}")
        self.path = str(path)
        self.owner = str(owner)
        self.timeout_s = float(timeout_s)
        self.epoch = 0  # the epoch *we* hold; 0 = not acquired

    # ------------------------------------------------------------------
    # Shared read side
    # ------------------------------------------------------------------
    def read(self) -> Optional[LeaseState]:
        """The current lease file contents (None when absent/torn)."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return LeaseState(
                owner=str(payload["owner"]),
                epoch=int(payload["epoch"]),
                heartbeat_at=float(payload["heartbeat_at"]),
            )
        except (OSError, ValueError, KeyError):
            return None

    def is_stale(self) -> bool:
        """Leader-death check (the standby's watch condition): the
        lease is missing, unreadable, or its heartbeat is older than
        ``timeout_s``."""
        state = self.read()
        return state is None or state.age_s() > self.timeout_s

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def _write(self, epoch: int) -> None:
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        tmp = f"{self.path}.tmp.{self.owner}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "owner": self.owner,
                    "epoch": epoch,
                    "heartbeat_at": time.time(),
                },
                handle,
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def acquire(self, force: bool = False) -> bool:
        """Take the lease.  Succeeds when the lease is free, stale,
        already ours, or ``force`` is set (a drill's hard takeover).
        Bumps the epoch past whatever the file held — the bump is what
        deposes a paused-but-alive previous owner on its next
        heartbeat."""
        state = self.read()
        if (
            state is not None
            and state.owner != self.owner
            and state.age_s() <= self.timeout_s
            and not force
        ):
            return False  # a live leader holds it
        self.epoch = (state.epoch if state else 0) + 1
        self._write(self.epoch)
        return True

    def heartbeat(self) -> bool:
        """Refresh our claim.  Returns False — **without** rewriting
        the file — when the lease is no longer ours (another worker
        acquired a higher epoch): the caller must fence itself.

        Raises:
            LeaseError: When called before :meth:`acquire`.
        """
        if self.epoch == 0:
            raise LeaseError("heartbeat before acquire")
        state = self.read()
        if state is not None and (
            state.owner != self.owner or state.epoch != self.epoch
        ):
            return False
        self._write(self.epoch)
        return True

    def release(self) -> None:
        """Drop the lease (clean shutdown); best-effort."""
        state = self.read()
        if state is not None and state.owner == self.owner:
            try:
                os.remove(self.path)
            except OSError:
                pass
        self.epoch = 0


__all__ = ["Lease", "LeaseError", "LeaseState"]
