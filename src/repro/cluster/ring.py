"""Consistent-hash tenant → shard mapping.

The partitioning contract of the sharded control plane:

- **Total**: every tenant id maps to exactly one shard.
- **Deterministic across processes**: the hash is SHA-256 over the
  tenant id and the ring's virtual-node names — no process salt, no
  ``PYTHONHASHSEED`` dependence — so a router, a shard worker and a
  standby in three different processes all agree on the owner.
- **Stable under shard-count change**: shards claim points on a fixed
  2^32 ring via virtual nodes; a tenant belongs to the first vnode
  clockwise from its hash point.  Growing the cluster from N to N+1
  shards moves only the tenants whose arc the new shard's vnodes
  claim — about 1/(N+1) of them, every one moving *to* the new shard
  (the property suite pins both invariants down).

This is the classic Karger ring; the alternative (``hash(tenant) % N``)
would remap nearly every tenant on resize, which for us means
journaling every slice into a different shard's WAL — a full-cluster
migration instead of a bounded handoff.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

#: The ring is the full 32-bit hash space.
RING_BITS = 32
RING_SIZE = 1 << RING_BITS


def _point(key: str) -> int:
    """A stable position on the ring for ``key`` (SHA-256, truncated)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class HashRing:
    """A fixed consistent-hash ring over ``shard_count`` shards.

    Args:
        shard_count: Number of shards claiming the ring.
        vnodes: Virtual nodes per shard.  More vnodes = smoother load
            spread and a moved-fraction closer to the ideal 1/(N+1) on
            resize, at O(shard_count * vnodes) ring-build cost.  The
            default (64) keeps the spread within a few percent for the
            2-16 shard clusters the benchmarks run.
    """

    def __init__(self, shard_count: int, vnodes: int = 64) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.shard_count = int(shard_count)
        self.vnodes = int(vnodes)
        points: List[Tuple[int, int]] = []
        for shard_id in range(self.shard_count):
            for replica in range(self.vnodes):
                # The vnode name is part of the durable contract: two
                # processes building the ring for the same (count,
                # vnodes) must place identical points.
                points.append((_point(f"shard-{shard_id}#{replica}"), shard_id))
        # Ties (two vnodes hashing to one point) resolve to the lower
        # shard id — sort on the full tuple so the order is total.
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, tenant_id: str) -> int:
        """The shard owning ``tenant_id`` (first vnode clockwise)."""
        point = _point(f"tenant:{tenant_id}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap: past the last vnode belongs to the first
        return self._owners[index]

    def spread(self, tenant_ids: List[str]) -> Dict[int, int]:
        """shard_id → tenant count, for balance diagnostics."""
        out: Dict[int, int] = {shard: 0 for shard in range(self.shard_count)}
        for tenant in tenant_ids:
            out[self.shard_for(tenant)] += 1
        return out


__all__ = ["HashRing", "RING_BITS", "RING_SIZE"]
