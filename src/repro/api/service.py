"""Service facade between the REST surface and the orchestrator core.

:class:`SliceService` is the single seam the v1 handlers (and the legacy
shim) talk through.  It owns the three concerns an HTTP router should
not: building domain objects out of validated payloads, tenant scoping,
and the async *operation* resources that make the batch-window
:class:`~repro.core.broker.SliceBroker` reachable over the API —
``POST /v1/slices?mode=batch`` enqueues into the broker and hands back a
pollable operation that resolves when the decision window flushes.

Service-layer failures raise :class:`ServiceError` subclasses carrying
an HTTP status and a stable error code; the route layer renders them as
the structured error envelope.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.api.schemas import (
    SLICE_CREATE,
    SLICE_MODIFY,
    ValidationError,
    WHAT_IF,
    parse_int_param,
)
from repro.core.admission import AdmissionDecision
from repro.core.broker import SliceBroker
from repro.core.events import OrchestrationEvent
from repro.core.orchestrator import Orchestrator, OrchestratorError
from repro.core.slices import (
    NetworkSlice,
    SLA,
    SliceError,
    SliceRequest,
    SliceState,
)
from repro.traffic.patterns import TrafficProfile
from repro.traffic.verticals import vertical_for

DEFAULT_TENANT = "anonymous"


class ServiceError(Exception):
    """A service-layer failure with an HTTP status and stable code."""

    status = 500
    code = "internal_error"

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class NotFound(ServiceError):
    """The resource does not exist — or belongs to another tenant."""

    status = 404
    code = "not_found"


class Conflict(ServiceError):
    """The resource exists but its state forbids the operation."""

    status = 409
    code = "conflict"


@dataclass
class Operation:
    """An asynchronous API operation (currently: batch slice creation).

    Lifecycle: ``pending`` → ``succeeded`` | ``failed`` when the broker
    window flushes and the admit/reject decision lands.
    """

    op_id: str
    kind: str
    request_id: str
    tenant_id: str
    created_at: float
    status: str = "pending"
    decision: Optional[AdmissionDecision] = None
    resolved_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.status != "pending"

    def to_dict(self) -> dict:
        body: Dict[str, Any] = {
            "operation_id": self.op_id,
            "kind": self.kind,
            "status": self.status,
            "request_id": self.request_id,
            "tenant_id": self.tenant_id,
            "created_at": self.created_at,
            "resolved_at": self.resolved_at,
            "slice_id": self.decision.slice_id if self.decision else None,
        }
        if self.decision is not None:
            body["decision"] = {
                "request_id": self.decision.request_id,
                "admitted": self.decision.admitted,
                "reason": self.decision.reason,
                "slice_id": self.decision.slice_id,
            }
        else:
            body["decision"] = None
        return body


class OperationStore:
    """Bounded registry of async operations.

    ``capacity`` is a hard bound enforced on every insert: eviction
    prefers the oldest resolved operation but falls back to the oldest
    pending one when a burst of unresolved submissions alone exceeds
    the bound (that client's poll then 404s — the documented cost of
    overrunning the registry).
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = capacity
        self._ops: "OrderedDict[str, Operation]" = OrderedDict()
        self._counter = itertools.count(1)

    def _evict(self) -> None:
        while len(self._ops) > self.capacity:
            victim = next(
                (op_id for op_id, op in self._ops.items() if op.done),
                next(iter(self._ops)),
            )
            del self._ops[victim]

    def create(
        self, kind: str, request_id: str, tenant_id: str, now: float
    ) -> Operation:
        op = Operation(
            op_id=f"op-{next(self._counter):06d}",
            kind=kind,
            request_id=request_id,
            tenant_id=tenant_id,
            created_at=now,
        )
        self._ops[op.op_id] = op
        self._evict()
        return op

    def resolve(self, op_id: str, decision: AdmissionDecision, now: float) -> None:
        op = self._ops.get(op_id)
        if op is None:  # evicted under pressure — nothing to record
            return
        op.decision = decision
        op.status = "succeeded" if decision.admitted else "failed"
        op.resolved_at = now

    def get(self, op_id: str) -> Optional[Operation]:
        return self._ops.get(op_id)

    def list(self, tenant_id: Optional[str] = None) -> List[Operation]:
        ops = list(self._ops.values())
        if tenant_id is not None:
            ops = [op for op in ops if op.tenant_id == tenant_id]
        return ops


class SliceService:
    """Typed facade over :class:`Orchestrator` + :class:`SliceBroker`.

    Args:
        orchestrator: The live orchestrator.
        broker: Batch-window broker used by ``mode=batch`` submissions;
            one with the default 300 s window is created when omitted.
        operation_capacity: Retention of the async-operation registry.
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        broker: Optional[SliceBroker] = None,
        operation_capacity: int = 1024,
    ) -> None:
        self.orchestrator = orchestrator
        self.broker = broker or SliceBroker(orchestrator)
        self.operations = OperationStore(capacity=operation_capacity)

    # ------------------------------------------------------------------
    # Payload → domain objects
    # ------------------------------------------------------------------
    def resolve_tenant(
        self, header_tenant: Optional[str], body_tenant: Optional[str] = None
    ) -> str:
        """Effective tenant: header wins, then body, then anonymous."""
        return header_tenant or body_tenant or DEFAULT_TENANT

    def build_request(
        self, payload: Dict[str, Any], tenant_id: str
    ) -> Tuple[SliceRequest, TrafficProfile]:
        """Build the (request, traffic profile) pair from a validated
        ``SLICE_CREATE`` payload."""
        try:
            sla = SLA(
                throughput_mbps=payload["throughput_mbps"],
                max_latency_ms=payload["max_latency_ms"],
                duration_s=payload["duration_s"],
                availability=payload["availability"],
            )
            request = SliceRequest(
                tenant_id=tenant_id,
                service_type=payload["service_type"],
                sla=sla,
                price=payload["price"],
                penalty_rate=payload["penalty_rate"],
                arrival_time=self.orchestrator.sim.now,
                n_users=payload["n_users"],
            )
        except SliceError as exc:
            raise ValidationError("invalid_value", str(exc)) from None
        spec = vertical_for(request.service_type)
        rng = self.orchestrator.streams.stream(f"api-profile-{request.request_id}")
        profile = spec.sample_profile(sla.throughput_mbps, rng)
        return request, profile

    # ------------------------------------------------------------------
    # Slice collection
    # ------------------------------------------------------------------
    def create_slice(
        self, payload: Optional[dict], header_tenant: Optional[str] = None
    ) -> Tuple[AdmissionDecision, SliceRequest]:
        """Synchronous (online) admission; returns the final decision."""
        parsed = SLICE_CREATE.parse(payload)
        tenant = self.resolve_tenant(header_tenant, parsed.get("tenant_id"))
        request, profile = self.build_request(parsed, tenant)
        decision = self.orchestrator.submit(request, profile)
        return decision, request

    def create_slice_batch(
        self, payload: Optional[dict], header_tenant: Optional[str] = None
    ) -> Operation:
        """Asynchronous (batch-window) admission through the broker.

        The request queues until the broker's decision window flushes;
        the returned :class:`Operation` resolves with the admit/reject
        decision then (poll ``GET /v1/operations/{op_id}``).
        """
        parsed = SLICE_CREATE.parse(payload)
        tenant = self.resolve_tenant(header_tenant, parsed.get("tenant_id"))
        request, profile = self.build_request(parsed, tenant)
        now = self.orchestrator.sim.now
        op = self.operations.create(
            kind="slice.create.batch",
            request_id=request.request_id,
            tenant_id=tenant,
            now=now,
        )
        self.broker.submit(
            request,
            profile,
            on_decision=lambda decision, op_id=op.op_id: self.operations.resolve(
                op_id, decision, self.orchestrator.sim.now
            ),
        )
        return op

    def list_slices(
        self,
        tenant_id: Optional[str] = None,
        state: Optional[str] = None,
        offset: int = 0,
        limit: Optional[int] = None,
    ) -> Tuple[List[NetworkSlice], int]:
        """Filtered, paginated inventory; returns (page, total_matched).

        ``limit=None`` returns everything past ``offset`` (the legacy
        shim's behavior)."""
        if state is not None:
            valid = [s.value for s in SliceState]
            if state not in valid:
                raise ValidationError(
                    "invalid_parameter",
                    f"unknown state {state!r}; valid: {valid}",
                    field="state",
                )
        slices = self.orchestrator.all_slices()
        if tenant_id is not None:
            slices = [s for s in slices if s.request.tenant_id == tenant_id]
        if state is not None:
            slices = [s for s in slices if s.state.value == state]
        total = len(slices)
        end = None if limit is None else offset + limit
        return slices[offset:end], total

    def get_slice(
        self, slice_id: str, tenant_id: Optional[str] = None
    ) -> NetworkSlice:
        """Slice detail; tenant mismatch reads as 404 (no existence leak).

        Raises:
            NotFound: Unknown slice, or owned by a different tenant.
        """
        try:
            network_slice = self.orchestrator.slice(slice_id)
        except OrchestratorError as exc:
            raise NotFound(str(exc)) from None
        if tenant_id is not None and network_slice.request.tenant_id != tenant_id:
            raise NotFound(f"unknown slice {slice_id}")
        return network_slice

    def delete_slice(
        self, slice_id: str, tenant_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Tear down an ACTIVE slice or cancel one pending activation.

        Raises:
            NotFound: Unknown/foreign slice.
            Conflict: Slice already terminal (expired/rejected/...).
        """
        network_slice = self.get_slice(slice_id, tenant_id)
        state = network_slice.state
        if state is SliceState.ACTIVE:
            refund = self.orchestrator.terminate_early(slice_id, refund=True)
            return {"slice_id": slice_id, "state": "expired", "refund": refund}
        if state in (SliceState.ADMITTED, SliceState.DEPLOYING):
            refund = self.orchestrator.cancel(slice_id, refund=True)
            return {"slice_id": slice_id, "state": "cancelled", "refund": refund}
        raise Conflict(f"slice is {state.value}, not active")

    def modify_slice(
        self,
        slice_id: str,
        payload: Optional[dict],
        tenant_id: Optional[str] = None,
    ) -> AdmissionDecision:
        """Rescale an ACTIVE slice's throughput SLA."""
        parsed = SLICE_MODIFY.parse(payload)
        self.get_slice(slice_id, tenant_id)  # existence + tenancy
        return self.orchestrator.modify_slice(slice_id, parsed["throughput_mbps"])

    def what_if(
        self, payload: Optional[dict], header_tenant: Optional[str] = None
    ) -> dict:
        """Non-committal feasibility probe."""
        parsed = WHAT_IF.parse(payload)
        tenant = self.resolve_tenant(header_tenant, parsed.get("tenant_id"))
        try:
            probe = SliceRequest(
                tenant_id=tenant,
                service_type=parsed["service_type"],
                sla=SLA(
                    throughput_mbps=parsed["throughput_mbps"],
                    max_latency_ms=parsed["max_latency_ms"],
                    duration_s=parsed["duration_s"],
                ),
                price=parsed["price"],
                penalty_rate=parsed["penalty_rate"],
                arrival_time=self.orchestrator.sim.now,
            )
        except SliceError as exc:
            raise ValidationError("invalid_value", str(exc)) from None
        return self.orchestrator.what_if(probe)

    # ------------------------------------------------------------------
    # Operations + events
    # ------------------------------------------------------------------
    def get_operation(
        self, op_id: str, tenant_id: Optional[str] = None
    ) -> Operation:
        """Async-operation detail (tenant-scoped like slices).

        Raises:
            NotFound: Unknown op, or owned by a different tenant.
        """
        op = self.operations.get(op_id)
        if op is None:
            raise NotFound(f"unknown operation {op_id}")
        if tenant_id is not None and op.tenant_id != tenant_id:
            raise NotFound(f"unknown operation {op_id}")
        return op

    def list_operations(self, tenant_id: Optional[str] = None) -> List[Operation]:
        """All retained operations, oldest first (tenant-scoped)."""
        return self.operations.list(tenant_id)

    def events_since(
        self,
        query: Dict[str, str],
        tenant_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """The event feed page for ``GET /v1/events``."""
        log = self.orchestrator.events
        cursor = parse_int_param(query, "since", default=0, minimum=0)
        limit = parse_int_param(query, "limit", default=100, minimum=1, maximum=1000)
        # Tenant-filter BEFORE limiting: a short page then means "scanned
        # to the end", so advancing the cursor to the last returned seq
        # (or last_seq on an empty page) never skips the tenant's events.
        events: List[OrchestrationEvent] = log.since(cursor)
        if tenant_id is not None:
            events = [
                e for e in events if e.tenant_id is None or e.tenant_id == tenant_id
            ]
        events = events[:limit]
        return {
            "events": [e.to_dict() for e in events],
            "last_seq": log.last_seq,
            "first_retained_seq": log.first_seq,
        }

    # ------------------------------------------------------------------
    # Observability passthrough
    # ------------------------------------------------------------------
    def dashboard(self) -> dict:
        """The full orchestrator snapshot."""
        return self.orchestrator.snapshot()

    def domain(self, name: str) -> dict:
        """Per-domain utilization.

        Raises:
            NotFound: Unknown domain name.
        """
        controllers = {
            "ran": self.orchestrator.allocator.ran,
            "transport": self.orchestrator.allocator.transport,
            "cloud": self.orchestrator.allocator.cloud,
        }
        controller = controllers.get(name)
        if controller is None:
            raise NotFound(f"unknown domain {name!r}; valid: {sorted(controllers)}")
        return controller.utilization()


__all__ = [
    "Conflict",
    "DEFAULT_TENANT",
    "NotFound",
    "Operation",
    "OperationStore",
    "ServiceError",
    "SliceService",
]
