"""Service facade between the REST surface and the orchestrator core.

:class:`SliceService` is the single seam the v1 handlers (and the legacy
shim) talk through.  It owns the three concerns an HTTP router should
not: building domain objects out of validated payloads, tenant scoping,
and the async *operation* resources that make the batch-window
:class:`~repro.core.broker.SliceBroker` reachable over the API —
``POST /v1/slices?mode=batch`` enqueues into the broker and hands back a
pollable operation that resolves when the decision window flushes.

Service-layer failures raise :class:`ServiceError` subclasses carrying
an HTTP status and a stable error code; the route layer renders them as
the structured error envelope.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.api.schemas import (
    BOOKING_CREATE,
    SLICE_CREATE,
    SLICE_MODIFY,
    ValidationError,
    WHAT_IF,
    parse_bool_param,
    parse_int_param,
)
from repro.core.admission import AdmissionDecision
from repro.core.broker import SliceBroker
from repro.core.events import OrchestrationEvent
from repro.core.orchestrator import Orchestrator, OrchestratorError
from repro.core.slices import (
    NetworkSlice,
    SLA,
    SliceError,
    SliceRequest,
    SliceState,
    slice_id_for,
)
from repro.traffic.patterns import TrafficProfile
from repro.traffic.verticals import vertical_for

DEFAULT_TENANT = "anonymous"


class ServiceError(Exception):
    """A service-layer failure with an HTTP status and stable code."""

    status = 500
    code = "internal_error"

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class NotFound(ServiceError):
    """The resource does not exist — or belongs to another tenant."""

    status = 404
    code = "not_found"


class Conflict(ServiceError):
    """The resource exists but its state forbids the operation."""

    status = 409
    code = "conflict"


class QuotaExceeded(ServiceError):
    """The tenant is at its quota; retry after slices expire (429)."""

    status = 429
    code = "quota_exceeded"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission ceilings enforced by the service layer.

    ``None`` means unlimited.  A quota counts slices that currently
    hold (or are about to hold) resources — ADMITTED, DEPLOYING and
    ACTIVE — against ``max_active_slices``, and their summed SLA
    throughput against ``max_aggregate_mbps``.
    """

    max_active_slices: Optional[int] = None
    max_aggregate_mbps: Optional[float] = None


@dataclass
class Operation:
    """An asynchronous API operation (currently: batch slice creation).

    Lifecycle: ``pending`` → ``succeeded`` | ``failed`` when the broker
    window flushes and the admit/reject decision lands.
    """

    op_id: str
    kind: str
    request_id: str
    tenant_id: str
    created_at: float
    status: str = "pending"
    decision: Optional[AdmissionDecision] = None
    resolved_at: Optional[float] = None
    #: SLA throughput of the queued request (quota accounting).
    throughput_mbps: float = 0.0

    @property
    def done(self) -> bool:
        return self.status != "pending"

    def to_dict(self) -> dict:
        body: Dict[str, Any] = {
            "operation_id": self.op_id,
            "kind": self.kind,
            "status": self.status,
            "request_id": self.request_id,
            "tenant_id": self.tenant_id,
            "created_at": self.created_at,
            "resolved_at": self.resolved_at,
            "slice_id": self.decision.slice_id if self.decision else None,
        }
        if self.decision is not None:
            body["decision"] = {
                "request_id": self.decision.request_id,
                "admitted": self.decision.admitted,
                "reason": self.decision.reason,
                "slice_id": self.decision.slice_id,
            }
        else:
            body["decision"] = None
        return body


class OperationStore:
    """Bounded registry of async operations.

    ``capacity`` is a hard bound enforced on every insert: eviction
    prefers the oldest resolved operation but falls back to the oldest
    pending one when a burst of unresolved submissions alone exceeds
    the bound (that client's poll then 404s — the documented cost of
    overrunning the registry).
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = capacity
        self._ops: "OrderedDict[str, Operation]" = OrderedDict()
        self._counter = itertools.count(1)

    def _evict(self) -> None:
        while len(self._ops) > self.capacity:
            victim = next(
                (op_id for op_id, op in self._ops.items() if op.done),
                next(iter(self._ops)),
            )
            del self._ops[victim]

    def create(
        self,
        kind: str,
        request_id: str,
        tenant_id: str,
        now: float,
        throughput_mbps: float = 0.0,
    ) -> Operation:
        op = Operation(
            op_id=f"op-{next(self._counter):06d}",
            kind=kind,
            request_id=request_id,
            tenant_id=tenant_id,
            created_at=now,
            throughput_mbps=throughput_mbps,
        )
        self._ops[op.op_id] = op
        self._evict()
        return op

    def resolve(self, op_id: str, decision: AdmissionDecision, now: float) -> None:
        op = self._ops.get(op_id)
        if op is None:  # evicted under pressure — nothing to record
            return
        op.decision = decision
        op.status = "succeeded" if decision.admitted else "failed"
        op.resolved_at = now

    def get(self, op_id: str) -> Optional[Operation]:
        return self._ops.get(op_id)

    def list(self, tenant_id: Optional[str] = None) -> List[Operation]:
        ops = list(self._ops.values())
        if tenant_id is not None:
            ops = [op for op in ops if op.tenant_id == tenant_id]
        return ops


class SliceService:
    """Typed facade over :class:`Orchestrator` + :class:`SliceBroker`.

    Args:
        orchestrator: The live orchestrator.
        broker: Batch-window broker used by ``mode=batch`` submissions;
            one with the default 300 s window is created when omitted.
        operation_capacity: Retention of the async-operation registry.
        quotas: Per-tenant :class:`TenantQuota` overrides.
        default_quota: Quota applied to tenants without an override
            (None — the default — disables quota enforcement for them).
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        broker: Optional[SliceBroker] = None,
        operation_capacity: int = 1024,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
    ) -> None:
        self.orchestrator = orchestrator
        self.broker = broker or SliceBroker(orchestrator)
        self.operations = OperationStore(capacity=operation_capacity)
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        # request_id -> (tenant, throughput_mbps) for API-created advance
        # bookings; pruned lazily once the calendar drops the booking.
        self._bookings: Dict[str, Tuple[str, float]] = {}
        # Quotas recovered before this service existed (a service-less
        # RecoveryManager.restore) seed the table; explicit constructor
        # quotas win.
        for tenant_id, payload in orchestrator.recovered_quotas.items():
            self.quotas.setdefault(
                tenant_id,
                TenantQuota(
                    max_active_slices=payload.get("max_active_slices"),
                    max_aggregate_mbps=payload.get("max_aggregate_mbps"),
                ),
            )
        # Tenant quotas ride along in every durability checkpoint, so a
        # recovered control plane enforces the same ceilings.
        orchestrator.durable_sections["quotas"] = self._quota_state

    # ------------------------------------------------------------------
    # Quotas
    # ------------------------------------------------------------------
    def quota_for(self, tenant_id: str) -> Optional[TenantQuota]:
        """The quota applying to ``tenant_id`` (None = unlimited)."""
        return self.quotas.get(tenant_id, self.default_quota)

    def set_quota(
        self,
        tenant_id: str,
        max_active_slices: Optional[int] = None,
        max_aggregate_mbps: Optional[float] = None,
    ) -> TenantQuota:
        """Install (or replace) a tenant's quota — journaled, so the
        ceiling survives an orchestrator restart."""
        quota = TenantQuota(
            max_active_slices=max_active_slices,
            max_aggregate_mbps=max_aggregate_mbps,
        )
        self.quotas[tenant_id] = quota
        self.orchestrator.store.append(
            "quota.set",
            time=self.orchestrator.sim.now,
            tenant_id=tenant_id,
            max_active_slices=max_active_slices,
            max_aggregate_mbps=max_aggregate_mbps,
        )
        return quota

    def _quota_state(self) -> Dict[str, Dict[str, Any]]:
        """Checkpoint section: every explicit per-tenant quota."""
        return {
            tenant: {
                "max_active_slices": quota.max_active_slices,
                "max_aggregate_mbps": quota.max_aggregate_mbps,
            }
            for tenant, quota in self.quotas.items()
        }

    def apply_recovered_quotas(self, quotas: Dict[str, Dict[str, Any]]) -> int:
        """Re-apply journaled quotas after a restart (recovery path);
        returns how many tenants were restored."""
        for tenant_id, payload in quotas.items():
            self.quotas[tenant_id] = TenantQuota(
                max_active_slices=payload.get("max_active_slices"),
                max_aggregate_mbps=payload.get("max_aggregate_mbps"),
            )
        return len(quotas)

    def _request_installed(self, request_id: str) -> bool:
        """Whether a request's install already fired (a slice record —
        admitted or rejected — exists for it).  O(1)."""
        return self.orchestrator.has_slice(slice_id_for(request_id))

    def _prune_stale_bookings(self) -> None:
        """Drop booking records that no longer represent *future* load.

        With the calendar respected (the default), the calendar itself
        is the source of truth: a booking it dropped was released
        (expired, cancelled, failed install).  With
        ``respect_calendar=False`` the calendar never held the booking,
        so a record lives until its install fires (the slice record —
        admitted or rejected — then exists).
        """
        if getattr(self.orchestrator.config, "respect_calendar", True):
            calendar = self.orchestrator.calendar
            stale = [rid for rid in self._bookings if not calendar.has(rid)]
        else:
            stale = [rid for rid in self._bookings if self._request_installed(rid)]
        for rid in stale:
            del self._bookings[rid]

    def quota_usage(self, tenant_id: str) -> Dict[str, float]:
        """Current quota-relevant usage of a tenant.

        Counts live slices (ADMITTED/DEPLOYING/ACTIVE) *plus* queued
        future capacity — admitted advance bookings not installed yet
        and pending batch operations — otherwise a tenant could queue
        unlimited load through ``POST /v1/bookings`` or a broker window
        and blow past its quota when it lands.  Cost is O(live + queued),
        independent of the historical slice record.
        """
        live = [
            s
            for s in self.orchestrator.live_slices()
            if s.request.tenant_id == tenant_id
        ]
        self._prune_stale_bookings()
        queued = [
            throughput
            for rid, (owner, throughput) in self._bookings.items()
            if owner == tenant_id and not self._request_installed(rid)
        ]
        queued += [
            op.throughput_mbps
            for op in self.operations.list(tenant_id)
            if not op.done and not self._request_installed(op.request_id)
        ]
        return {
            "active_slices": len(live) + len(queued),
            "aggregate_mbps": sum(s.request.sla.throughput_mbps for s in live)
            + sum(queued),
        }

    def _enforce_quota(self, tenant_id: str, throughput_mbps: float) -> None:
        """Reject a submission that would push the tenant over quota.

        Raises:
            QuotaExceeded: With a message naming the exhausted limit.
        """
        quota = self.quota_for(tenant_id)
        if quota is None:
            return
        usage = self.quota_usage(tenant_id)
        if (
            quota.max_active_slices is not None
            and usage["active_slices"] + 1 > quota.max_active_slices
        ):
            raise QuotaExceeded(
                f"tenant {tenant_id} is at its slice quota "
                f"({usage['active_slices']:.0f}/{quota.max_active_slices} active)"
            )
        if (
            quota.max_aggregate_mbps is not None
            and usage["aggregate_mbps"] + throughput_mbps
            > quota.max_aggregate_mbps + 1e-9
        ):
            raise QuotaExceeded(
                f"tenant {tenant_id} would exceed its aggregate throughput quota "
                f"({usage['aggregate_mbps']:.1f} + {throughput_mbps:.1f} > "
                f"{quota.max_aggregate_mbps:.1f} Mb/s)"
            )

    # ------------------------------------------------------------------
    # Payload → domain objects
    # ------------------------------------------------------------------
    def resolve_tenant(
        self, header_tenant: Optional[str], body_tenant: Optional[str] = None
    ) -> str:
        """Effective tenant: header wins, then body, then anonymous."""
        return header_tenant or body_tenant or DEFAULT_TENANT

    def build_request(
        self, payload: Dict[str, Any], tenant_id: str
    ) -> Tuple[SliceRequest, TrafficProfile]:
        """Build the (request, traffic profile) pair from a validated
        ``SLICE_CREATE`` payload."""
        try:
            sla = SLA(
                throughput_mbps=payload["throughput_mbps"],
                max_latency_ms=payload["max_latency_ms"],
                duration_s=payload["duration_s"],
                availability=payload["availability"],
            )
            request = SliceRequest(
                tenant_id=tenant_id,
                service_type=payload["service_type"],
                sla=sla,
                price=payload["price"],
                penalty_rate=payload["penalty_rate"],
                arrival_time=self.orchestrator.sim.now,
                n_users=payload["n_users"],
            )
        except SliceError as exc:
            raise ValidationError("invalid_value", str(exc)) from None
        spec = vertical_for(request.service_type)
        rng = self.orchestrator.streams.stream(f"api-profile-{request.request_id}")
        profile = spec.sample_profile(sla.throughput_mbps, rng)
        return request, profile

    # ------------------------------------------------------------------
    # Slice collection
    # ------------------------------------------------------------------
    def create_slice(
        self, payload: Optional[dict], header_tenant: Optional[str] = None
    ) -> Tuple[AdmissionDecision, SliceRequest]:
        """Synchronous (online) admission; returns the final decision."""
        parsed = SLICE_CREATE.parse(payload)
        tenant = self.resolve_tenant(header_tenant, parsed.get("tenant_id"))
        self._enforce_quota(tenant, parsed["throughput_mbps"])
        request, profile = self.build_request(parsed, tenant)
        decision = self.orchestrator.submit(request, profile)
        return decision, request

    def create_slice_batch(
        self, payload: Optional[dict], header_tenant: Optional[str] = None
    ) -> Operation:
        """Asynchronous (batch-window) admission through the broker.

        The request queues until the broker's decision window flushes;
        the window's winners are then installed as one *concurrent*
        batch through the orchestrator's
        :class:`~repro.drivers.planner.BatchInstallPlanner` (deployment
        latency of N slices ≈ the slowest single install, not the sum).
        The returned :class:`Operation` resolves with the admit/reject
        decision then (poll ``GET /v1/operations/{op_id}``).
        """
        parsed = SLICE_CREATE.parse(payload)
        tenant = self.resolve_tenant(header_tenant, parsed.get("tenant_id"))
        self._enforce_quota(tenant, parsed["throughput_mbps"])
        request, profile = self.build_request(parsed, tenant)
        now = self.orchestrator.sim.now
        op = self.operations.create(
            kind="slice.create.batch",
            request_id=request.request_id,
            tenant_id=tenant,
            now=now,
            throughput_mbps=request.sla.throughput_mbps,
        )
        self.broker.submit(
            request,
            profile,
            on_decision=lambda decision, op_id=op.op_id: self.operations.resolve(
                op_id, decision, self.orchestrator.sim.now
            ),
        )
        return op

    def create_booking(
        self, payload: Optional[dict], header_tenant: Optional[str] = None
    ) -> Tuple[AdmissionDecision, SliceRequest, float]:
        """Advance reservation: admit against the resource calendar.

        The request is checked over its *whole future window* (ongoing
        slices + already-promised bookings); an accepted booking is
        committed to the calendar immediately and installed when
        ``start_time`` arrives.  Returns (decision, request, start_time).

        Raises:
            ValidationError: Malformed payload, or ``start_time`` in
                the past.
            QuotaExceeded: Tenant at quota (checked at booking time).
        """
        parsed = BOOKING_CREATE.parse(payload)
        tenant = self.resolve_tenant(header_tenant, parsed.get("tenant_id"))
        # Prune here too: with quotas disabled, neither quota_usage nor
        # a listing may ever run, and records must not pile up forever.
        self._prune_stale_bookings()
        self._enforce_quota(tenant, parsed["throughput_mbps"])
        start_time = parsed["start_time"]
        if start_time < self.orchestrator.sim.now:
            raise ValidationError(
                "invalid_value",
                f"start_time must be in the future "
                f"(start={start_time}, now={self.orchestrator.sim.now})",
                field="start_time",
            )
        request, profile = self.build_request(parsed, tenant)
        decision = self.orchestrator.submit_advance(request, profile, start_time)
        if decision.admitted:
            self._bookings[request.request_id] = (
                tenant,
                request.sla.throughput_mbps,
            )
        return decision, request, start_time

    def cancel_booking(
        self, booking_id: str, tenant_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Withdraw a pending advance booking, freeing its calendar
        window and quota slot immediately.

        Raises:
            NotFound: Unknown booking, or owned by a different tenant
                (bookings made outside the API are not cancellable here).
            Conflict: The booking's install already fired — manage the
                resulting slice via ``DELETE /v1/slices/{id}`` instead.
        """
        record = self._bookings.get(booking_id)
        if record is None:
            raise NotFound(f"unknown booking {booking_id}")
        owner, _ = record
        if tenant_id is not None and owner != tenant_id:
            raise NotFound(f"unknown booking {booking_id}")
        try:
            self.orchestrator.cancel_advance(booking_id, tenant_id=owner)
        except OrchestratorError:
            raise Conflict(
                f"booking {booking_id} already installed; manage the slice "
                f"({slice_id_for(booking_id)}) instead"
            ) from None
        del self._bookings[booking_id]
        return {"booking_id": booking_id, "state": "cancelled"}

    def list_bookings(self, tenant_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """*Pending* advance bookings created through the API,
        start-ordered (tenant-scoped when a tenant is given).

        Driven by the service's own booking records, not the raw
        calendar — the calendar also carries every immediate slice's
        commitment, and a booking whose install already fired is a
        slice (manage it via ``/v1/slices/{id}``), so neither appears
        here.  Window details (``end``, ``demand``) are joined from the
        calendar when it holds the booking (always, unless the
        orchestrator runs with ``respect_calendar=False``).
        """
        self._prune_stale_bookings()
        windows = {b.booking_id: b for b in self.orchestrator.calendar.bookings()}
        out: List[Dict[str, Any]] = []
        for rid, (owner, _) in self._bookings.items():
            if tenant_id is not None and owner != tenant_id:
                continue
            if self._request_installed(rid):
                continue  # now a slice — manage it via /v1/slices/{id}
            window = windows.get(rid)
            start = (
                window.start
                if window is not None
                else self.orchestrator.advance_start_time(rid)
            )
            out.append(
                {
                    "booking_id": rid,
                    "tenant_id": owner,
                    "start": start,
                    "end": window.end if window is not None else None,
                    "demand": {
                        "prbs": float(window.demand.prbs),
                        "mbps": float(window.demand.mbps),
                        "vcpus": float(window.demand.vcpus),
                    }
                    if window is not None
                    else None,
                }
            )
        out.sort(
            key=lambda e: (
                e["start"] if e["start"] is not None else float("inf"),
                e["booking_id"],
            )
        )
        return out

    def list_slices(
        self,
        tenant_id: Optional[str] = None,
        state: Optional[str] = None,
        offset: int = 0,
        limit: Optional[int] = None,
    ) -> Tuple[List[NetworkSlice], int]:
        """Filtered, paginated inventory; returns (page, total_matched).

        ``limit=None`` returns everything past ``offset`` (the legacy
        shim's behavior)."""
        if state is not None:
            valid = [s.value for s in SliceState]
            if state not in valid:
                raise ValidationError(
                    "invalid_parameter",
                    f"unknown state {state!r}; valid: {valid}",
                    field="state",
                )
        slices = self.orchestrator.all_slices()
        if tenant_id is not None:
            slices = [s for s in slices if s.request.tenant_id == tenant_id]
        if state is not None:
            slices = [s for s in slices if s.state.value == state]
        total = len(slices)
        end = None if limit is None else offset + limit
        return slices[offset:end], total

    def get_slice(
        self, slice_id: str, tenant_id: Optional[str] = None
    ) -> NetworkSlice:
        """Slice detail; tenant mismatch reads as 404 (no existence leak).

        Raises:
            NotFound: Unknown slice, or owned by a different tenant.
        """
        try:
            network_slice = self.orchestrator.slice(slice_id)
        except OrchestratorError as exc:
            raise NotFound(str(exc)) from None
        if tenant_id is not None and network_slice.request.tenant_id != tenant_id:
            raise NotFound(f"unknown slice {slice_id}")
        return network_slice

    def delete_slice(
        self, slice_id: str, tenant_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Tear down an ACTIVE slice or cancel one pending activation.

        Raises:
            NotFound: Unknown/foreign slice.
            Conflict: Slice already terminal (expired/rejected/...).
        """
        network_slice = self.get_slice(slice_id, tenant_id)
        state = network_slice.state
        if state is SliceState.ACTIVE:
            refund = self.orchestrator.terminate_early(slice_id, refund=True)
            return {"slice_id": slice_id, "state": "expired", "refund": refund}
        if state in (SliceState.ADMITTED, SliceState.DEPLOYING):
            refund = self.orchestrator.cancel(slice_id, refund=True)
            return {"slice_id": slice_id, "state": "cancelled", "refund": refund}
        raise Conflict(f"slice is {state.value}, not active")

    def modify_slice(
        self,
        slice_id: str,
        payload: Optional[dict],
        tenant_id: Optional[str] = None,
    ) -> AdmissionDecision:
        """Rescale an ACTIVE slice's throughput SLA.

        The grow is checked against the owner's aggregate-throughput
        quota (otherwise create-small-then-PATCH-big would void it).

        Raises:
            QuotaExceeded: The rescale would exceed ``max_aggregate_mbps``.
        """
        parsed = SLICE_MODIFY.parse(payload)
        network_slice = self.get_slice(slice_id, tenant_id)  # existence + tenancy
        self._enforce_rescale_quota(network_slice, parsed["throughput_mbps"])
        return self.orchestrator.modify_slice(slice_id, parsed["throughput_mbps"])

    def _enforce_rescale_quota(
        self, network_slice: NetworkSlice, new_throughput_mbps: float
    ) -> None:
        """Quota check for a rescale: the slice's own current share is
        swapped out for the requested one before comparing."""
        owner = network_slice.request.tenant_id
        quota = self.quota_for(owner)
        if quota is None or quota.max_aggregate_mbps is None:
            return
        usage = self.quota_usage(owner)
        current = (
            network_slice.request.sla.throughput_mbps
            if network_slice.state
            in (SliceState.ADMITTED, SliceState.DEPLOYING, SliceState.ACTIVE)
            else 0.0
        )
        projected = usage["aggregate_mbps"] - current + new_throughput_mbps
        if projected > quota.max_aggregate_mbps + 1e-9:
            raise QuotaExceeded(
                f"tenant {owner} would exceed its aggregate throughput quota "
                f"({projected:.1f} > {quota.max_aggregate_mbps:.1f} Mb/s)"
            )

    def what_if(
        self, payload: Optional[dict], header_tenant: Optional[str] = None
    ) -> dict:
        """Non-committal feasibility probe."""
        parsed = WHAT_IF.parse(payload)
        tenant = self.resolve_tenant(header_tenant, parsed.get("tenant_id"))
        try:
            probe = SliceRequest(
                tenant_id=tenant,
                service_type=parsed["service_type"],
                sla=SLA(
                    throughput_mbps=parsed["throughput_mbps"],
                    max_latency_ms=parsed["max_latency_ms"],
                    duration_s=parsed["duration_s"],
                ),
                price=parsed["price"],
                penalty_rate=parsed["penalty_rate"],
                arrival_time=self.orchestrator.sim.now,
            )
        except SliceError as exc:
            raise ValidationError("invalid_value", str(exc)) from None
        return self.orchestrator.what_if(probe)

    # ------------------------------------------------------------------
    # Operations + events
    # ------------------------------------------------------------------
    def get_operation(
        self, op_id: str, tenant_id: Optional[str] = None
    ) -> Operation:
        """Async-operation detail (tenant-scoped like slices).

        Raises:
            NotFound: Unknown op, or owned by a different tenant.
        """
        op = self.operations.get(op_id)
        if op is None:
            raise NotFound(f"unknown operation {op_id}")
        if tenant_id is not None and op.tenant_id != tenant_id:
            raise NotFound(f"unknown operation {op_id}")
        return op

    def list_operations(self, tenant_id: Optional[str] = None) -> List[Operation]:
        """All retained operations, oldest first (tenant-scoped)."""
        return self.operations.list(tenant_id)

    def events_since(
        self,
        query: Dict[str, str],
        tenant_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """The event feed page for ``GET /v1/events``.

        Two cursors:

        - ``since=<seq>`` — the in-memory feed (bounded buffer; fast,
          but a consumer that falls behind sees a gap);
        - ``after_lsn=<lsn>`` — the **durable** cursor: events are
          replayed from the write-ahead journal, so a consumer can
          resume across orchestrator restarts and beyond the in-memory
          buffer.  Replay reaches back to the latest checkpoint
          (``replay_floor_lsn``); requires durability to be enabled.
        """
        log = self.orchestrator.events
        limit = parse_int_param(query, "limit", default=100, minimum=1, maximum=1000)
        if "after_lsn" in query:
            return self._events_after_lsn(query, tenant_id, limit)
        cursor = parse_int_param(query, "since", default=0, minimum=0)
        # Tenant-filter BEFORE limiting: a short page then means "scanned
        # to the end", so advancing the cursor to the last returned seq
        # (or last_seq on an empty page) never skips the tenant's events.
        events: List[OrchestrationEvent] = log.since(cursor)
        if tenant_id is not None:
            events = [
                e for e in events if e.tenant_id is None or e.tenant_id == tenant_id
            ]
        events = events[:limit]
        return {
            "events": [e.to_dict() for e in events],
            "last_seq": log.last_seq,
            "first_retained_seq": log.first_seq,
        }

    def _events_after_lsn(
        self, query: Dict[str, str], tenant_id: Optional[str], limit: int
    ) -> Dict[str, Any]:
        """Durable event replay from the journal (see
        :meth:`events_since`)."""
        store = self.orchestrator.store
        if not store.enabled:
            raise ValidationError(
                "invalid_parameter",
                "after_lsn requires durability (no durability_dir configured)",
                field="after_lsn",
            )
        after_lsn = parse_int_param(query, "after_lsn", default=0, minimum=0)
        # Tenant-filter BEFORE limiting, same contract as the in-memory
        # path: a short page means "scanned to the end of the journal",
        # and only then is last_lsn a safe cursor to jump to — otherwise
        # consumers advance to the last *returned* event's lsn.  Without
        # a tenant filter the limit pushes down into the journal scan.
        if tenant_id is None:
            pairs = store.events_after(after_lsn, limit=limit)
        else:
            pairs = [
                (lsn, e)
                for lsn, e in store.events_after(after_lsn)
                if e.get("tenant_id") is None or e.get("tenant_id") == tenant_id
            ][:limit]
        return {
            "events": [dict(event, lsn=lsn) for lsn, event in pairs],
            "last_lsn": store.last_lsn,
            "replay_floor_lsn": store.snapshot_lsn,
            "last_seq": self.orchestrator.events.last_seq,
        }

    # ------------------------------------------------------------------
    # Observability passthrough
    # ------------------------------------------------------------------
    def dashboard(self) -> dict:
        """The full orchestrator snapshot."""
        return self.orchestrator.snapshot()

    def domain(self, name: str) -> dict:
        """Per-domain utilization, served by the southbound driver
        registry — any registered backend (incl. ``epc`` or injected
        mocks) is addressable here.

        Raises:
            NotFound: Unknown domain name.
        """
        registry = self.orchestrator.registry
        if name not in registry:
            raise NotFound(
                f"unknown domain {name!r}; valid: {sorted(registry.domains())}"
            )
        return registry.get(name).utilization()

    # ------------------------------------------------------------------
    # Admin surface (operator-scoped; see docs/API.md)
    # ------------------------------------------------------------------
    def admin_state(self) -> dict:
        """Durability + control-plane health for ``GET /v1/admin/state``."""
        orchestrator = self.orchestrator
        live = orchestrator.live_slices()
        return {
            "durability": orchestrator.store.status(),
            "control_plane": {
                "time": orchestrator.sim.now,
                "live_slices": len(live),
                "active_slices": len(orchestrator.active_slices()),
                "pending_installs": orchestrator.pending_installs,
                "pending_bookings": len(orchestrator.calendar.bookings()),
                "plmn_available": orchestrator.plmn_pool.available,
                "quota_tenants": sorted(self.quotas),
            },
            "planner": {
                "batches_run": orchestrator.planner.batches_run,
                "jobs_installed": orchestrator.planner.jobs_installed,
                "jobs_failed": orchestrator.planner.jobs_failed,
                "ops_timed_out": orchestrator.planner.ops_timed_out,
                "ops_compensated": orchestrator.planner.ops_compensated,
            },
        }

    def metrics_prometheus(self) -> str:
        """Prometheus text exposition for ``GET /v1/admin/metrics``.

        Control-plane histograms/counters/gauges under the ``cp_``
        namespace, sim-telemetry lines re-emitted under ``sim_``.  With
        observability disabled only the sim namespace is rendered.
        """
        from repro.obs.export import render_prometheus

        return render_prometheus(
            self.orchestrator.obs, sim_metrics=self.orchestrator.metrics
        )

    def traces(self, query: Dict[str, str]) -> dict:
        """Finished traces (or slow spans) for ``GET /v1/admin/traces``.

        Query: ``limit`` (default 50, max 1000) and ``slow`` — when
        true, returns the slow-span audit log (spans that exceeded the
        tracer's threshold, each with its ancestry chain) instead of
        assembled traces.

        Raises:
            ValidationError: On malformed ``limit``/``slow`` values.
        """
        limit = parse_int_param(query, "limit", default=50, minimum=1, maximum=1000)
        slow = parse_bool_param(query, "slow", default=False)
        obs = self.orchestrator.obs
        if not obs.enabled:
            return {
                "enabled": False,
                "slow": slow,
                "count": 0,
                "traces": [],
                "slow_spans": [],
            }
        body: Dict[str, Any] = {
            "enabled": True,
            "slow": slow,
            "tracer": obs.tracer.status(),
        }
        if slow:
            spans = obs.tracer.slow_spans(limit)
            body.update(
                {
                    "count": len(spans),
                    "slow_threshold_ms": obs.tracer.slow_threshold_ms,
                    "slow_spans": spans,
                    "traces": [],
                }
            )
        else:
            traces = obs.tracer.traces(limit)
            body.update({"count": len(traces), "traces": traces, "slow_spans": []})
        return body

    def checkpoint(self) -> dict:
        """Force a snapshot + journal compaction
        (``POST /v1/admin/checkpoint``).

        Raises:
            Conflict: When durability is disabled — there is nothing
                to checkpoint a memory-only control plane into.
        """
        if not self.orchestrator.store.enabled:
            raise Conflict(
                "durability is disabled (no durability_dir configured)"
            )
        return self.orchestrator.checkpoint()


__all__ = [
    "Conflict",
    "DEFAULT_TENANT",
    "NotFound",
    "Operation",
    "OperationStore",
    "QuotaExceeded",
    "ServiceError",
    "SliceService",
    "TenantQuota",
]
