"""Orchestrator REST surface.

The routes the demo dashboard uses:

- ``POST /slices`` — request a slice (duration, latency, throughput,
  price, penalty: exactly the dashboard's input fields),
- ``GET /slices`` / ``GET /slices/{slice_id}`` — inventory and detail,
- ``DELETE /slices/{slice_id}`` — early teardown,
- ``GET /dashboard`` — the full snapshot (gain vs. penalties),
- ``GET /domains/{domain}`` — per-domain utilization.
"""

from __future__ import annotations

from typing import Optional

from repro.api.rest import Request, Response, RestApi
from repro.core.orchestrator import Orchestrator, OrchestratorError
from repro.core.slices import SLA, ServiceType, SliceRequest, SliceState
from repro.traffic.verticals import vertical_for


def build_orchestrator_api(orchestrator: Orchestrator) -> RestApi:
    """Wire an orchestrator behind the demo's REST surface."""
    api = RestApi()

    def post_slice(request: Request) -> Response:
        body = request.body or {}
        required = ["service_type", "throughput_mbps", "max_latency_ms", "duration_s", "price", "penalty_rate"]
        missing = [key for key in required if key not in body]
        if missing:
            return Response(status=400, body={"error": f"missing fields: {missing}"})
        try:
            service_type = ServiceType(body["service_type"])
        except ValueError:
            valid = [t.value for t in ServiceType]
            return Response(
                status=400,
                body={"error": f"unknown service_type {body['service_type']!r}; valid: {valid}"},
            )
        try:
            sla = SLA(
                throughput_mbps=float(body["throughput_mbps"]),
                max_latency_ms=float(body["max_latency_ms"]),
                duration_s=float(body["duration_s"]),
                availability=float(body.get("availability", 0.95)),
            )
            slice_request = SliceRequest(
                tenant_id=str(body.get("tenant_id", "anonymous")),
                service_type=service_type,
                sla=sla,
                price=float(body["price"]),
                penalty_rate=float(body["penalty_rate"]),
                arrival_time=orchestrator.sim.now,
                n_users=int(body.get("n_users", 10)),
            )
        except (ValueError, RuntimeError) as exc:
            return Response(status=400, body={"error": str(exc)})
        spec = vertical_for(service_type)
        rng = orchestrator.streams.stream(f"api-profile-{slice_request.request_id}")
        profile = spec.sample_profile(sla.throughput_mbps, rng)
        decision = orchestrator.submit(slice_request, profile)
        slice_id = slice_request.request_id.replace("req-", "slice-")
        status = 201 if decision.admitted else 409
        return Response(
            status=status,
            body={
                "request_id": slice_request.request_id,
                "slice_id": slice_id if decision.admitted else None,
                "admitted": decision.admitted,
                "reason": decision.reason,
            },
        )

    def get_slices(request: Request) -> dict:
        return {"slices": [s.to_dict() for s in orchestrator.all_slices()]}

    def get_slice(request: Request) -> Response:
        try:
            network_slice = orchestrator.slice(request.params["slice_id"])
        except OrchestratorError as exc:
            return Response(status=404, body={"error": str(exc)})
        return Response(status=200, body=network_slice.to_dict())

    def delete_slice(request: Request) -> Response:
        slice_id = request.params["slice_id"]
        try:
            network_slice = orchestrator.slice(slice_id)
        except OrchestratorError as exc:
            return Response(status=404, body={"error": str(exc)})
        if network_slice.state is not SliceState.ACTIVE:
            return Response(
                status=409,
                body={"error": f"slice is {network_slice.state.value}, not active"},
            )
        refund = orchestrator.terminate_early(slice_id, refund=True)
        return Response(
            status=200,
            body={"slice_id": slice_id, "state": "expired", "refund": refund},
        )

    def get_dashboard(request: Request) -> dict:
        return orchestrator.snapshot()

    def get_domain(request: Request) -> Response:
        domain = request.params["domain"]
        controllers = {
            "ran": orchestrator.allocator.ran,
            "transport": orchestrator.allocator.transport,
            "cloud": orchestrator.allocator.cloud,
        }
        controller = controllers.get(domain)
        if controller is None:
            return Response(
                status=404,
                body={"error": f"unknown domain {domain!r}; valid: {sorted(controllers)}"},
            )
        return Response(status=200, body=controller.utilization())

    def patch_slice(request: Request) -> Response:
        slice_id = request.params["slice_id"]
        body = request.body or {}
        if "throughput_mbps" not in body:
            return Response(status=400, body={"error": "missing throughput_mbps"})
        try:
            new_mbps = float(body["throughput_mbps"])
        except (TypeError, ValueError):
            return Response(status=400, body={"error": "throughput_mbps must be a number"})
        try:
            orchestrator.slice(slice_id)
        except OrchestratorError as exc:
            return Response(status=404, body={"error": str(exc)})
        decision = orchestrator.modify_slice(slice_id, new_mbps)
        status = 200 if decision.admitted else 409
        return Response(
            status=status,
            body={"slice_id": slice_id, "admitted": decision.admitted, "reason": decision.reason},
        )

    def post_whatif(request: Request) -> Response:
        body = request.body or {}
        required = ["service_type", "throughput_mbps", "max_latency_ms", "duration_s"]
        missing = [key for key in required if key not in body]
        if missing:
            return Response(status=400, body={"error": f"missing fields: {missing}"})
        try:
            service_type = ServiceType(body["service_type"])
            sla = SLA(
                throughput_mbps=float(body["throughput_mbps"]),
                max_latency_ms=float(body["max_latency_ms"]),
                duration_s=float(body["duration_s"]),
            )
            probe = SliceRequest(
                tenant_id=str(body.get("tenant_id", "anonymous")),
                service_type=service_type,
                sla=sla,
                price=float(body.get("price", 0.0)),
                penalty_rate=float(body.get("penalty_rate", 0.0)),
                arrival_time=orchestrator.sim.now,
            )
        except (ValueError, RuntimeError) as exc:
            return Response(status=400, body={"error": str(exc)})
        return Response(status=200, body=orchestrator.what_if(probe))

    api.route("POST", "/whatif", post_whatif)
    api.route("POST", "/slices", post_slice)
    api.route("GET", "/slices", get_slices)
    api.route("GET", "/slices/{slice_id}", get_slice)
    api.route("PATCH", "/slices/{slice_id}", patch_slice)
    api.route("DELETE", "/slices/{slice_id}", delete_slice)
    api.route("GET", "/dashboard", get_dashboard)
    api.route("GET", "/domains/{domain}", get_domain)
    return api


__all__ = ["build_orchestrator_api"]
