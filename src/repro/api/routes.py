"""Legacy (unversioned) REST surface — a deprecated shim over v1.

The routes the original demo dashboard used keep answering with their
historical shapes (flat ``{"error": "..."}`` strings, the same status
codes), but every handler now delegates to the same
:class:`~repro.api.service.SliceService` that powers ``/v1`` — there is
exactly one validation and one orchestration path.  One deliberate
behavior change rides along: validation is now the v1 schema's, which
is stricter than the old hand-rolled coercion (e.g. a boolean for a
numeric field or a non-string ``tenant_id`` is 400 instead of being
silently coerced).  New clients should
use the versioned surface registered alongside (see
:func:`repro.api.v1.build_v1_api` and ``docs/API.md``):

- ``POST /slices`` — request a slice (duration, latency, throughput,
  price, penalty: exactly the dashboard's input fields),
- ``GET /slices`` / ``GET /slices/{slice_id}`` — inventory and detail,
- ``DELETE /slices/{slice_id}`` — early teardown (or cancellation of a
  slice still pending activation),
- ``GET /dashboard`` — the full snapshot (gain vs. penalties),
- ``GET /domains/{domain}`` — per-domain utilization.
"""

from __future__ import annotations

from typing import Optional

from repro.api.rest import Request, Response, RestApi
from repro.api.schemas import ValidationError
from repro.api.service import Conflict, NotFound, SliceService
from repro.api.v1 import build_v1_api
from repro.core.broker import SliceBroker
from repro.core.orchestrator import Orchestrator


def register_legacy_routes(service: SliceService, api: RestApi) -> RestApi:
    """Mount the deprecated unversioned routes, delegating to ``service``."""

    def post_slice(request: Request) -> Response:
        try:
            decision, _ = service.create_slice(request.body)
        except ValidationError as exc:
            return Response(status=400, body={"error": exc.message})
        status = 201 if decision.admitted else 409
        return Response(
            status=status,
            body={
                "request_id": decision.request_id,
                "slice_id": decision.slice_id if decision.admitted else None,
                "admitted": decision.admitted,
                "reason": decision.reason,
            },
        )

    def get_slices(request: Request) -> dict:
        slices, _ = service.list_slices()
        return {"slices": [s.to_dict() for s in slices]}

    def get_slice(request: Request) -> Response:
        try:
            network_slice = service.get_slice(request.params["slice_id"])
        except NotFound as exc:
            return Response(status=404, body={"error": exc.message})
        return Response(status=200, body=network_slice.to_dict())

    def delete_slice(request: Request) -> Response:
        try:
            result = service.delete_slice(request.params["slice_id"])
        except NotFound as exc:
            return Response(status=404, body={"error": exc.message})
        except Conflict as exc:
            return Response(status=409, body={"error": exc.message})
        return Response(status=200, body=result)

    def get_dashboard(request: Request) -> dict:
        return service.dashboard()

    def get_domain(request: Request) -> Response:
        try:
            utilization = service.domain(request.params["domain"])
        except NotFound as exc:
            return Response(status=404, body={"error": exc.message})
        return Response(status=200, body=utilization)

    def patch_slice(request: Request) -> Response:
        try:
            decision = service.modify_slice(request.params["slice_id"], request.body)
        except ValidationError as exc:
            return Response(status=400, body={"error": exc.message})
        except NotFound as exc:
            return Response(status=404, body={"error": exc.message})
        slice_id = request.params["slice_id"]
        status = 200 if decision.admitted else 409
        return Response(
            status=status,
            body={"slice_id": slice_id, "admitted": decision.admitted, "reason": decision.reason},
        )

    def post_whatif(request: Request) -> Response:
        try:
            report = service.what_if(request.body)
        except ValidationError as exc:
            return Response(status=400, body={"error": exc.message})
        return Response(status=200, body=report)

    api.route("POST", "/whatif", post_whatif)
    api.route("POST", "/slices", post_slice)
    api.route("GET", "/slices", get_slices)
    api.route("GET", "/slices/{slice_id}", get_slice)
    api.route("PATCH", "/slices/{slice_id}", patch_slice)
    api.route("DELETE", "/slices/{slice_id}", delete_slice)
    api.route("GET", "/dashboard", get_dashboard)
    api.route("GET", "/domains/{domain}", get_domain)
    return api


def build_orchestrator_api(
    orchestrator: Orchestrator,
    broker: Optional[SliceBroker] = None,
    service: Optional[SliceService] = None,
) -> RestApi:
    """Wire an orchestrator behind the full REST surface.

    Registers the versioned ``/v1`` routes plus the deprecated
    unversioned shim on one router, both backed by the same
    :class:`SliceService`.  Pass ``broker`` to reuse an existing
    batch-window broker for ``POST /v1/slices?mode=batch``.
    """
    service = service or SliceService(orchestrator, broker=broker)
    api = build_v1_api(service)
    register_legacy_routes(service, api)
    return api


__all__ = ["build_orchestrator_api", "register_legacy_routes"]
