"""REST API layer.

``repro.api.v1`` is the versioned northbound surface; the unversioned
routes in ``repro.api.routes`` are a deprecated shim kept for old
clients.  Both run on the in-process router in ``repro.api.rest`` and
share one :class:`~repro.api.service.SliceService` facade.
"""

from repro.api.rest import ApiError, Request, Response, RestApi
from repro.api.routes import build_orchestrator_api
from repro.api.schemas import ValidationError, error_body, error_response
from repro.api.service import Conflict, NotFound, ServiceError, SliceService
from repro.api.v1 import build_v1_api

__all__ = [
    "ApiError",
    "Conflict",
    "NotFound",
    "Request",
    "Response",
    "RestApi",
    "ServiceError",
    "SliceService",
    "ValidationError",
    "build_orchestrator_api",
    "build_v1_api",
    "error_body",
    "error_response",
]
