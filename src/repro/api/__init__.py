"""REST-style API layer.

The demo's orchestrator receives monitoring data and slice requests
"through REST APIs".  We reproduce the interface shape — routes, JSON
dict bodies, status codes — as an in-process router, so examples and
tests interact with the orchestrator exactly the way the demo dashboard
did, without sockets.
"""

from repro.api.rest import ApiError, Request, Response, RestApi
from repro.api.routes import build_orchestrator_api

__all__ = ["ApiError", "Request", "Response", "RestApi", "build_orchestrator_api"]
