"""Versioned northbound REST surface (``/v1``).

Every handler here is a thin adapter: parse query/header context, call
:class:`~repro.api.service.SliceService`, render the result.  Validation
and service failures surface as the structured error envelope::

    {"error": {"code": ..., "message": ..., "field": ...}}

Endpoints (full reference in ``docs/API.md``):

- ``POST /v1/slices`` — create a slice.  ``?mode=sync`` (default)
  decides online and returns 201/409; ``?mode=batch`` enqueues into the
  batch-window broker and returns **202** with an operation id.
- ``GET /v1/slices`` — tenant-scoped inventory with ``state`` filtering
  and ``offset``/``limit`` pagination.
- ``GET|PATCH|DELETE /v1/slices/{slice_id}`` — detail / rescale /
  teardown (DELETE also cancels slices still pending activation).
- ``POST /v1/bookings`` — advance reservation against the resource
  calendar (**201** booked / **409** ``calendar_conflict``); ``GET
  /v1/bookings`` lists pending API-created bookings; ``DELETE
  /v1/bookings/{booking_id}`` withdraws one.
- ``GET /v1/operations[/{op_id}]`` — poll async operations.
- ``GET /v1/events?since=N`` — the bounded orchestration event feed;
  ``?after_lsn=N`` replays from the durable journal instead, so
  consumers can resume across orchestrator restarts.
- ``GET /v1/admin/state`` / ``POST /v1/admin/checkpoint`` — operator
  surface over the durable control-plane store.
- ``GET /v1/admin/metrics`` — Prometheus text exposition (control-plane
  ``cp_`` + sim ``sim_`` namespaces); ``GET /v1/admin/traces?slow=&limit=``
  — finished pipeline traces / the slow-span audit log.
- ``POST /v1/whatif`` — feasibility probe.
- ``GET /v1/dashboard`` / ``GET /v1/domains/{domain}`` — observability.

Tenancy: requests carrying ``X-Tenant-Id`` see only their own slices and
operations; collection endpoints filter, detail endpoints 404 on foreign
resources (no existence leak).
"""

from __future__ import annotations

from typing import Optional

from repro.api.rest import Handler, Request, Response, RestApi
from repro.api.schemas import (
    ValidationError,
    error_body,
    error_response,
    parse_pagination,
)
from repro.api.service import ServiceError, SliceService
from repro.obs.export import PROMETHEUS_CONTENT_TYPE

TENANT_HEADER = "x-tenant-id"

#: Query modes accepted by ``POST /v1/slices``.
CREATE_MODES = ("sync", "batch")


def _tenant_of(request: Request) -> Optional[str]:
    """The scoping tenant: the X-Tenant-Id header, else a ``tenant``
    query parameter (convenience for GET collections), else None."""
    return request.header(TENANT_HEADER) or request.query.get("tenant") or None


def _rejection_response(code: str, decision) -> Response:
    """The 409 envelope for a rejected admission-style decision."""
    body = error_body(code, decision.reason)
    body.update(
        {
            "request_id": decision.request_id,
            "slice_id": decision.slice_id,
            "admitted": False,
        }
    )
    return Response(status=409, body=body)


def _guarded(handler: Handler) -> Handler:
    """Translate schema/service exceptions into enveloped responses."""

    def wrapped(request: Request):
        try:
            return handler(request)
        except ValidationError as exc:
            return exc.to_response(400)
        except ServiceError as exc:
            return error_response(exc.status, exc.code, exc.message)

    return wrapped


def build_v1_api(service: SliceService, api: Optional[RestApi] = None) -> RestApi:
    """Register the ``/v1`` routes for ``service`` on ``api``."""
    api = api or RestApi(enveloped_prefixes=("/v1",))

    def post_slice(request: Request) -> Response:
        mode = request.query.get("mode", "sync")
        if mode not in CREATE_MODES:
            return error_response(
                400,
                "invalid_parameter",
                f"unknown mode {mode!r}; valid: {list(CREATE_MODES)}",
                field="mode",
            )
        header_tenant = request.header(TENANT_HEADER)
        if mode == "batch":
            op = service.create_slice_batch(request.body, header_tenant)
            return Response(
                status=202,
                body={
                    "operation_id": op.op_id,
                    "status": op.status,
                    "request_id": op.request_id,
                    "mode": "batch",
                    "location": f"/v1/operations/{op.op_id}",
                },
            )
        decision, slice_request = service.create_slice(request.body, header_tenant)
        if not decision.admitted:
            return _rejection_response("admission_rejected", decision)
        return Response(
            status=201,
            body={
                "slice_id": decision.slice_id,
                "request_id": decision.request_id,
                "tenant_id": slice_request.tenant_id,
                "admitted": True,
                "reason": decision.reason,
                "location": f"/v1/slices/{decision.slice_id}",
            },
        )

    def get_slices(request: Request) -> Response:
        offset, limit = parse_pagination(request.query)
        page, total = service.list_slices(
            tenant_id=_tenant_of(request),
            state=request.query.get("state"),
            offset=offset,
            limit=limit,
        )
        return Response(
            status=200,
            body={
                "slices": [s.to_dict() for s in page],
                "count": len(page),
                "total": total,
                "offset": offset,
                "limit": limit,
            },
        )

    def get_slice(request: Request) -> Response:
        network_slice = service.get_slice(
            request.params["slice_id"], _tenant_of(request)
        )
        return Response(status=200, body=network_slice.to_dict())

    def patch_slice(request: Request) -> Response:
        decision = service.modify_slice(
            request.params["slice_id"], request.body, _tenant_of(request)
        )
        if not decision.admitted:
            body = error_body("modification_rejected", decision.reason)
            body.update({"slice_id": request.params["slice_id"], "admitted": False})
            return Response(status=409, body=body)
        return Response(
            status=200,
            body={
                "slice_id": request.params["slice_id"],
                "admitted": True,
                "reason": decision.reason,
            },
        )

    def delete_slice(request: Request) -> Response:
        result = service.delete_slice(request.params["slice_id"], _tenant_of(request))
        return Response(status=200, body=result)

    def post_booking(request: Request) -> Response:
        decision, slice_request, start_time = service.create_booking(
            request.body, request.header(TENANT_HEADER)
        )
        if not decision.admitted:
            return _rejection_response("calendar_conflict", decision)
        return Response(
            status=201,
            body={
                "booking_id": slice_request.request_id,
                "request_id": slice_request.request_id,
                "tenant_id": slice_request.tenant_id,
                "start_time": start_time,
                "admitted": True,
                "reason": decision.reason,
            },
        )

    def get_bookings(request: Request) -> Response:
        bookings = service.list_bookings(_tenant_of(request))
        return Response(
            status=200, body={"bookings": bookings, "count": len(bookings)}
        )

    def delete_booking(request: Request) -> Response:
        result = service.cancel_booking(
            request.params["booking_id"], _tenant_of(request)
        )
        return Response(status=200, body=result)

    def post_whatif(request: Request) -> Response:
        report = service.what_if(request.body, request.header(TENANT_HEADER))
        return Response(status=200, body=report)

    def get_operations(request: Request) -> Response:
        ops = service.list_operations(_tenant_of(request))
        return Response(
            status=200,
            body={"operations": [op.to_dict() for op in ops], "count": len(ops)},
        )

    def get_operation(request: Request) -> Response:
        op = service.get_operation(request.params["op_id"], _tenant_of(request))
        return Response(status=200, body=op.to_dict())

    def get_events(request: Request) -> Response:
        feed = service.events_since(request.query, _tenant_of(request))
        return Response(status=200, body=feed)

    def get_dashboard(request: Request) -> Response:
        return Response(status=200, body=service.dashboard())

    def get_admin_state(request: Request) -> Response:
        return Response(status=200, body=service.admin_state())

    def get_admin_metrics(request: Request) -> Response:
        return Response(
            status=200,
            text=service.metrics_prometheus(),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )

    def get_admin_traces(request: Request) -> Response:
        return Response(status=200, body=service.traces(request.query))

    def post_admin_checkpoint(request: Request) -> Response:
        return Response(status=200, body=service.checkpoint())

    def get_domain(request: Request) -> Response:
        return Response(status=200, body=service.domain(request.params["domain"]))

    def get_index(request: Request) -> Response:
        return Response(
            status=200,
            body={
                "version": "v1",
                "routes": [r for r in api.routes() if " /v1" in r],
                "deprecated": {
                    "unversioned_routes": "the unversioned routes are a "
                    "deprecated shim over /v1; see docs/API.md"
                },
            },
        )

    api.route("GET", "/v1", _guarded(get_index))
    api.route("POST", "/v1/slices", _guarded(post_slice))
    api.route("GET", "/v1/slices", _guarded(get_slices))
    api.route("GET", "/v1/slices/{slice_id}", _guarded(get_slice))
    api.route("PATCH", "/v1/slices/{slice_id}", _guarded(patch_slice))
    api.route("DELETE", "/v1/slices/{slice_id}", _guarded(delete_slice))
    api.route("POST", "/v1/bookings", _guarded(post_booking))
    api.route("GET", "/v1/bookings", _guarded(get_bookings))
    api.route("DELETE", "/v1/bookings/{booking_id}", _guarded(delete_booking))
    api.route("POST", "/v1/whatif", _guarded(post_whatif))
    api.route("GET", "/v1/operations", _guarded(get_operations))
    api.route("GET", "/v1/operations/{op_id}", _guarded(get_operation))
    api.route("GET", "/v1/events", _guarded(get_events))
    api.route("GET", "/v1/dashboard", _guarded(get_dashboard))
    api.route("GET", "/v1/domains/{domain}", _guarded(get_domain))
    api.route("GET", "/v1/admin/state", _guarded(get_admin_state))
    api.route("POST", "/v1/admin/checkpoint", _guarded(post_admin_checkpoint))
    api.route("GET", "/v1/admin/metrics", _guarded(get_admin_metrics))
    api.route("GET", "/v1/admin/traces", _guarded(get_admin_traces))
    return api


__all__ = ["CREATE_MODES", "TENANT_HEADER", "build_v1_api"]
