"""Declarative request/response schemas for the v1 northbound API.

Every v1 handler validates its input through a :class:`Schema` instead
of hand-rolled ``body.get``/``float(...)`` checks.  Validation failures
raise :class:`ValidationError`, which the API layer renders as the
structured error envelope::

    {"error": {"code": "invalid_type", "message": "...", "field": "price"}}

Error codes are stable API surface (documented in ``docs/API.md``):

- ``invalid_body`` — the request body is not a JSON object,
- ``missing_field`` — one or more required fields are absent,
- ``invalid_type`` — a field failed coercion to its declared type,
- ``invalid_value`` — a field is the right type but out of range /
  not one of the allowed choices,
- ``invalid_parameter`` — a query parameter failed validation,
- ``not_found`` / ``conflict`` / ``admission_rejected`` /
  ``internal_error`` — service-layer failures (see ``api/service.py``).

Unknown body fields are ignored (forward compatibility), mirroring how
versioned NBIs tolerate newer clients.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Type

from repro.api.rest import Response
from repro.core.slices import ServiceType


class ValidationError(Exception):
    """A request failed schema validation.

    Attributes:
        code: Stable machine-readable error code.
        message: Human-readable explanation.
        field: Offending field name (None for body-level errors).
    """

    def __init__(self, code: str, message: str, field: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field

    def envelope(self) -> dict:
        """The structured error body."""
        return error_body(self.code, self.message, self.field)

    def to_response(self, status: int = 400) -> Response:
        """Render as an API response."""
        return Response(status=status, body=self.envelope())


def error_body(code: str, message: str, field: Optional[str] = None) -> dict:
    """Build the v1 structured error envelope."""
    error: Dict[str, Any] = {"code": code, "message": message}
    if field is not None:
        error["field"] = field
    return {"error": error}


def error_response(
    status: int, code: str, message: str, field: Optional[str] = None
) -> Response:
    """Build an error :class:`Response` carrying the envelope."""
    return Response(status=status, body=error_body(code, message, field))


@dataclass(frozen=True)
class Field:
    """One declared field of a request schema.

    Attributes:
        name: JSON key.
        kind: ``"float" | "int" | "str" | "enum"``.
        required: Whether absence is an error.
        default: Value used when the field is absent (optional fields).
        minimum: Inclusive lower bound (numeric kinds).
        exclusive_minimum: Exclusive lower bound (numeric kinds).
        maximum: Inclusive upper bound (numeric kinds).
        enum_type: Enum class coerced into for ``kind="enum"``.
        doc: One-line description (surfaced in docs/tests).
    """

    name: str
    kind: str = "str"
    required: bool = True
    default: Any = None
    minimum: Optional[float] = None
    exclusive_minimum: Optional[float] = None
    maximum: Optional[float] = None
    enum_type: Optional[Type[enum.Enum]] = None
    doc: str = ""

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this field's type.

        Raises:
            ValidationError: On type or range failure.
        """
        if self.kind in ("float", "int") and isinstance(value, bool):
            raise ValidationError(
                "invalid_type",
                f"{self.name} must be a number, got a boolean",
                field=self.name,
            )
        if self.kind == "float":
            try:
                coerced: Any = float(value)
            except (TypeError, ValueError):
                raise ValidationError(
                    "invalid_type",
                    f"{self.name} must be a number, got {value!r}",
                    field=self.name,
                ) from None
            if not math.isfinite(coerced):
                raise ValidationError(
                    "invalid_value",
                    f"{self.name} must be finite, got {coerced}",
                    field=self.name,
                )
        elif self.kind == "int":
            try:
                as_float = float(value)
            except (TypeError, ValueError):
                raise ValidationError(
                    "invalid_type",
                    f"{self.name} must be an integer, got {value!r}",
                    field=self.name,
                ) from None
            if not math.isfinite(as_float):
                raise ValidationError(
                    "invalid_value",
                    f"{self.name} must be finite, got {as_float}",
                    field=self.name,
                )
            if as_float != int(as_float):
                raise ValidationError(
                    "invalid_type",
                    f"{self.name} must be an integer, got {value!r}",
                    field=self.name,
                )
            coerced = int(as_float)
        elif self.kind == "str":
            if not isinstance(value, str):
                raise ValidationError(
                    "invalid_type",
                    f"{self.name} must be a string, got {type(value).__name__}",
                    field=self.name,
                )
            coerced = value
        elif self.kind == "enum":
            assert self.enum_type is not None
            try:
                coerced = self.enum_type(value)
            except ValueError:
                valid = [member.value for member in self.enum_type]
                raise ValidationError(
                    "invalid_value",
                    f"unknown {self.name} {value!r}; valid: {valid}",
                    field=self.name,
                ) from None
        else:  # pragma: no cover - schema author error
            raise ValidationError(
                "invalid_type", f"unknown field kind {self.kind!r}", field=self.name
            )
        self._check_range(coerced)
        return coerced

    def _check_range(self, value: Any) -> None:
        if self.kind not in ("float", "int"):
            return
        if self.exclusive_minimum is not None and value <= self.exclusive_minimum:
            raise ValidationError(
                "invalid_value",
                f"{self.name} must be > {self.exclusive_minimum}, got {value}",
                field=self.name,
            )
        if self.minimum is not None and value < self.minimum:
            raise ValidationError(
                "invalid_value",
                f"{self.name} must be >= {self.minimum}, got {value}",
                field=self.name,
            )
        if self.maximum is not None and value > self.maximum:
            raise ValidationError(
                "invalid_value",
                f"{self.name} must be <= {self.maximum}, got {value}",
                field=self.name,
            )


class Schema:
    """A named, ordered set of :class:`Field` declarations."""

    def __init__(self, name: str, fields: Tuple[Field, ...]) -> None:
        self.name = name
        self.fields = fields
        seen = set()
        for spec in fields:
            if spec.name in seen:
                raise ValueError(f"{name}: duplicate field {spec.name}")
            seen.add(spec.name)

    def parse(self, body: Optional[dict]) -> Dict[str, Any]:
        """Validate and coerce ``body``.

        Returns a dict holding every declared field (defaults applied).

        Raises:
            ValidationError: On the first failure; all missing required
                fields are reported together.
        """
        if body is None:
            body = {}
        if not isinstance(body, dict):
            raise ValidationError(
                "invalid_body", f"request body must be a JSON object, got {type(body).__name__}"
            )
        missing = [f.name for f in self.fields if f.required and f.name not in body]
        if missing:
            raise ValidationError(
                "missing_field", f"missing fields: {missing}", field=missing[0]
            )
        parsed: Dict[str, Any] = {}
        for spec in self.fields:
            if spec.name not in body:
                parsed[spec.name] = spec.default
                continue
            parsed[spec.name] = spec.coerce(body[spec.name])
        return parsed


#: ``POST /v1/slices`` — the dashboard's input fields plus tenancy knobs.
SLICE_CREATE = Schema(
    "SliceCreate",
    (
        Field("service_type", kind="enum", enum_type=ServiceType,
              doc="Service archetype (embb|urllc|mmtc|automotive|ehealth)."),
        Field("throughput_mbps", kind="float", exclusive_minimum=0.0,
              doc="Expected downlink throughput."),
        Field("max_latency_ms", kind="float", exclusive_minimum=0.0,
              doc="End-to-end latency bound."),
        Field("duration_s", kind="float", exclusive_minimum=0.0,
              doc="Requested slice lifetime."),
        Field("price", kind="float", minimum=0.0,
              doc="One-off revenue if admitted."),
        Field("penalty_rate", kind="float", minimum=0.0,
              doc="Money forfeited per SLA-violation epoch."),
        Field("availability", kind="float", required=False, default=0.95,
              exclusive_minimum=0.0, maximum=1.0,
              doc="Fraction of epochs that must meet the throughput target."),
        Field("tenant_id", kind="str", required=False, default=None,
              doc="Requesting tenant (X-Tenant-Id header takes precedence)."),
        Field("n_users", kind="int", required=False, default=10,
              exclusive_minimum=0, doc="Expected UE population."),
    ),
)

#: ``POST /v1/bookings`` — advance reservation: exactly a slice create
#: plus the future start instant checked against the resource calendar
#: (composed from ``SLICE_CREATE`` so the two surfaces cannot drift).
BOOKING_CREATE = Schema(
    "BookingCreate",
    SLICE_CREATE.fields + (
        Field("start_time", kind="float", minimum=0.0,
              doc="Simulation instant the slice should activate (future)."),
    ),
)

#: ``PATCH /v1/slices/{slice_id}`` — throughput rescale.
SLICE_MODIFY = Schema(
    "SliceModify",
    (
        Field("throughput_mbps", kind="float", exclusive_minimum=0.0,
              doc="New throughput SLA."),
    ),
)

#: ``POST /v1/whatif`` — non-committal feasibility probe.
WHAT_IF = Schema(
    "WhatIf",
    (
        Field("service_type", kind="enum", enum_type=ServiceType),
        Field("throughput_mbps", kind="float", exclusive_minimum=0.0),
        Field("max_latency_ms", kind="float", exclusive_minimum=0.0),
        Field("duration_s", kind="float", exclusive_minimum=0.0),
        Field("price", kind="float", required=False, default=0.0, minimum=0.0),
        Field("penalty_rate", kind="float", required=False, default=0.0, minimum=0.0),
        Field("tenant_id", kind="str", required=False, default=None),
    ),
)


def parse_int_param(
    query: Dict[str, str],
    name: str,
    default: int,
    minimum: int = 0,
    maximum: Optional[int] = None,
) -> int:
    """Parse an integer query parameter with bounds.

    Raises:
        ValidationError: code ``invalid_parameter`` on failure.
    """
    raw = query.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValidationError(
            "invalid_parameter", f"{name} must be an integer, got {raw!r}", field=name
        ) from None
    if value < minimum:
        raise ValidationError(
            "invalid_parameter", f"{name} must be >= {minimum}, got {value}", field=name
        )
    if maximum is not None and value > maximum:
        value = maximum
    return value


#: Accepted spellings for boolean query parameters.
_BOOL_TRUE = ("1", "true", "yes", "on")
_BOOL_FALSE = ("0", "false", "no", "off")


def parse_bool_param(
    query: Dict[str, str], name: str, default: bool = False
) -> bool:
    """Parse a boolean query parameter (``?slow=true``).

    Raises:
        ValidationError: code ``invalid_parameter`` on an unrecognized
            spelling.
    """
    raw = query.get(name)
    if raw is None or raw == "":
        return default
    lowered = raw.strip().lower()
    if lowered in _BOOL_TRUE:
        return True
    if lowered in _BOOL_FALSE:
        return False
    raise ValidationError(
        "invalid_parameter",
        f"{name} must be a boolean "
        f"({'/'.join(_BOOL_TRUE)} or {'/'.join(_BOOL_FALSE)}), got {raw!r}",
        field=name,
    )


def parse_pagination(
    query: Dict[str, str], default_limit: int = 50, max_limit: int = 500
) -> Tuple[int, int]:
    """Parse ``offset``/``limit`` query parameters.

    ``limit`` is clamped to ``max_limit``; bad values raise
    :class:`ValidationError` (code ``invalid_parameter``).
    """
    offset = parse_int_param(query, "offset", default=0, minimum=0)
    limit = parse_int_param(
        query, "limit", default=default_limit, minimum=1, maximum=max_limit
    )
    return offset, limit


__all__ = [
    "BOOKING_CREATE",
    "Field",
    "SLICE_CREATE",
    "SLICE_MODIFY",
    "Schema",
    "ValidationError",
    "WHAT_IF",
    "error_body",
    "error_response",
    "parse_bool_param",
    "parse_int_param",
    "parse_pagination",
]
