"""In-process REST router.

Routes are ``(method, path-template)`` pairs; templates may contain
``{param}`` segments which are extracted into ``Request.params``.
Concrete paths may carry a query string (``/v1/slices?limit=10``) which
is parsed into ``Request.query``, and callers may attach headers
(``X-Tenant-Id``) which arrive case-insensitively in ``Request.headers``.
Handlers receive a :class:`Request` and return a :class:`Response`
(or a plain dict, auto-wrapped as 200).  All bodies are JSON-serializable
dicts — the same contract a real REST deployment would enforce; numpy
scalars/arrays that leak out of domain telemetry are coerced by the
serializer rather than crashing it.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit


class ApiError(RuntimeError):
    """Raised for router misconfiguration (not for 4xx/5xx responses)."""


def _json_default(obj: Any) -> Any:
    """Coerce numpy scalars/arrays (and sets) into JSON-native values."""
    import numpy as np

    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"Object of type {type(obj).__name__} is not JSON serializable")


@dataclass
class Request:
    """An API request.

    Attributes:
        method: HTTP verb, upper-case.
        path: Concrete path without the query string,
            e.g. ``"/slices/slice-000001"``.
        body: JSON body (dict) or None.
        params: Path parameters extracted from the template.
        query: Query-string parameters (last value wins on repeats).
        headers: Request headers, keys lower-cased.
    """

    method: str
    path: str
    body: Optional[dict] = None
    params: Dict[str, str] = field(default_factory=dict)
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)


@dataclass
class Response:
    """An API response with status code and JSON body.

    Non-JSON endpoints (the Prometheus exposition at ``GET
    /v1/admin/metrics``) set ``text`` and ``content_type`` instead of
    ``body``; JSON consumers are unaffected — ``json()`` still
    serializes ``body``.
    """

    status: int
    body: dict = field(default_factory=dict)
    text: Optional[str] = None
    content_type: str = "application/json"

    @property
    def ok(self) -> bool:
        """Whether the status is 2xx."""
        return 200 <= self.status < 300

    def json(self) -> str:
        """Serialized body — proves everything we return is JSON-safe.

        Numpy scalars and arrays (which leak out of orchestrator
        snapshots and domain utilization dicts) are coerced to their
        Python equivalents instead of raising ``TypeError``.
        """
        return json.dumps(self.body, sort_keys=True, default=_json_default)


Handler = Callable[[Request], "Response | dict"]

_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


class RestApi:
    """Minimal in-process REST router.

    Args:
        enveloped_prefixes: Path prefixes for which router-generated
            errors (no route, wrong method, handler crash) are rendered
            as the structured envelope
            ``{"error": {"code": ..., "message": ...}}`` instead of the
            legacy flat ``{"error": "..."}`` string.  The v1 surface
            registers itself here so *every* 4xx/5xx under ``/v1`` is
            enveloped, including errors raised before a handler runs.
    """

    def __init__(self, enveloped_prefixes: Tuple[str, ...] = ()) -> None:
        self._routes: List[Tuple[str, re.Pattern, str, Handler]] = []
        self._enveloped_prefixes = tuple(enveloped_prefixes)

    def _error_body(self, path: str, code: str, message: str) -> dict:
        if any(path.startswith(prefix) for prefix in self._enveloped_prefixes):
            return {"error": {"code": code, "message": message}}
        return {"error": message}

    def route(self, method: str, template: str, handler: Handler) -> None:
        """Register a handler for ``method template``.

        Raises:
            ApiError: On duplicate registration.
        """
        method = method.upper()
        pattern = self._compile(template)
        for m, p, t, _ in self._routes:
            if m == method and t == template:
                raise ApiError(f"duplicate route {method} {template}")
        self._routes.append((method, pattern, template, handler))

    @staticmethod
    def _compile(template: str) -> re.Pattern:
        if not template.startswith("/"):
            raise ApiError(f"route template must start with '/', got {template!r}")
        regex = _PARAM_RE.sub(lambda m: f"(?P<{m.group(1)}>[^/]+)", template)
        return re.compile(f"^{regex}$")

    def dispatch(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        """Route a request; returns 404/405 responses instead of raising."""
        method = method.upper()
        split = urlsplit(path)
        bare_path = split.path
        query = dict(parse_qsl(split.query, keep_blank_values=True))
        normalized_headers = {
            str(k).lower(): str(v) for k, v in (headers or {}).items()
        }
        path_matched = False
        for m, pattern, _, handler in self._routes:
            match = pattern.match(bare_path)
            if match is None:
                continue
            path_matched = True
            if m != method:
                continue
            request = Request(
                method=method,
                path=bare_path,
                body=body,
                params=match.groupdict(),
                query=query,
                headers=normalized_headers,
            )
            try:
                result = handler(request)
            except Exception as exc:  # handler bug → 500, never crash the caller
                return Response(
                    status=500,
                    body=self._error_body(bare_path, "internal_error", str(exc)),
                )
            if isinstance(result, Response):
                return result
            return Response(status=200, body=result)
        if path_matched:
            return Response(
                status=405,
                body=self._error_body(
                    bare_path, "method_not_allowed", f"method {method} not allowed"
                ),
            )
        return Response(
            status=404,
            body=self._error_body(bare_path, "not_found", f"no route for {bare_path}"),
        )

    # Convenience verbs -------------------------------------------------
    def get(
        self, path: str, headers: Optional[Dict[str, str]] = None
    ) -> Response:
        """Dispatch a GET."""
        return self.dispatch("GET", path, headers=headers)

    def post(
        self,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        """Dispatch a POST."""
        return self.dispatch("POST", path, body, headers=headers)

    def patch(
        self,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        """Dispatch a PATCH."""
        return self.dispatch("PATCH", path, body, headers=headers)

    def delete(
        self, path: str, headers: Optional[Dict[str, str]] = None
    ) -> Response:
        """Dispatch a DELETE."""
        return self.dispatch("DELETE", path, headers=headers)

    def routes(self) -> List[str]:
        """Human-readable route list."""
        return [f"{m} {t}" for m, _, t, _ in self._routes]


__all__ = ["ApiError", "Handler", "Request", "Response", "RestApi"]
