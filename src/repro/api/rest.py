"""In-process REST router.

Routes are ``(method, path-template)`` pairs; templates may contain
``{param}`` segments which are extracted into ``Request.params``.
Handlers receive a :class:`Request` and return a :class:`Response`
(or a plain dict, auto-wrapped as 200).  All bodies are JSON-serializable
dicts — the same contract a real REST deployment would enforce.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


class ApiError(RuntimeError):
    """Raised for router misconfiguration (not for 4xx/5xx responses)."""


@dataclass
class Request:
    """An API request.

    Attributes:
        method: HTTP verb, upper-case.
        path: Concrete path, e.g. ``"/slices/slice-000001"``.
        body: JSON body (dict) or None.
        params: Path parameters extracted from the template.
    """

    method: str
    path: str
    body: Optional[dict] = None
    params: Dict[str, str] = field(default_factory=dict)


@dataclass
class Response:
    """An API response with status code and JSON body."""

    status: int
    body: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the status is 2xx."""
        return 200 <= self.status < 300

    def json(self) -> str:
        """Serialized body — proves everything we return is JSON-safe."""
        return json.dumps(self.body, sort_keys=True)


Handler = Callable[[Request], "Response | dict"]

_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


class RestApi:
    """Minimal in-process REST router."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, re.Pattern, str, Handler]] = []

    def route(self, method: str, template: str, handler: Handler) -> None:
        """Register a handler for ``method template``.

        Raises:
            ApiError: On duplicate registration.
        """
        method = method.upper()
        pattern = self._compile(template)
        for m, p, t, _ in self._routes:
            if m == method and t == template:
                raise ApiError(f"duplicate route {method} {template}")
        self._routes.append((method, pattern, template, handler))

    @staticmethod
    def _compile(template: str) -> re.Pattern:
        if not template.startswith("/"):
            raise ApiError(f"route template must start with '/', got {template!r}")
        regex = _PARAM_RE.sub(lambda m: f"(?P<{m.group(1)}>[^/]+)", template)
        return re.compile(f"^{regex}$")

    def dispatch(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Response:
        """Route a request; returns 404/405 responses instead of raising."""
        method = method.upper()
        path_matched = False
        for m, pattern, _, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            path_matched = True
            if m != method:
                continue
            request = Request(method=method, path=path, body=body, params=match.groupdict())
            try:
                result = handler(request)
            except Exception as exc:  # handler bug → 500, never crash the caller
                return Response(status=500, body={"error": str(exc)})
            if isinstance(result, Response):
                return result
            return Response(status=200, body=result)
        if path_matched:
            return Response(status=405, body={"error": f"method {method} not allowed"})
        return Response(status=404, body={"error": f"no route for {path}"})

    # Convenience verbs -------------------------------------------------
    def get(self, path: str) -> Response:
        """Dispatch a GET."""
        return self.dispatch("GET", path)

    def post(self, path: str, body: Optional[dict] = None) -> Response:
        """Dispatch a POST."""
        return self.dispatch("POST", path, body)

    def patch(self, path: str, body: Optional[dict] = None) -> Response:
        """Dispatch a PATCH."""
        return self.dispatch("PATCH", path, body)

    def delete(self, path: str) -> Response:
        """Dispatch a DELETE."""
        return self.dispatch("DELETE", path)

    def routes(self) -> List[str]:
        """Human-readable route list."""
        return [f"{m} {t}" for m, _, t, _ in self._routes]


__all__ = ["ApiError", "Handler", "Request", "Response", "RestApi"]
