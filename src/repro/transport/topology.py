"""Transport topology: a directed multigraph of :class:`Link` objects.

Nodes are plain strings (eNB aggregation points, switches, DC gateways).
Parallel links between the same node pair are allowed — the demo testbed
has parallel mmWave and µwave links precisely so the path engine can
choose per-slice between a fast-but-contended and a slower-but-free
route.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.transport.links import Link, LinkKind


class TopologyError(RuntimeError):
    """Raised on malformed topology operations."""


class Topology:
    """Directed multigraph with per-link capacity/delay annotations."""

    def __init__(self) -> None:
        self._nodes: Set[str] = set()
        self._links: Dict[str, Link] = {}
        self._out: Dict[str, List[str]] = {}  # node -> link_ids
        # Dirty-node tracking: every link mutation (reserve/resize/
        # release/fail/restore, including direct calls that bypass the
        # TransportController) marks the link's source node in every
        # subscriber set, so consumers caching per-node aggregates can
        # revalidate only what changed.
        self._dirty_subscribers: List[Set[str]] = []

    def subscribe_dirty(self) -> Set[str]:
        """Register and return a dirty-node set fed by link mutations.

        The caller owns the returned set: drain it (``set.clear`` or
        ``pop``) after refreshing whatever it caches per node.  Sets are
        deduplicating, so an idle consumer holds at most one entry per
        node.
        """
        dirty: Set[str] = set()
        self._dirty_subscribers.append(dirty)
        return dirty

    def _mark_dirty(self, node: str) -> None:
        for subscriber in self._dirty_subscribers:
            subscriber.add(node)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        """Add a node (idempotent)."""
        self._nodes.add(node)
        self._out.setdefault(node, [])

    def add_link(self, link: Link) -> None:
        """Add a directed link; endpoints are auto-added.

        Raises:
            TopologyError: On duplicate link id.
        """
        if link.link_id in self._links:
            raise TopologyError(f"duplicate link id {link.link_id}")
        self.add_node(link.src)
        self.add_node(link.dst)
        self._links[link.link_id] = link
        self._out[link.src].append(link.link_id)
        link.on_change = self._mark_dirty
        self._mark_dirty(link.src)

    def add_duplex(
        self,
        name: str,
        a: str,
        b: str,
        kind: LinkKind = LinkKind.FIBER,
        capacity_mbps: Optional[float] = None,
        delay_ms: Optional[float] = None,
    ) -> tuple:
        """Convenience: add a symmetric pair of links ``name-fwd``/``name-rev``."""
        fwd = Link(f"{name}-fwd", a, b, kind, capacity_mbps, delay_ms)
        rev = Link(f"{name}-rev", b, a, kind, capacity_mbps, delay_ms)
        self.add_link(fwd)
        self.add_link(rev)
        return fwd, rev

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Set[str]:
        """All node names."""
        return set(self._nodes)

    def links(self) -> List[Link]:
        """All links, insertion-ordered."""
        return list(self._links.values())

    def link(self, link_id: str) -> Link:
        """Lookup a link by id.

        Raises:
            TopologyError: If the id is unknown.
        """
        try:
            return self._links[link_id]
        except KeyError:
            raise TopologyError(f"unknown link {link_id}") from None

    def has_node(self, node: str) -> bool:
        """Whether the node exists."""
        return node in self._nodes

    def out_links(self, node: str) -> List[Link]:
        """Links departing ``node``.

        Raises:
            TopologyError: If the node is unknown.
        """
        if node not in self._nodes:
            raise TopologyError(f"unknown node {node}")
        return [self._links[lid] for lid in self._out[node]]

    def usable_out_links(
        self,
        node: str,
        min_residual_mbps: float = 0.0,
        predicate: Optional[Callable[[Link], bool]] = None,
    ) -> List[Link]:
        """Departing links that are up, have residual ≥ threshold and pass ``predicate``."""
        out = []
        for link in self.out_links(node):
            if not link.up:
                continue
            if link.residual_mbps < min_residual_mbps - 1e-9:
                continue
            if predicate is not None and not predicate(link):
                continue
            out.append(link)
        return out

    def neighbors(self, node: str) -> Set[str]:
        """Nodes reachable from ``node`` over one up link."""
        return {link.dst for link in self.out_links(node) if link.up}

    def path_delay_ms(self, link_ids: Iterable[str]) -> float:
        """Total one-way delay of a link sequence."""
        return sum(self.link(lid).delay_ms for lid in link_ids)

    def path_residual_mbps(self, link_ids: Iterable[str]) -> float:
        """Bottleneck residual capacity along a link sequence."""
        ids = list(link_ids)
        if not ids:
            return float("inf")
        return min(self.link(lid).residual_mbps for lid in ids)

    def validate_path(self, link_ids: List[str], src: str, dst: str) -> None:
        """Check a link sequence forms a connected src→dst walk.

        Raises:
            TopologyError: If the sequence is disconnected or misrouted.
        """
        at = src
        for lid in link_ids:
            link = self.link(lid)
            if link.src != at:
                raise TopologyError(
                    f"path broken at {lid}: expected source {at}, link starts at {link.src}"
                )
            at = link.dst
        if at != dst:
            raise TopologyError(f"path ends at {at}, expected {dst}")

    def utilization(self) -> dict:
        """Telemetry snapshot for the transport controller."""
        return {
            "nodes": sorted(self._nodes),
            "links": [link.utilization() for link in self._links.values()],
        }


__all__ = ["Topology", "TopologyError"]
