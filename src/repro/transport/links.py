"""Transport link model.

Three link technologies appear in the demo testbed (Fig. 2): mmWave
(high capacity, short reach), µwave (lower capacity) and wired
fibre/copper between the switch and the data centers.  Each link tracks
per-slice bandwidth reservations and enforces its capacity; the
``overbookable`` nominal/effective distinction mirrors the PRB grid.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional


class LinkError(RuntimeError):
    """Raised on link capacity/accounting violations."""


class LinkKind(enum.Enum):
    """Transport technology of a link (affects defaults, reporting)."""

    MMWAVE = "mmwave"
    MICROWAVE = "microwave"
    FIBER = "fiber"
    COPPER = "copper"


class LinkState(enum.Enum):
    """Operational state (failure injection flips this)."""

    UP = "up"
    DOWN = "down"


#: Typical (capacity Mb/s, one-way delay ms) per technology, used by the
#: testbed builder when explicit numbers are not given.
DEFAULT_LINK_SPECS: Dict[LinkKind, tuple] = {
    LinkKind.MMWAVE: (1_000.0, 1.0),
    LinkKind.MICROWAVE: (400.0, 2.0),
    LinkKind.FIBER: (10_000.0, 0.5),
    LinkKind.COPPER: (1_000.0, 0.8),
}


@dataclass
class Reservation:
    """Per-slice bandwidth reservation on one link (Mb/s)."""

    slice_id: str
    nominal_mbps: float
    effective_mbps: float

    def __post_init__(self) -> None:
        if self.nominal_mbps <= 0:
            raise LinkError(f"nominal bandwidth must be positive, got {self.nominal_mbps}")
        if self.effective_mbps <= 0:
            raise LinkError(f"effective bandwidth must be positive, got {self.effective_mbps}")
        if self.effective_mbps > self.nominal_mbps + 1e-9:
            raise LinkError(
                f"effective ({self.effective_mbps}) cannot exceed nominal "
                f"({self.nominal_mbps})"
            )


class Link:
    """A directed transport link with capacity, delay and reservations."""

    def __init__(
        self,
        link_id: str,
        src: str,
        dst: str,
        kind: LinkKind = LinkKind.FIBER,
        capacity_mbps: float = None,  # type: ignore[assignment]
        delay_ms: float = None,  # type: ignore[assignment]
    ) -> None:
        default_cap, default_delay = DEFAULT_LINK_SPECS[kind]
        self.link_id = link_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.capacity_mbps = float(capacity_mbps if capacity_mbps is not None else default_cap)
        self.delay_ms = float(delay_ms if delay_ms is not None else default_delay)
        if self.capacity_mbps <= 0:
            raise LinkError(f"capacity must be positive, got {self.capacity_mbps}")
        if self.delay_ms < 0:
            raise LinkError(f"delay cannot be negative, got {self.delay_ms}")
        self.state = LinkState.UP
        self._reservations: Dict[str, Reservation] = {}
        # Running totals so the accounting properties are O(1) instead
        # of O(#reservations); reset to exact zero whenever the link
        # empties so float drift cannot accumulate across slice churn.
        self._effective_sum = 0.0
        self._nominal_sum = 0.0
        #: Invoked (with the link's source node) after every mutation
        #: that changes residual capacity or operational state.  The
        #: owning Topology hooks this to feed its dirty-node tracking.
        self.on_change: Optional[Callable[[str], None]] = None

    def _changed(self) -> None:
        if not self._reservations:
            self._effective_sum = 0.0
            self._nominal_sum = 0.0
        if self.on_change is not None:
            self.on_change(self.src)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def effective_reserved_mbps(self) -> float:
        """Bandwidth committed after overbooking shrinkage."""
        return self._effective_sum

    @property
    def nominal_reserved_mbps(self) -> float:
        """Bandwidth the SLAs nominally imply."""
        return self._nominal_sum

    @property
    def residual_mbps(self) -> float:
        """Physically free capacity (0 when the link is down)."""
        if self.state is LinkState.DOWN:
            return 0.0
        return self.capacity_mbps - self.effective_reserved_mbps

    @property
    def up(self) -> bool:
        """Whether the link is operational."""
        return self.state is LinkState.UP

    def reserve(self, slice_id: str, nominal_mbps: float, effective_mbps: float) -> None:
        """Commit bandwidth for a slice.

        Raises:
            LinkError: On duplicates, a down link, or insufficient residual.
        """
        if slice_id in self._reservations:
            raise LinkError(f"slice {slice_id} already reserved on {self.link_id}")
        if self.state is LinkState.DOWN:
            raise LinkError(f"link {self.link_id} is down")
        reservation = Reservation(slice_id, nominal_mbps, effective_mbps)
        if effective_mbps > self.residual_mbps + 1e-9:
            raise LinkError(
                f"link {self.link_id}: {effective_mbps:.1f} Mb/s requested but "
                f"only {self.residual_mbps:.1f} free"
            )
        self._reservations[slice_id] = reservation
        self._effective_sum += effective_mbps
        self._nominal_sum += nominal_mbps
        self._changed()

    def resize(self, slice_id: str, effective_mbps: float) -> None:
        """Adjust the slice's effective reservation (overbooking knob)."""
        current = self._reservations.get(slice_id)
        if current is None:
            raise LinkError(f"slice {slice_id} holds no reservation on {self.link_id}")
        others = self.effective_reserved_mbps - current.effective_mbps
        if effective_mbps <= 0:
            raise LinkError(f"effective bandwidth must be positive, got {effective_mbps}")
        if effective_mbps > current.nominal_mbps + 1e-9:
            raise LinkError("effective cannot exceed nominal")
        if others + effective_mbps > self.capacity_mbps + 1e-9:
            raise LinkError(f"resize does not fit on {self.link_id}")
        self._reservations[slice_id] = Reservation(
            slice_id, current.nominal_mbps, effective_mbps
        )
        self._effective_sum += effective_mbps - current.effective_mbps
        self._changed()

    def renominate(self, slice_id: str, nominal_mbps: float, effective_mbps: float) -> None:
        """Replace the slice's reservation with a new nominal bandwidth
        (tenant-requested scaling).  Atomic: the old reservation stands
        on failure.

        Raises:
            LinkError: If the slice holds no reservation or the new
                effective commitment does not fit.
        """
        current = self._reservations.get(slice_id)
        if current is None:
            raise LinkError(f"slice {slice_id} holds no reservation on {self.link_id}")
        others = self.effective_reserved_mbps - current.effective_mbps
        replacement = Reservation(slice_id, nominal_mbps, effective_mbps)
        if others + effective_mbps > self.capacity_mbps + 1e-9:
            raise LinkError(f"renominate does not fit on {self.link_id}")
        self._reservations[slice_id] = replacement
        self._effective_sum += effective_mbps - current.effective_mbps
        self._nominal_sum += nominal_mbps - current.nominal_mbps
        self._changed()

    def release(self, slice_id: str) -> None:
        """Drop the slice's reservation."""
        if slice_id not in self._reservations:
            raise LinkError(f"slice {slice_id} holds no reservation on {self.link_id}")
        current = self._reservations.pop(slice_id)
        self._effective_sum -= current.effective_mbps
        self._nominal_sum -= current.nominal_mbps
        self._changed()

    def has(self, slice_id: str) -> bool:
        """Whether the slice reserves bandwidth here."""
        return slice_id in self._reservations

    def slices(self) -> list[str]:
        """Slice ids with reservations on this link."""
        return list(self._reservations)

    def fail(self) -> None:
        """Failure injection: mark the link down (reservations survive)."""
        self.state = LinkState.DOWN
        self._changed()

    def restore(self) -> None:
        """Bring a failed link back up."""
        self.state = LinkState.UP
        self._changed()

    def check_invariants(self) -> None:
        """Cross-check the running totals against a recompute.

        Raises:
            LinkError: If the delta-maintained sums drifted from ground
                truth by more than float tolerance.
        """
        effective = sum(r.effective_mbps for r in self._reservations.values())
        nominal = sum(r.nominal_mbps for r in self._reservations.values())
        if abs(effective - self._effective_sum) > 1e-6 or abs(nominal - self._nominal_sum) > 1e-6:
            raise LinkError(
                f"link {self.link_id}: running totals "
                f"(eff={self._effective_sum}, nom={self._nominal_sum}) drifted "
                f"from recomputed (eff={effective}, nom={nominal})"
            )

    def utilization(self) -> dict:
        """Telemetry snapshot for the transport controller."""
        return {
            "link_id": self.link_id,
            "kind": self.kind.value,
            "state": self.state.value,
            "capacity_mbps": self.capacity_mbps,
            "delay_ms": self.delay_ms,
            "effective_reserved_mbps": self.effective_reserved_mbps,
            "nominal_reserved_mbps": self.nominal_reserved_mbps,
            "residual_mbps": self.residual_mbps,
            "slices": self.slices(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.link_id}: {self.src}->{self.dst}, {self.kind.value}, "
            f"{self.effective_reserved_mbps:.0f}/{self.capacity_mbps:.0f} Mb/s)"
        )


__all__ = ["DEFAULT_LINK_SPECS", "Link", "LinkError", "LinkKind", "LinkState", "Reservation"]
