"""Transport domain controller.

Second of the three hierarchical controllers of Fig. 1.  Owns the
topology and any OpenFlow switches, reserves per-slice constrained paths
(delay + capacity), programs matching flow entries, resizes reservations
when the overbooking engine reconfigures, and reports utilization.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.transport.links import LinkError
from repro.transport.paths import (
    ComputedPath,
    PathComputationError,
    PathRequest,
    constrained_shortest_path,
    k_shortest_paths,
)
from repro.transport.switch import FlowEntry, FlowMatch, OpenFlowSwitch
from repro.transport.topology import Topology


class TransportError(RuntimeError):
    """Raised on transport-domain allocation failures."""


@dataclass(frozen=True)
class TransportAllocation:
    """Result of reserving a slice's transport path.

    Attributes:
        path: The reserved path (link ids + metrics).
        nominal_mbps: SLA bandwidth.
        effective_mbps: Bandwidth actually committed (post-overbooking).
        request: The original constrained-path request (kept so the path
            can be re-computed after a link failure).
    """

    path: ComputedPath
    nominal_mbps: float
    effective_mbps: float
    request: Optional[PathRequest] = None

    @property
    def delay_ms(self) -> float:
        """One-way delay of the reserved path."""
        return self.path.delay_ms


class TransportController:
    """Controller for the transport domain."""

    def __init__(
        self,
        topology: Topology,
        switches: Optional[List[OpenFlowSwitch]] = None,
    ) -> None:
        self.topology = topology
        self._switches: Dict[str, OpenFlowSwitch] = {
            sw.switch_id: sw for sw in (switches or [])
        }
        self._paths: Dict[str, TransportAllocation] = {}  # slice_id -> allocation
        self._plmns: Dict[str, str] = {}  # slice_id -> plmn_id (for re-programming)
        # Last feasible path found per (src, dst): the feasibility probe
        # revalidates it against the live links (up, residual, delay)
        # before answering, and only falls back to a full CSPF search
        # when the remembered path no longer satisfies the request — so
        # the admission hot path usually costs O(path length), not
        # O(E log V).  Never consulted without revalidation, so stale
        # entries cannot produce a wrong answer.
        self._known_paths: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        # Exact-result CSPF cache: full search results keyed by the
        # complete request, invalidated wholesale the moment *any* link
        # mutates (the topology's dirty-node feed covers direct
        # ``link.fail()``/``reserve()`` calls too).  Between mutations
        # the topology is immutable, so a hit returns byte-for-byte what
        # the search would — unlike ``_known_paths`` this needs no
        # revalidation, and unlike a TTL it can never serve a stale
        # answer.
        self._exact_dirty = topology.subscribe_dirty()
        self._exact_paths: Dict[
            Tuple[str, str, float, float], ComputedPath
        ] = {}
        self._port_counter: Dict[str, int] = {}
        self.repairs_performed = 0
        #: Serialization lock for this controller: the methods here are
        #: not thread-safe, so every concurrent caller (the transport
        #: driver under the batch install planner, or any direct user)
        #: must hold it across a call.  ``build_default_registry`` wires
        #: it as the TransportDriver's serial lock.
        self.lock = threading.RLock()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def switch(self, switch_id: str) -> OpenFlowSwitch:
        """Lookup a managed switch."""
        try:
            return self._switches[switch_id]
        except KeyError:
            raise TransportError(f"unknown switch {switch_id}") from None

    def allocation_of(self, slice_id: str) -> Optional[TransportAllocation]:
        """The slice's current path allocation (None if absent)."""
        return self._paths.get(slice_id)

    def feasible(self, request: PathRequest) -> bool:
        """Whether *some* path currently satisfies the request.

        Fast path: the last path found for this (src, dst) pair is
        revalidated against live link state; a full CSPF search only
        runs when it no longer satisfies the request.
        """
        cached = self._known_paths.get((request.src, request.dst))
        if cached is not None and self._path_satisfies(cached, request):
            return True
        try:
            path = self._search(request)
        except PathComputationError:
            return False
        self._known_paths[(request.src, request.dst)] = path.link_ids
        return True

    def _search(self, request: PathRequest) -> ComputedPath:
        """CSPF with the exact-result cache (see ``_exact_paths``).

        Raises:
            PathComputationError: If no feasible path exists.
        """
        if self._exact_dirty:
            self._exact_paths.clear()
            self._exact_dirty.clear()
        key = (
            request.src,
            request.dst,
            request.min_bandwidth_mbps,
            request.max_delay_ms,
        )
        cached = self._exact_paths.get(key)
        if cached is not None:
            return cached
        path = constrained_shortest_path(self.topology, request)
        self._exact_paths[key] = path
        return path

    def _path_satisfies(self, link_ids: Tuple[str, ...], request: PathRequest) -> bool:
        """Whether a concrete link sequence meets the request right now."""
        delay = 0.0
        topo = self.topology
        for link_id in link_ids:
            try:
                link = topo.link(link_id)
            except Exception:
                return False
            if not link.up or link.residual_mbps < request.min_bandwidth_mbps - 1e-9:
                return False
            delay += link.delay_ms
        return delay <= request.max_delay_ms + 1e-9

    def candidate_paths(self, request: PathRequest, k: int = 3) -> List[ComputedPath]:
        """Up to ``k`` feasible paths, delay-ranked (for what-if analysis)."""
        return k_shortest_paths(self.topology, request, k=k)

    # ------------------------------------------------------------------
    # Slice lifecycle
    # ------------------------------------------------------------------
    def reserve_path(
        self,
        slice_id: str,
        plmn_id: str,
        request: PathRequest,
        effective_fraction: float = 1.0,
    ) -> TransportAllocation:
        """Reserve a constrained path and program flows for a slice.

        The path is found with CSPF against *effective* (shrunk)
        bandwidth, reserved atomically on every link, then flow entries
        matching the slice's PLMN-id are installed on traversed switches.

        Raises:
            TransportError: If no feasible path exists or the slice
                already holds one.
        """
        if slice_id in self._paths:
            raise TransportError(f"slice {slice_id} already holds a path")
        if not 0.0 < effective_fraction <= 1.0:
            raise TransportError(
                f"effective fraction must be in (0, 1], got {effective_fraction}"
            )
        effective = request.min_bandwidth_mbps * effective_fraction
        probe = PathRequest(
            src=request.src,
            dst=request.dst,
            min_bandwidth_mbps=effective,
            max_delay_ms=request.max_delay_ms,
        )
        try:
            path = self._search(probe)
        except PathComputationError as exc:
            raise TransportError(str(exc)) from exc
        # Reserve on every link, rolling back on failure so a half-made
        # reservation never leaks.
        reserved: List[str] = []
        try:
            for link_id in path.link_ids:
                self.topology.link(link_id).reserve(
                    slice_id, request.min_bandwidth_mbps, effective
                )
                reserved.append(link_id)
        except LinkError as exc:
            for link_id in reserved:
                self.topology.link(link_id).release(slice_id)
            raise TransportError(f"reservation race on {link_id}: {exc}") from exc
        allocation = TransportAllocation(
            path=path,
            nominal_mbps=request.min_bandwidth_mbps,
            effective_mbps=effective,
            request=request,
        )
        self._paths[slice_id] = allocation
        self._plmns[slice_id] = plmn_id
        self._known_paths[(request.src, request.dst)] = path.link_ids
        self._program_flows(slice_id, plmn_id, path)
        return allocation

    def _program_flows(self, slice_id: str, plmn_id: str, path: ComputedPath) -> None:
        """Install PLMN-match flows on switches the path traverses."""
        for link_id in path.link_ids:
            link = self.topology.link(link_id)
            if link.src in self._switches:
                switch = self._switches[link.src]
                port = self._next_port(switch.switch_id)
                switch.install(
                    FlowEntry(
                        match=FlowMatch(plmn_id=plmn_id),
                        out_port=port,
                        priority=200,
                        slice_id=slice_id,
                    )
                )

    def _next_port(self, switch_id: str) -> int:
        switch = self._switches[switch_id]
        port = self._port_counter.get(switch_id, 0)
        self._port_counter[switch_id] = (port + 1) % switch.n_ports
        return port

    def resize_path(self, slice_id: str, effective_mbps: float) -> None:
        """Adjust the slice's effective bandwidth on every path link."""
        allocation = self._paths.get(slice_id)
        if allocation is None:
            raise TransportError(f"slice {slice_id} holds no path")
        for link_id in allocation.path.link_ids:
            self.topology.link(link_id).resize(slice_id, effective_mbps)
        self._paths[slice_id] = TransportAllocation(
            path=allocation.path,
            nominal_mbps=allocation.nominal_mbps,
            effective_mbps=effective_mbps,
            request=allocation.request,
        )

    def modify_bandwidth(
        self,
        slice_id: str,
        new_nominal_mbps: float,
        effective_fraction: float = 1.0,
    ) -> TransportAllocation:
        """Re-dimension the slice's reservation along its current path.

        The path itself is kept (delay is unchanged by scaling); only
        the bandwidth reservation is re-nominated on every link.

        Raises:
            TransportError: If the slice holds no path or the grown
                commitment does not fit some link.
        """
        allocation = self._paths.get(slice_id)
        if allocation is None:
            raise TransportError(f"slice {slice_id} holds no path")
        if new_nominal_mbps <= 0:
            raise TransportError(
                f"bandwidth must be positive, got {new_nominal_mbps}"
            )
        if not 0.0 < effective_fraction <= 1.0:
            raise TransportError(
                f"effective fraction must be in (0, 1], got {effective_fraction}"
            )
        effective = new_nominal_mbps * effective_fraction
        done: List[str] = []
        try:
            for link_id in allocation.path.link_ids:
                self.topology.link(link_id).renominate(
                    slice_id, new_nominal_mbps, effective
                )
                done.append(link_id)
        except LinkError as exc:
            # Roll back to the old reservation on already-modified links.
            for link_id in done:
                self.topology.link(link_id).renominate(
                    slice_id, allocation.nominal_mbps, allocation.effective_mbps
                )
            raise TransportError(str(exc)) from exc
        old_request = allocation.request
        new_request = (
            PathRequest(
                src=old_request.src,
                dst=old_request.dst,
                min_bandwidth_mbps=new_nominal_mbps,
                max_delay_ms=old_request.max_delay_ms,
            )
            if old_request is not None
            else None
        )
        new_allocation = TransportAllocation(
            path=allocation.path,
            nominal_mbps=new_nominal_mbps,
            effective_mbps=effective,
            request=new_request,
        )
        self._paths[slice_id] = new_allocation
        return new_allocation

    def release_path(self, slice_id: str) -> None:
        """Free the slice's links and remove its flows."""
        allocation = self._paths.pop(slice_id, None)
        if allocation is None:
            raise TransportError(f"slice {slice_id} holds no path")
        self._plmns.pop(slice_id, None)
        for link_id in allocation.path.link_ids:
            link = self.topology.link(link_id)
            if link.has(slice_id):
                link.release(slice_id)
        for switch in self._switches.values():
            switch.remove_slice_flows(slice_id)

    # ------------------------------------------------------------------
    # Self-healing
    # ------------------------------------------------------------------
    def path_healthy(self, slice_id: str) -> bool:
        """Whether every link of the slice's path is currently up.

        Raises:
            TransportError: If the slice holds no path.
        """
        allocation = self._paths.get(slice_id)
        if allocation is None:
            raise TransportError(f"slice {slice_id} holds no path")
        return all(self.topology.link(lid).up for lid in allocation.path.link_ids)

    def repair_path(self, slice_id: str) -> TransportAllocation:
        """Re-route a slice whose path traverses a failed link.

        Releases the old reservations, recomputes CSPF under the
        original request's bounds at the current effective bandwidth,
        reserves the new path and reprograms flows.  No-op when the
        path is healthy.

        Raises:
            TransportError: If no feasible replacement path exists (the
                old reservations are restored on the surviving links so
                the slice recovers automatically when the link returns).
        """
        allocation = self._paths.get(slice_id)
        if allocation is None:
            raise TransportError(f"slice {slice_id} holds no path")
        if self.path_healthy(slice_id):
            # Reconcile: a link that failed and came back may be missing
            # this slice's reservation (dropped during a failed repair).
            for link_id in allocation.path.link_ids:
                link = self.topology.link(link_id)
                if not link.has(slice_id):
                    link.reserve(
                        slice_id, allocation.nominal_mbps, allocation.effective_mbps
                    )
            return allocation
        if allocation.request is None:
            raise TransportError(
                f"slice {slice_id} has no stored path request; cannot repair"
            )
        # Release the broken path's reservations.
        for link_id in allocation.path.link_ids:
            link = self.topology.link(link_id)
            if link.has(slice_id):
                link.release(slice_id)
        probe = PathRequest(
            src=allocation.request.src,
            dst=allocation.request.dst,
            min_bandwidth_mbps=allocation.effective_mbps,
            max_delay_ms=allocation.request.max_delay_ms,
        )
        try:
            new_path = constrained_shortest_path(self.topology, probe)
        except PathComputationError as exc:
            # Restore reservations on the surviving links and re-raise.
            for link_id in allocation.path.link_ids:
                link = self.topology.link(link_id)
                if link.up:
                    link.reserve(
                        slice_id, allocation.nominal_mbps, allocation.effective_mbps
                    )
            raise TransportError(f"repair failed: {exc}") from exc
        for link_id in new_path.link_ids:
            self.topology.link(link_id).reserve(
                slice_id, allocation.nominal_mbps, allocation.effective_mbps
            )
        new_allocation = TransportAllocation(
            path=new_path,
            nominal_mbps=allocation.nominal_mbps,
            effective_mbps=allocation.effective_mbps,
            request=allocation.request,
        )
        self._paths[slice_id] = new_allocation
        plmn_id = self._plmns.get(slice_id)
        if plmn_id is not None:
            for switch in self._switches.values():
                switch.remove_slice_flows(slice_id)
            self._program_flows(slice_id, plmn_id, new_path)
        self.repairs_performed += 1
        return new_allocation

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def utilization(self) -> dict:
        """Domain telemetry for the monitoring collector."""
        links = self.topology.links()
        total_cap = sum(l.capacity_mbps for l in links)
        return {
            "domain": "transport",
            "topology": self.topology.utilization(),
            "switches": [sw.stats() for sw in self._switches.values()],
            "total_capacity_mbps": total_cap,
            "effective_reserved_mbps": sum(l.effective_reserved_mbps for l in links),
            "nominal_reserved_mbps": sum(l.nominal_reserved_mbps for l in links),
            "active_paths": len(self._paths),
        }


__all__ = ["TransportAllocation", "TransportController", "TransportError"]
