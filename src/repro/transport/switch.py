"""OpenFlow-style programmable switch.

Models the demo's NEC ProgrammableFlow PF5240: a flow table whose
entries match on slice markers (we match on PLMN-id, standing in for
the VLAN/tunnel tags the real deployment used) and forward to an output
port, with per-entry packet/byte counters and priority-ordered lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


class SwitchError(RuntimeError):
    """Raised on flow-table violations."""


@dataclass(frozen=True)
class FlowMatch:
    """Match fields of a flow entry (None = wildcard)."""

    plmn_id: Optional[str] = None
    in_port: Optional[int] = None

    def matches(self, plmn_id: str, in_port: int) -> bool:
        """Whether a packet with the given headers hits this match."""
        if self.plmn_id is not None and self.plmn_id != plmn_id:
            return False
        if self.in_port is not None and self.in_port != in_port:
            return False
        return True

    @property
    def specificity(self) -> int:
        """Number of non-wildcard fields (tie-break within a priority)."""
        return sum(1 for f in (self.plmn_id, self.in_port) if f is not None)


@dataclass
class FlowEntry:
    """One row of the flow table."""

    match: FlowMatch
    out_port: int
    priority: int = 100
    slice_id: Optional[str] = None
    packets: int = field(default=0, compare=False)
    bytes: int = field(default=0, compare=False)


class OpenFlowSwitch:
    """Priority-ordered flow table with per-entry counters."""

    def __init__(self, switch_id: str, n_ports: int = 48) -> None:
        if n_ports <= 0:
            raise SwitchError(f"port count must be positive, got {n_ports}")
        self.switch_id = switch_id
        self.n_ports = int(n_ports)
        self._table: List[FlowEntry] = []

    # ------------------------------------------------------------------
    # Table management (the controller's job)
    # ------------------------------------------------------------------
    def install(self, entry: FlowEntry) -> None:
        """Add a flow entry.

        Raises:
            SwitchError: On invalid ports or exact-duplicate match+priority.
        """
        if not 0 <= entry.out_port < self.n_ports:
            raise SwitchError(f"out_port {entry.out_port} outside 0..{self.n_ports - 1}")
        if entry.match.in_port is not None and not 0 <= entry.match.in_port < self.n_ports:
            raise SwitchError(f"in_port {entry.match.in_port} outside port range")
        for existing in self._table:
            if existing.match == entry.match and existing.priority == entry.priority:
                raise SwitchError(
                    f"duplicate flow (match={entry.match}, priority={entry.priority})"
                )
        self._table.append(entry)
        self._table.sort(key=lambda e: (-e.priority, -e.match.specificity))

    def remove_slice_flows(self, slice_id: str) -> int:
        """Delete all flows installed for ``slice_id``; returns count removed."""
        before = len(self._table)
        self._table = [e for e in self._table if e.slice_id != slice_id]
        return before - len(self._table)

    def flows(self) -> List[FlowEntry]:
        """Current table, priority-ordered."""
        return list(self._table)

    def flows_of(self, slice_id: str) -> List[FlowEntry]:
        """Flows belonging to one slice."""
        return [e for e in self._table if e.slice_id == slice_id]

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def lookup(self, plmn_id: str, in_port: int) -> Optional[FlowEntry]:
        """Highest-priority entry matching the packet (None = table miss)."""
        if not 0 <= in_port < self.n_ports:
            raise SwitchError(f"in_port {in_port} outside port range")
        for entry in self._table:
            if entry.match.matches(plmn_id, in_port):
                return entry
        return None

    def forward(self, plmn_id: str, in_port: int, n_bytes: int = 1_500) -> Optional[int]:
        """Forward one packet; returns the output port or None on miss.

        Updates the matched entry's counters.
        """
        entry = self.lookup(plmn_id, in_port)
        if entry is None:
            return None
        entry.packets += 1
        entry.bytes += int(n_bytes)
        return entry.out_port

    def stats(self) -> dict:
        """Per-flow counters (telemetry)."""
        return {
            "switch_id": self.switch_id,
            "n_flows": len(self._table),
            "flows": [
                {
                    "slice_id": e.slice_id,
                    "plmn_id": e.match.plmn_id,
                    "in_port": e.match.in_port,
                    "out_port": e.out_port,
                    "priority": e.priority,
                    "packets": e.packets,
                    "bytes": e.bytes,
                }
                for e in self._table
            ],
        }


__all__ = ["FlowEntry", "FlowMatch", "OpenFlowSwitch", "SwitchError"]
