"""Constrained path computation.

The orchestrator's transport question is: *a path from this eNB to that
DC gateway with ≥ B Mb/s residual and total delay ≤ D ms*.  We solve it
with CSPF — prune links with insufficient residual, then run Dijkstra on
delay — and fall back to Yen's k-shortest-paths when load balancing or
alternatives are wanted.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.transport.topology import Topology


class PathComputationError(RuntimeError):
    """Raised when no feasible path exists for a request."""


@dataclass(frozen=True)
class PathRequest:
    """A constrained-path query.

    Attributes:
        src: Ingress node (eNB aggregation point).
        dst: Egress node (DC gateway).
        min_bandwidth_mbps: Residual each link on the path must offer.
        max_delay_ms: Upper bound on total one-way path delay.
    """

    src: str
    dst: str
    min_bandwidth_mbps: float
    max_delay_ms: float

    def __post_init__(self) -> None:
        if self.min_bandwidth_mbps < 0:
            raise ValueError("bandwidth bound cannot be negative")
        if self.max_delay_ms <= 0:
            raise ValueError("delay bound must be positive")


@dataclass(frozen=True)
class ComputedPath:
    """A feasible path: ordered link ids plus its aggregate metrics."""

    link_ids: Tuple[str, ...]
    delay_ms: float
    bottleneck_mbps: float

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return len(self.link_ids)


def _dijkstra(
    topo: Topology,
    src: str,
    dst: str,
    min_bw: float,
    excluded_links: Optional[set] = None,
    excluded_nodes: Optional[set] = None,
) -> Optional[List[str]]:
    """Delay-shortest path over links with residual ≥ ``min_bw``.

    Returns the link-id sequence or None if ``dst`` is unreachable.
    """
    excluded_links = excluded_links or set()
    excluded_nodes = excluded_nodes or set()
    if not topo.has_node(src) or not topo.has_node(dst):
        return None
    dist: Dict[str, float] = {src: 0.0}
    prev: Dict[str, Tuple[str, str]] = {}  # node -> (prev_node, link_id)
    heap: List[Tuple[float, str]] = [(0.0, src)]
    visited: set = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == dst:
            break
        for link in topo.usable_out_links(node, min_residual_mbps=min_bw):
            if link.link_id in excluded_links or link.dst in excluded_nodes:
                continue
            nd = d + link.delay_ms
            if nd < dist.get(link.dst, float("inf")):
                dist[link.dst] = nd
                prev[link.dst] = (node, link.link_id)
                heapq.heappush(heap, (nd, link.dst))
    if dst not in dist or dst not in prev and src != dst:
        if src == dst:
            return []
        return None
    path: List[str] = []
    at = dst
    while at != src:
        node, link_id = prev[at]
        path.append(link_id)
        at = node
    path.reverse()
    return path


def constrained_shortest_path(topo: Topology, request: PathRequest) -> ComputedPath:
    """CSPF: minimum-delay path meeting both bandwidth and delay bounds.

    Raises:
        PathComputationError: If no path satisfies the constraints —
            the message distinguishes "disconnected" from "too slow".
    """
    if request.src == request.dst:
        return ComputedPath(link_ids=(), delay_ms=0.0, bottleneck_mbps=float("inf"))
    links = _dijkstra(topo, request.src, request.dst, request.min_bandwidth_mbps)
    if links is None:
        raise PathComputationError(
            f"no path {request.src}->{request.dst} with "
            f"≥{request.min_bandwidth_mbps:.1f} Mb/s residual"
        )
    delay = topo.path_delay_ms(links)
    if delay > request.max_delay_ms + 1e-9:
        raise PathComputationError(
            f"best path {request.src}->{request.dst} has delay {delay:.2f} ms "
            f"> bound {request.max_delay_ms:.2f} ms"
        )
    return ComputedPath(
        link_ids=tuple(links),
        delay_ms=delay,
        bottleneck_mbps=topo.path_residual_mbps(links),
    )


def k_shortest_paths(
    topo: Topology,
    request: PathRequest,
    k: int = 3,
) -> List[ComputedPath]:
    """Yen's algorithm: up to ``k`` loop-free delay-ranked feasible paths.

    Every returned path satisfies both constraints of ``request``.
    Returns fewer than ``k`` paths (possibly zero) when the topology
    does not admit more.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    try:
        first = constrained_shortest_path(topo, request)
    except PathComputationError:
        return []
    if not first.link_ids:
        return [first]
    accepted: List[ComputedPath] = [first]
    candidates: List[Tuple[float, int, Tuple[str, ...]]] = []
    seen: set = {first.link_ids}
    counter = 0

    def node_sequence(link_ids: Tuple[str, ...]) -> List[str]:
        nodes = [request.src]
        for lid in link_ids:
            nodes.append(topo.link(lid).dst)
        return nodes

    while len(accepted) < k:
        prev_path = accepted[-1].link_ids
        prev_nodes = node_sequence(prev_path)
        for i in range(len(prev_path)):
            spur_node = prev_nodes[i]
            root = prev_path[:i]
            excluded_links = set()
            for path in accepted:
                if path.link_ids[:i] == root and len(path.link_ids) > i:
                    excluded_links.add(path.link_ids[i])
            excluded_nodes = set(prev_nodes[:i])  # loop-free
            spur = _dijkstra(
                topo,
                spur_node,
                request.dst,
                request.min_bandwidth_mbps,
                excluded_links=excluded_links,
                excluded_nodes=excluded_nodes,
            )
            if spur is None:
                continue
            total = tuple(root) + tuple(spur)
            if total in seen:
                continue
            seen.add(total)
            delay = topo.path_delay_ms(total)
            if delay > request.max_delay_ms + 1e-9:
                continue
            counter += 1
            heapq.heappush(candidates, (delay, counter, total))
        if not candidates:
            break
        delay, _, links = heapq.heappop(candidates)
        accepted.append(
            ComputedPath(
                link_ids=links,
                delay_ms=delay,
                bottleneck_mbps=topo.path_residual_mbps(links),
            )
        )
    return accepted


__all__ = [
    "ComputedPath",
    "PathComputationError",
    "PathRequest",
    "constrained_shortest_path",
    "k_shortest_paths",
]
