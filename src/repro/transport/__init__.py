"""Transport network substrate.

Replaces the demo's mmWave/µwave wireless transport and NEC PF5240
OpenFlow switch: a directed multigraph of capacitated, delay-annotated
links, constrained shortest-path computation (CSPF + Yen's k-shortest
paths), an OpenFlow-style switch abstraction with flow tables, and the
transport domain controller that reserves per-slice paths meeting the
SLA's delay and capacity bounds.
"""

from repro.transport.links import Link, LinkKind, LinkState
from repro.transport.topology import Topology, TopologyError
from repro.transport.paths import (
    PathComputationError,
    PathRequest,
    ComputedPath,
    constrained_shortest_path,
    k_shortest_paths,
)
from repro.transport.switch import FlowEntry, FlowMatch, OpenFlowSwitch
from repro.transport.controller import TransportAllocation, TransportController

__all__ = [
    "ComputedPath",
    "FlowEntry",
    "FlowMatch",
    "Link",
    "LinkKind",
    "LinkState",
    "OpenFlowSwitch",
    "PathComputationError",
    "PathRequest",
    "Topology",
    "TopologyError",
    "TransportAllocation",
    "TransportController",
    "constrained_shortest_path",
    "k_shortest_paths",
]
