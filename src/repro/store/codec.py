"""Journal payload codec + the deterministic replay fold.

Two halves:

1. **Codec** — (de)serialization of the domain objects the journal
   carries: :class:`~repro.core.slices.SliceRequest` round-trips
   through plain dicts, and :func:`json_default` coerces the numpy
   scalars that leak out of domain telemetry into JSON natives.

2. **Replay fold** — :class:`ReplayState`, the pure in-memory image of
   the durable control plane.  ``ReplayState.restore(snapshot, tail)``
   folds a snapshot (if any) plus the journal tail into the state a
   recovering orchestrator must rebuild; the fold is a deterministic
   function of its inputs (the replay-determinism property test pins
   this down by comparing :meth:`ReplayState.digest` across repeated
   folds of the same journal).

The fold is deliberately decoupled from the live orchestrator: it
reasons only over record payloads, so it can run in benchmarks
(``bench_d12_recovery``), in tests, and in the recovery path without a
testbed.

Record vocabulary (see ``docs/ARCHITECTURE.md`` for the full matrix):

===================== ==========================================================
``admission.enqueued`` request queued for the next batched install
``broker.enqueued``    request queued in an (undecided) broker window
``broker.decided``     the broker window flushed a decision for the request
``install.started``    install staged southbound (PLMN held, specs planned)
``slice.installed``    install committed end-to-end and acknowledged
``slice.activated``    slice went ACTIVE (expiry clock started)
``slice.expired``      lifetime ended, resources released
``slice.cancelled``    torn down before/while active
``slice.rejected``     admission or install failure booked
``slice.modified``     tenant rescale (new SLA throughput)
``slice.reconfigured`` overbooking loop resized the effective fraction
``booking.committed``  advance reservation promised on the calendar
``booking.cancelled``  advance reservation withdrawn
``quota.set``          per-tenant quota changed
``event.emitted``      northbound feed event (durable ``after_lsn`` cursor)
``driver.*``           per-driver reservation audit (prepared/committed/
                       rolled_back/released/compensated) — not folded
``checkpoint.written`` snapshot landed (audit)
``recovery.completed`` a restart reconciled (audit)
===================== ==========================================================
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, TYPE_CHECKING

from repro.core.slices import SLA, ServiceType, SliceRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.journal import JournalRecord


def json_default(obj: Any) -> Any:
    """Coerce numpy scalars/arrays (and sets) into JSON-native values."""
    import numpy as np

    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"Object of type {type(obj).__name__} is not JSON serializable")


# ----------------------------------------------------------------------
# Request codec
# ----------------------------------------------------------------------
def request_to_dict(request: SliceRequest) -> Dict[str, Any]:
    """JSON-safe image of a slice request (full fidelity round-trip)."""
    return {
        "request_id": request.request_id,
        "tenant_id": request.tenant_id,
        "service_type": request.service_type.value,
        "throughput_mbps": float(request.sla.throughput_mbps),
        "max_latency_ms": float(request.sla.max_latency_ms),
        "duration_s": float(request.sla.duration_s),
        "availability": float(request.sla.availability),
        "price": float(request.price),
        "penalty_rate": float(request.penalty_rate),
        "arrival_time": float(request.arrival_time),
        "n_users": int(request.n_users),
        "priority": int(request.priority),
    }


def request_from_dict(payload: Dict[str, Any]) -> SliceRequest:
    """Rebuild the :class:`SliceRequest` a journal record captured."""
    return SliceRequest(
        tenant_id=payload["tenant_id"],
        service_type=ServiceType(payload["service_type"]),
        sla=SLA(
            throughput_mbps=payload["throughput_mbps"],
            max_latency_ms=payload["max_latency_ms"],
            duration_s=payload["duration_s"],
            availability=payload.get("availability", 0.95),
        ),
        price=payload["price"],
        penalty_rate=payload["penalty_rate"],
        arrival_time=payload.get("arrival_time", 0.0),
        n_users=payload.get("n_users", 10),
        priority=payload.get("priority", 0),
        request_id=payload["request_id"],
    )


# ----------------------------------------------------------------------
# Replay fold
# ----------------------------------------------------------------------
@dataclass
class ReplayState:
    """Pure image of the durable control plane.

    Attributes:
        time: Simulation instant of the newest folded record (the
            "crash time" recovery rebases against).
        live: slice_id → image of an acknowledged install.  Image keys:
            ``request`` (request dict), ``plmn``, ``fraction``,
            ``status`` (``"installed"`` | ``"active"``),
            ``installed_at``, ``activated_at``, ``window``
            (``[start, end]`` calendar interval or None) and
            ``reservations`` (domain → reservation_id).
        in_flight: slice_id → image of an install that *started*
            (PLMN held, southbound work dispatched) but was never
            acknowledged — the reconciliation matrix decides its fate
            against driver ground truth.
        queued: request_id → request dict of journaled-but-uninstalled
            admissions (re-enqueued on recovery).
        broker_pending: request_id → request dict of requests sitting
            in a broker decision window that never flushed — the
            requests that used to die silently with the process.
            Recovery re-offers them to the admission path (their
            ``on_decision`` callbacks are gone with the process, but
            the admissions themselves survive).
        advance: request_id → ``{"request": ..., "start_time": ...}``
            of pending advance bookings.
        quotas: tenant_id → quota payload.
        last_event_seq: Highest northbound event seq folded (feed
            numbering resumes after it).
        last_request_ordinal: Highest auto-assigned request ordinal
            seen in *any* folded record — including slices that
            terminated before the crash, whose images are gone from
            ``live``.  Recovery advances the request-id counter past
            it so a recovered id is never re-issued to a new request.
        records_applied: Fold-size telemetry (excluded from the digest).
    """

    time: float = 0.0
    live: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    in_flight: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    queued: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    broker_pending: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    advance: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    quotas: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    last_event_seq: int = 0
    last_request_ordinal: int = 0
    records_applied: int = 0

    _ORDINAL = re.compile(r"-(\d+)$")

    def _note_ordinal(self, identifier: Optional[str]) -> None:
        if not identifier:
            return
        match = self._ORDINAL.search(str(identifier))
        if match:
            self.last_request_ordinal = max(
                self.last_request_ordinal, int(match.group(1))
            )

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    @classmethod
    def restore(
        cls,
        snapshot: Optional[Dict[str, Any]],
        records: Iterable["JournalRecord"],
    ) -> "ReplayState":
        """Fold ``snapshot`` (may be None) plus the journal ``records``
        into the recovered state image."""
        state = cls.from_dict(snapshot) if snapshot else cls()
        for record in records:
            state.apply(record)
        return state

    def apply(self, record: "JournalRecord") -> None:
        """Fold one journal record into the image (pure, deterministic)."""
        kind, data = record.record_type, record.data
        self.time = max(self.time, record.time)
        self.records_applied += 1
        # Every record naming a request or slice advances the ordinal
        # high-water mark — terminated slices included, or a restart
        # would re-issue their ids.
        request = data.get("request")
        if isinstance(request, dict):
            self._note_ordinal(request.get("request_id"))
        self._note_ordinal(data.get("request_id"))
        self._note_ordinal(data.get("slice_id"))
        if kind == "admission.enqueued":
            request = data["request"]
            self.queued[request["request_id"]] = request
            # A broker window resolves into the admission queue via the
            # same journal; the window's claim on the request ends here.
            self.broker_pending.pop(request["request_id"], None)
        elif kind == "broker.enqueued":
            request = data["request"]
            self.broker_pending[request["request_id"]] = request
        elif kind == "broker.decided":
            self.broker_pending.pop(data.get("request_id"), None)
        elif kind == "install.started":
            request = data["request"]
            self.queued.pop(request["request_id"], None)
            self.broker_pending.pop(request["request_id"], None)
            self.advance.pop(request["request_id"], None)
            self.in_flight[data["slice_id"]] = {
                "request": request,
                "plmn": data.get("plmn"),
                "fraction": data.get("fraction", 1.0),
                "started_at": record.time,
            }
        elif kind == "slice.installed":
            request = data["request"]
            self.queued.pop(request["request_id"], None)
            self.advance.pop(request["request_id"], None)
            self.in_flight.pop(data["slice_id"], None)
            self.live[data["slice_id"]] = {
                "request": request,
                "plmn": data.get("plmn"),
                "fraction": data.get("fraction", 1.0),
                "status": "installed",
                "installed_at": record.time,
                "activated_at": None,
                "window": data.get("window"),
                "reservations": dict(data.get("reservations") or {}),
            }
        elif kind == "slice.activated":
            image = self.live.get(data["slice_id"])
            if image is not None:
                image["status"] = "active"
                image["activated_at"] = record.time
        elif kind in ("slice.expired", "slice.cancelled"):
            self.live.pop(data["slice_id"], None)
            self.in_flight.pop(data["slice_id"], None)
        elif kind == "slice.rejected":
            self.queued.pop(data.get("request_id"), None)
            self.broker_pending.pop(data.get("request_id"), None)
            self.advance.pop(data.get("request_id"), None)
            self.in_flight.pop(data.get("slice_id"), None)
        elif kind == "slice.modified":
            image = self.live.get(data["slice_id"])
            if image is not None:
                image["request"]["throughput_mbps"] = data["throughput_mbps"]
        elif kind == "slice.reconfigured":
            image = self.live.get(data["slice_id"])
            if image is not None:
                image["fraction"] = data["fraction"]
        elif kind == "booking.committed":
            request = data["request"]
            self.advance[request["request_id"]] = {
                "request": request,
                "start_time": data["start_time"],
            }
        elif kind == "booking.cancelled":
            self.advance.pop(data.get("request_id"), None)
        elif kind == "quota.set":
            self.quotas[data["tenant_id"]] = {
                "max_active_slices": data.get("max_active_slices"),
                "max_aggregate_mbps": data.get("max_aggregate_mbps"),
            }
        elif kind == "event.emitted":
            event = data.get("event") or {}
            self.last_event_seq = max(self.last_event_seq, int(event.get("seq", 0)))
        # driver.*, checkpoint.written, recovery.completed: audit trail
        # only — driver *ground truth* is reconciled live, not replayed.

    # ------------------------------------------------------------------
    # Snapshot round-trip + digest
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Snapshot-ready (and digest-canonical) form."""
        return {
            "time": self.time,
            "live": self.live,
            "in_flight": self.in_flight,
            "queued": self.queued,
            "broker_pending": self.broker_pending,
            "advance": self.advance,
            "quotas": self.quotas,
            "last_event_seq": self.last_event_seq,
            "last_request_ordinal": self.last_request_ordinal,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ReplayState":
        return cls(
            time=float(payload.get("time", 0.0)),
            live={k: dict(v) for k, v in (payload.get("live") or {}).items()},
            in_flight={k: dict(v) for k, v in (payload.get("in_flight") or {}).items()},
            queued={k: dict(v) for k, v in (payload.get("queued") or {}).items()},
            broker_pending={
                k: dict(v)
                for k, v in (payload.get("broker_pending") or {}).items()
            },
            advance={k: dict(v) for k, v in (payload.get("advance") or {}).items()},
            quotas={k: dict(v) for k, v in (payload.get("quotas") or {}).items()},
            last_event_seq=int(payload.get("last_event_seq", 0)),
            last_request_ordinal=int(payload.get("last_request_ordinal", 0)),
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSON image.  Two folds of the
        same snapshot+journal must produce the same digest — the
        replay-determinism invariant."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), default=json_default
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


__all__ = ["ReplayState", "json_default", "request_from_dict", "request_to_dict"]
