"""Append-only write-ahead journal (JSONL, fsync-batched, monotonic LSNs).

The journal is the durability primitive of the control-plane store:
every externally meaningful state transition of the orchestrator —
admissions, slice lifecycle, calendar bookings, quota changes,
per-driver reservation commits/rollbacks — is appended here *before*
the transition is acknowledged northbound.  On restart,
:class:`~repro.store.recovery.RecoveryManager` folds the journal (on
top of the latest snapshot) back into control-plane state.

Format: one JSON object per line::

    {"lsn": 17, "t": 120.0, "type": "slice.installed", "data": {...}}

Durability discipline:

- every append is **flushed** to the OS immediately (a process crash
  after :meth:`append` returns loses nothing), and
- the file is **fsynced** every ``fsync_every`` records (bounding what
  an OS/power failure can lose without paying an fsync per record —
  the classic group-commit trade; ``fsync_every=1`` gives full
  synchronous durability, ``0`` disables fsync entirely).

LSNs (log sequence numbers) are monotonically increasing, never
reused, and survive restarts: opening an existing journal resumes
numbering after its last intact record.  They double as the durable
consumer cursor of ``GET /v1/events?after_lsn=``.

Crash tolerance on the *read* path: a torn final line (the process
died mid-write) is ignored — it was never acknowledged, so dropping it
is correct.  A corrupt record in the *middle* of the journal is real
damage and raises :class:`JournalCorrupt`.

A closed journal silently drops appends instead of raising: the chaos
harness simulates a crash by closing the store while driver threads
are still completing, exactly like a dead process whose writes never
reach the disk.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

from repro.store.codec import json_default


class JournalError(RuntimeError):
    """Raised on journal misuse."""


class JournalCorrupt(JournalError):
    """A record *before* the tail failed to parse — real damage, not a
    torn final write."""


@dataclass(frozen=True)
class JournalRecord:
    """One durable state transition.

    Attributes:
        lsn: Monotonic log sequence number (the durable cursor).
        time: Simulation time the transition happened.
        record_type: Dotted record name, e.g. ``"slice.installed"``.
        data: JSON-safe payload (see :mod:`repro.store.codec`).
    """

    lsn: int
    time: float
    record_type: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_line(self) -> str:
        return json.dumps(
            {"lsn": self.lsn, "t": self.time, "type": self.record_type, "data": self.data},
            sort_keys=True,
            separators=(",", ":"),
            default=json_default,
        )

    @classmethod
    def from_line(cls, line: str) -> "JournalRecord":
        raw = json.loads(line)
        return cls(
            lsn=int(raw["lsn"]),
            time=float(raw["t"]),
            record_type=str(raw["type"]),
            data=dict(raw.get("data") or {}),
        )


@dataclass
class _ScanResult:
    """Outcome of parsing a journal file tolerantly."""

    records: List[JournalRecord]
    #: Byte offset past the last intact, newline-terminated line — the
    #: truncation point that repairs a torn tail.
    clean_end: int = 0
    #: The final line is an intact record but lacks its newline (the
    #: process died between write and terminator); repair appends one.
    tail_unterminated: bool = False


def _scan(path: str, after_lsn: int = 0) -> _ScanResult:
    """Parse every intact record with ``lsn > after_lsn``.

    Tolerates a torn tail (partial/corrupt last line — it was never
    acknowledged, so dropping it is correct); raises
    :class:`JournalCorrupt` on damage anywhere else.
    """
    if not os.path.exists(path):
        return _ScanResult(records=[])
    with open(path, "rb") as handle:
        blob = handle.read()
    result = _ScanResult(records=[])
    lines = blob.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()  # file ends with a newline — no dangling fragment
        ends_terminated = True
    else:
        ends_terminated = False
    offset = 0
    for index, raw in enumerate(lines):
        is_last = index == len(lines) - 1
        terminated = (not is_last) or ends_terminated
        line_end = offset + len(raw) + (1 if terminated else 0)
        stripped = raw.strip()
        if not stripped:
            if terminated:
                result.clean_end = line_end
            offset = line_end
            continue
        try:
            record = JournalRecord.from_line(stripped.decode("utf-8"))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            if is_last and not terminated:
                break  # torn tail — never acknowledged, drop it
            # A newline-terminated line completed its write — the
            # record was acknowledged, so damage here is real
            # corruption, never a benign torn tail.
            raise JournalCorrupt(
                f"{path}: corrupt record at line {index + 1}: {exc}"
            ) from exc
        if record.lsn > after_lsn:
            result.records.append(record)
        if terminated:
            result.clean_end = line_end
        else:
            result.tail_unterminated = True
        offset = line_end
    return result


def _read_records(path: str, after_lsn: int = 0) -> List[JournalRecord]:
    """Every intact record with ``lsn > after_lsn`` (tolerant read)."""
    return _scan(path, after_lsn).records


class Journal:
    """Thread-safe append-only JSONL journal with monotonic LSNs.

    Args:
        path: Journal file; created on first append, reopened (with
            torn-tail repair) when it already exists.
        fsync_every: Group-commit granularity — fsync once every N
            appends.  ``1`` fsyncs every record (full synchronous
            durability); ``0`` is an **explicit opt-out sentinel**: no
            append ever fsyncs, so an OS or power failure can lose every
            record since the last explicit :meth:`sync` (a process crash
            still loses nothing — appends always flush to the OS).
            :meth:`sync` and :meth:`close` fsync regardless of the
            sentinel.  Choose ``0`` only for throwaway stores
            (benchmarks, simulations replayed from scratch); negative
            values raise :class:`JournalError`.

    Raises:
        JournalError: If ``fsync_every`` is negative.
    """

    def __init__(self, path: str, fsync_every: int = 32) -> None:
        if fsync_every < 0:
            raise JournalError(f"fsync_every must be >= 0, got {fsync_every}")
        self.path = str(path)
        self.fsync_every = int(fsync_every)
        #: Control-plane observability sink (bound by
        #: :meth:`~repro.store.store.ControlPlaneStore.bind_obs`);
        #: ``None`` keeps the write path exactly as before — the
        #: timed branch is never entered.
        self.obs: Optional[Any] = None
        self._lock = threading.Lock()
        self._closed = False
        self._unsynced = 0
        # Resume numbering after the last intact record, and *repair* a
        # torn tail before appending anything: new records must never
        # land behind half-written garbage (that would turn a benign
        # torn tail into mid-journal corruption).
        scan = _scan(self.path)
        self._last_lsn = scan.records[-1].lsn if scan.records else 0
        if os.path.exists(self.path):
            size = os.path.getsize(self.path)
            if scan.tail_unterminated:
                with open(self.path, "ab") as handle:
                    handle.write(b"\n")
            elif size > scan.clean_end:
                with open(self.path, "rb+") as handle:
                    handle.truncate(scan.clean_end)
        self._handle = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """LSN of the newest appended record (0 when empty)."""
        with self._lock:
            return self._last_lsn

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def ensure_lsn_at_least(self, lsn: int) -> None:
        """Never issue LSNs at or below ``lsn``.

        The store calls this with the latest snapshot's LSN on open: a
        crash in the tiny window after compaction emptied the journal
        (before the audit marker landed) must not restart numbering at
        1 — reused LSNs would freeze durable consumer cursors and make
        the stale snapshot outrank every newer one.
        """
        with self._lock:
            self._last_lsn = max(self._last_lsn, int(lsn))

    def append(self, record_type: str, time: float = 0.0, **data: Any) -> int:
        """Durably append one record; returns its LSN.

        A closed journal drops the record and returns 0 — the "process
        is dead, the write never landed" semantics the crash-recovery
        tests rely on.
        """
        obs = self.obs
        if obs is not None and obs.enabled:
            # Instrumented twin of the plain path below: lock wait and
            # hold (the journal lock is contended by planner completion
            # threads *and* the orchestrator loop), plus fsync timing
            # and group-commit batch size inside _append_locked.
            requested = perf_counter()
            with self._lock:
                acquired = perf_counter()
                lsn = self._append_locked(record_type, time, data, obs=obs)
                done = perf_counter()
            obs.observe("journal.lock.wait", (acquired - requested) * 1000.0)
            obs.observe("journal.lock.hold", (done - acquired) * 1000.0)
            obs.observe("journal.append", (done - requested) * 1000.0)
            return lsn
        with self._lock:
            return self._append_locked(record_type, time, data)

    def _append_locked(
        self,
        record_type: str,
        time: float,
        data: Dict[str, Any],
        obs: Optional[Any] = None,
    ) -> int:
        if self._closed:
            return 0
        lsn = self._last_lsn + 1
        record = JournalRecord(lsn=lsn, time=float(time), record_type=record_type, data=data)
        self._handle.write(record.to_line() + "\n")
        self._handle.flush()
        self._unsynced += 1
        if self.fsync_every and self._unsynced >= self.fsync_every:
            self._fsync_locked(obs)
        self._last_lsn = lsn
        return lsn

    def _fsync_locked(self, obs: Optional[Any] = None) -> None:
        """Group-commit fsync (call under ``_lock``)."""
        if obs is not None:
            batch = self._unsynced
            started = perf_counter()
            os.fsync(self._handle.fileno())
            obs.observe("journal.fsync", (perf_counter() - started) * 1000.0)
            obs.observe("journal.batch_records", float(batch))
        else:
            os.fsync(self._handle.fileno())
        self._unsynced = 0

    def sync(self) -> None:
        """Force an fsync of everything appended so far."""
        obs = self.obs
        with self._lock:
            if self._closed:
                return
            self._handle.flush()
            self._fsync_locked(
                obs if obs is not None and obs.enabled and self._unsynced else None
            )

    def close(self) -> None:
        """Stop accepting appends (idempotent); pending bytes are synced."""
        with self._lock:
            if self._closed:
                return
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._closed = True

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def records(self, after_lsn: int = 0) -> List[JournalRecord]:
        """Every intact record with ``lsn > after_lsn``, oldest first."""
        with self._lock:
            if not self._closed:
                self._handle.flush()
        return _read_records(self.path, after_lsn)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self.records())

    def __len__(self) -> int:
        return len(self.records())

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, upto_lsn: int) -> int:
        """Drop records with ``lsn <= upto_lsn`` (they are covered by a
        snapshot).  Atomic: the survivors are rewritten to a temp file
        which is renamed over the journal, so a crash mid-compaction
        leaves either the old or the new journal, never a mix.

        Returns the number of records dropped.
        """
        with self._lock:
            if self._closed:
                raise JournalError("journal is closed")
            self._handle.flush()
            os.fsync(self._handle.fileno())
            keep = _read_records(self.path)
            survivors = [r for r in keep if r.lsn > upto_lsn]
            tmp_path = self.path + ".compact"
            with open(tmp_path, "w", encoding="utf-8") as tmp:
                for record in survivors:
                    tmp.write(record.to_line() + "\n")
                tmp.flush()
                os.fsync(tmp.fileno())
            self._handle.close()
            os.replace(tmp_path, self.path)
            self._handle = open(self.path, "a", encoding="utf-8")
            self._unsynced = 0
            return len(keep) - len(survivors)

    def size_bytes(self) -> int:
        """Current on-disk size of the journal file."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0


__all__ = ["Journal", "JournalCorrupt", "JournalError", "JournalRecord", "_read_records"]
