"""Durable control-plane store: event-sourced journal, snapshots, and
crash-recovery reconciliation.

The subsystem that lets an orchestrator restart without forfeiting its
slices: every control-plane transition is journaled
(:mod:`repro.store.journal`), periodically checkpointed
(:mod:`repro.store.snapshot`), and folded back on restart
(:mod:`repro.store.codec`), after which
:class:`~repro.store.recovery.RecoveryManager` reconciles the rebuilt
state against what the southbound drivers still physically hold.
"""

from repro.store.codec import ReplayState, request_from_dict, request_to_dict
from repro.store.journal import Journal, JournalCorrupt, JournalError, JournalRecord
from repro.store.recovery import RecoveryError, RecoveryManager, RecoveryReport
from repro.store.snapshot import SnapshotError, SnapshotStore
from repro.store.store import (
    ControlPlaneStore,
    NullStore,
    StoreError,
    open_store,
    shard_directory,
)

__all__ = [
    "ControlPlaneStore",
    "Journal",
    "JournalCorrupt",
    "JournalError",
    "JournalRecord",
    "NullStore",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryReport",
    "ReplayState",
    "SnapshotError",
    "SnapshotStore",
    "StoreError",
    "open_store",
    "request_from_dict",
    "request_to_dict",
    "shard_directory",
]
