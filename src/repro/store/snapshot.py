"""Snapshot (checkpoint) files for the control-plane store.

A snapshot is a full state checkpoint — the
:class:`~repro.store.codec.ReplayState` image at a known LSN — written
atomically (temp file + rename) so a crash mid-checkpoint can never
leave a half-written snapshot as the latest one.  Recovery loads the
newest *parseable* snapshot and replays only the journal records past
its LSN; the journal is compacted up to that LSN afterwards, which is
what keeps recovery time bounded by churn-since-checkpoint instead of
lifetime history (benchmark D12 measures the gap).

Layout: ``snapshot-<lsn, zero-padded>.json`` inside the store
directory; older snapshots are pruned after a successful write (the
newest is kept as the only one needed, plus its predecessor as a
paranoia fallback against a corrupt latest).
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.store.codec import json_default

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d+)\.json$")


class SnapshotError(RuntimeError):
    """Raised on snapshot-store misuse."""


class SnapshotStore:
    """Atomic full-state checkpoints keyed by journal LSN."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path_for(self, lsn: int) -> str:
        return os.path.join(self.directory, f"snapshot-{lsn:012d}.json")

    def list_lsns(self) -> List[int]:
        """LSNs of every snapshot on disk, ascending."""
        out = []
        for name in os.listdir(self.directory):
            match = _SNAPSHOT_RE.match(name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def write(self, state: Dict[str, Any], lsn: int) -> str:
        """Checkpoint ``state`` as of journal position ``lsn``.

        Atomic: written to a temp file, fsynced, then renamed into
        place.  Older snapshots beyond one predecessor are pruned.
        Returns the snapshot path.
        """
        if lsn < 0:
            raise SnapshotError(f"lsn must be >= 0, got {lsn}")
        path = self._path_for(lsn)
        tmp_path = path + ".tmp"
        payload = {"lsn": lsn, "state": state}
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, default=json_default)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        for stale in self.list_lsns()[:-2]:  # keep latest + one fallback
            try:
                os.remove(self._path_for(stale))
            except OSError:  # pragma: no cover - best effort
                pass
        return path

    def load_latest(self) -> Optional[Tuple[Dict[str, Any], int]]:
        """The newest parseable snapshot as ``(state, lsn)``.

        A corrupt latest snapshot (crash-truncated before the atomic
        rename discipline existed, disk damage) falls back to its
        predecessor; None when no usable snapshot exists.
        """
        for lsn in reversed(self.list_lsns()):
            try:
                with open(self._path_for(lsn), "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                return dict(payload["state"]), int(payload["lsn"])
            except (ValueError, KeyError, OSError):
                continue
        return None


__all__ = ["SnapshotError", "SnapshotStore"]
