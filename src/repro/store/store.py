"""Durable control-plane store: journal + snapshots behind one facade.

:class:`ControlPlaneStore` is what the orchestrator (and the service
layer) actually talks to: ``append`` journals a state transition,
``checkpoint`` writes a full-state snapshot and compacts the journal,
``load`` hands recovery the newest snapshot plus the journal tail past
it.  :class:`NullStore` is the disabled twin — same surface, no I/O —
so every call site stays unconditional and an orchestrator without a
``durability_dir`` behaves exactly as before this subsystem existed.

The store is thread-safe where it must be: ``append`` is called from
planner completion threads (per-driver reservation records) as well as
the orchestrator loop, and delegates to the journal's internal lock.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.store.codec import ReplayState
from repro.store.journal import Journal, JournalRecord
from repro.store.snapshot import SnapshotStore


class StoreError(RuntimeError):
    """Raised on store misuse (e.g. checkpointing a disabled store)."""


def shard_directory(root: str, shard_id: int) -> str:
    """The on-disk namespace of one shard under a durability root.

    The sharded control plane (:mod:`repro.cluster`) gives every shard
    its own journal + snapshot family so shard leaders never contend on
    a file, and a standby can tail exactly one shard's WAL.  The layout
    is part of the durable contract: a standby, a recovery run and the
    failover drill all resolve the same ``shard-<id>/`` path.
    """
    if shard_id < 0:
        raise StoreError(f"shard_id must be non-negative, got {shard_id}")
    return os.path.join(str(root), f"shard-{int(shard_id):03d}")


class NullStore:
    """The no-op store wired when durability is disabled.

    Every write is dropped, every read is empty; ``enabled`` is the
    single flag call sites may branch on (the admin API does, to 409 a
    checkpoint request against a memory-only control plane).
    """

    enabled = False
    directory: Optional[str] = None
    shard_id: Optional[int] = None

    @property
    def last_lsn(self) -> int:
        return 0

    @property
    def snapshot_lsn(self) -> int:
        return 0

    def append(self, record_type: str, time: float = 0.0, **data: Any) -> int:
        return 0

    def records(self, after_lsn: int = 0) -> List[JournalRecord]:
        return []

    def should_checkpoint(self) -> bool:
        return False

    def checkpoint(self, state: Dict[str, Any]) -> int:
        raise StoreError("durability is disabled (no durability_dir configured)")

    def load(self) -> Tuple[Optional[Dict[str, Any]], List[JournalRecord]]:
        return None, []

    def events_after(
        self, after_lsn: int = 0, limit: Optional[int] = None
    ) -> List[Tuple[int, Dict[str, Any]]]:
        return []

    def status(self) -> Dict[str, Any]:
        return {"enabled": False}

    def sync(self) -> None:
        pass

    def close(self) -> None:
        pass

    def bind_obs(self, obs: Any) -> None:
        pass


class ControlPlaneStore:
    """Event-sourced durability for the slice control plane.

    Args:
        directory: Store root (created if missing); holds
            ``journal.jsonl`` and ``snapshot-<lsn>.json`` files.
        fsync_every: Journal group-commit size (see
            :class:`~repro.store.journal.Journal`).
        checkpoint_every: Auto-checkpoint threshold — once this many
            records accumulate past the latest snapshot the
            orchestrator's monitoring loop writes a new one.  ``0``
            disables auto-checkpointing (manual ``POST
            /v1/admin/checkpoint`` still works).
        shard_id: Optional shard namespace — the store then lives in
            ``<directory>/shard-<id>/`` (see :func:`shard_directory`),
            giving every shard of a :mod:`repro.cluster` control plane
            its own journal + snapshot family under one root.
    """

    enabled = True

    def __init__(
        self,
        directory: str,
        fsync_every: int = 32,
        checkpoint_every: int = 512,
        shard_id: Optional[int] = None,
    ) -> None:
        self.shard_id = shard_id if shard_id is None else int(shard_id)
        if self.shard_id is not None:
            directory = shard_directory(directory, self.shard_id)
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.checkpoint_every = int(checkpoint_every)
        self.journal = Journal(
            os.path.join(self.directory, "journal.jsonl"), fsync_every=fsync_every
        )
        self.snapshots = SnapshotStore(self.directory)
        loaded = self.snapshots.load_latest()
        self._snapshot_lsn = loaded[1] if loaded else 0
        # The snapshot LSN is durable state too: if a crash landed in
        # the window where compaction left the journal empty, the
        # journal alone would restart numbering at 1 — below the
        # snapshot — reusing LSNs consumers already hold.
        self.journal.ensure_lsn_at_least(self._snapshot_lsn)
        self._lock = threading.Lock()
        self.obs: Optional[Any] = None

    def bind_obs(self, obs: Any) -> None:
        """Attach a control-plane observability sink: journal append /
        lock / fsync / batch-size histograms, checkpoint timing.  A
        disabled (no-op) sink unbinds — the write path stays pristine."""
        live = obs if (obs is not None and getattr(obs, "enabled", False)) else None
        self.obs = live
        self.journal.obs = live

    # ------------------------------------------------------------------
    # Journal passthrough
    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """Durable position: LSN of the newest journaled record."""
        return self.journal.last_lsn

    @property
    def snapshot_lsn(self) -> int:
        """LSN the newest snapshot covers (0 = no snapshot)."""
        return self._snapshot_lsn

    @property
    def records_since_checkpoint(self) -> int:
        """How much churn a recovery would have to replay right now."""
        return max(0, self.journal.last_lsn - self._snapshot_lsn)

    def append(self, record_type: str, time: float = 0.0, **data: Any) -> int:
        """Journal one state transition; returns its LSN (0 if the
        store was closed — the crash semantics)."""
        return self.journal.append(record_type, time=time, **data)

    def records(self, after_lsn: int = 0) -> List[JournalRecord]:
        """Journal records past ``after_lsn`` (post-compaction view)."""
        return self.journal.records(after_lsn)

    def sync(self) -> None:
        """Force-fsync the journal."""
        self.journal.sync()

    def close(self) -> None:
        """Simulated crash / clean shutdown: further appends are dropped."""
        self.journal.close()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def should_checkpoint(self) -> bool:
        """Whether enough churn accumulated for an auto-checkpoint."""
        return (
            self.checkpoint_every > 0
            and self.records_since_checkpoint >= self.checkpoint_every
        )

    def checkpoint(self, state: Dict[str, Any]) -> int:
        """Write a full-state snapshot at the current journal position
        and compact the journal up to it.  Returns the snapshot LSN."""
        obs = self.obs
        if obs is not None:
            with obs.timed("store.checkpoint"):
                return self._checkpoint(state)
        return self._checkpoint(state)

    def _checkpoint(self, state: Dict[str, Any]) -> int:
        with self._lock:
            self.journal.sync()
            lsn = self.journal.last_lsn
            self.snapshots.write(state, lsn)
            self.journal.compact(lsn)
            self._snapshot_lsn = lsn
        # Audit record (lands *after* the snapshot, so replay past the
        # snapshot sees it and ignores it).
        self.append("checkpoint.written", time=float(state.get("time", 0.0)), lsn=lsn)
        return lsn

    # ------------------------------------------------------------------
    # Recovery read path
    # ------------------------------------------------------------------
    def load(self) -> Tuple[Optional[Dict[str, Any]], List[JournalRecord]]:
        """The newest snapshot (or None) + the journal tail past it."""
        loaded = self.snapshots.load_latest()
        if loaded is None:
            return None, self.journal.records()
        state, lsn = loaded
        return state, self.journal.records(after_lsn=lsn)

    def replay(self) -> ReplayState:
        """Fold snapshot + journal tail into the recovered state image."""
        snapshot, tail = self.load()
        return ReplayState.restore(snapshot, tail)

    # ------------------------------------------------------------------
    # Durable event cursor (GET /v1/events?after_lsn=)
    # ------------------------------------------------------------------
    def events_after(
        self, after_lsn: int = 0, limit: Optional[int] = None
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Northbound events journaled past ``after_lsn``, as
        ``(lsn, event_dict)`` pairs, oldest first.

        Replay reaches back to the latest checkpoint (compaction drops
        older records); ``snapshot_lsn`` is the replay floor a consumer
        can detect a gap against.

        Cost: a cursor at (or past) the journal head returns without
        touching the disk — the steady state of a polling consumer;
        a cursor behind the head re-reads the post-compaction journal,
        so the scan is bounded by churn-since-checkpoint under the
        default auto-checkpoint policy.
        """
        if after_lsn >= self.journal.last_lsn:
            return []
        out: List[Tuple[int, Dict[str, Any]]] = []
        for record in self.journal.records(after_lsn):
            if record.record_type != "event.emitted":
                continue
            event = record.data.get("event")
            if not isinstance(event, dict):
                continue
            out.append((record.lsn, event))
            if limit is not None and len(out) >= limit:
                break
        return out

    # ------------------------------------------------------------------
    # Observability (GET /v1/admin/state)
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        return {
            "enabled": True,
            "directory": self.directory,
            "shard_id": self.shard_id,
            "last_lsn": self.journal.last_lsn,
            "snapshot_lsn": self._snapshot_lsn,
            "records_since_checkpoint": self.records_since_checkpoint,
            "checkpoint_every": self.checkpoint_every,
            "journal_bytes": self.journal.size_bytes(),
            "closed": self.journal.closed,
        }


def open_store(
    directory: Optional[str],
    fsync_every: int = 32,
    checkpoint_every: int = 512,
    shard_id: Optional[int] = None,
) -> "ControlPlaneStore | NullStore":
    """The store for ``directory`` — or the :class:`NullStore` when
    durability is not configured."""
    if not directory:
        return NullStore()
    return ControlPlaneStore(
        directory,
        fsync_every=fsync_every,
        checkpoint_every=checkpoint_every,
        shard_id=shard_id,
    )


__all__ = [
    "ControlPlaneStore",
    "NullStore",
    "StoreError",
    "open_store",
    "shard_directory",
]
