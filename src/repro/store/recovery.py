"""Crash-recovery: rebuild control-plane state and reconcile southbound.

:class:`RecoveryManager.restore` is the restart path of an
orchestrator whose process died: fold the durable store (snapshot +
journal tail) back into an in-memory image, rebuild the
orchestrator/calendar/quota state from it, and — crucially —
**reconcile against the southbound**, because the domain controllers
(real hardware, or the long-lived simulator controllers in tests) kept
running while the control plane was down.

Reconciliation matrix (per slice × driver ground truth, where "ground
truth" is :meth:`~repro.drivers.base.DomainDriver.list_reservations`):

====================  =========================  ===========================
journal says          drivers say                recovery does
====================  =========================  ===========================
installed (acked)     COMMITTED in every domain  re-adopt: rebuild runtime,
                                                 calendar window, PLMN,
                                                 expiry/activation timers
installed (acked)     missing/partial            slice is *lost*: compensate
                                                 the partial residue, report
install started,      COMMITTED in every domain  re-adopt (the southbound
never acked                                      finished what the dead
                                                 process started)
install started,      partial (PREPARED holds,   compensate the residue via
never acked           some domains missing)      the async unwind, then
                                                 re-enqueue the admission
enqueued, no install  —                          re-enqueue into the
                                                 admission queue
(nothing)             any reservation            orphan: rollback PREPARED,
                                                 release COMMITTED
====================  =========================  ===========================

Pending advance bookings are re-promised on the calendar with their
windows rebased to the new clock (a booking whose start time passed
while the orchestrator was down is promoted straight into the
admission queue).  Recovery ends with a fresh checkpoint, so the
journal restarts compact and time-coherent on the new clock.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import Future, wait as _wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.core.slices import ensure_request_counter_at_least
from repro.drivers.base import DriverError, Reservation, ReservationState
from repro.store.codec import ReplayState, request_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.service import SliceService
    from repro.core.orchestrator import Orchestrator


class RecoveryError(RuntimeError):
    """Raised when recovery cannot proceed (e.g. durability disabled)."""


@dataclass
class RecoveryReport:
    """What a restart rebuilt, reconciled and compensated."""

    snapshot_lsn: int = 0
    replayed_records: int = 0
    slices_adopted: int = 0
    slices_lost: int = 0
    admissions_requeued: int = 0
    broker_requeued: int = 0
    bookings_restored: int = 0
    bookings_promoted: int = 0
    orphans_compensated: int = 0
    compensation_failures: int = 0
    quotas_restored: int = 0
    duration_s: float = 0.0
    lost_slice_ids: List[str] = field(default_factory=list)
    state_digest: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "snapshot_lsn": self.snapshot_lsn,
            "replayed_records": self.replayed_records,
            "slices_adopted": self.slices_adopted,
            "slices_lost": self.slices_lost,
            "admissions_requeued": self.admissions_requeued,
            "broker_requeued": self.broker_requeued,
            "bookings_restored": self.bookings_restored,
            "bookings_promoted": self.bookings_promoted,
            "orphans_compensated": self.orphans_compensated,
            "compensation_failures": self.compensation_failures,
            "quotas_restored": self.quotas_restored,
            "duration_s": self.duration_s,
            "lost_slice_ids": list(self.lost_slice_ids),
            "state_digest": self.state_digest,
        }


class RecoveryManager:
    """Rebuilds a freshly constructed orchestrator from its durable
    store and reconciles it against the (surviving) southbound.

    Args:
        orchestrator: A *new, empty* orchestrator wired to the
            surviving driver registry and to the reopened store.
        service: Optional service facade; when given, journaled tenant
            quotas are re-applied to it.
        compensation_timeout_s: Wall-clock budget for the async orphan
            unwind (a hung backend must not wedge the restart).
    """

    def __init__(
        self,
        orchestrator: "Orchestrator",
        service: Optional["SliceService"] = None,
        compensation_timeout_s: float = 10.0,
    ) -> None:
        if not orchestrator.store.enabled:
            raise RecoveryError("orchestrator has no durable store to recover from")
        self.orchestrator = orchestrator
        self.service = service
        self.compensation_timeout_s = float(compensation_timeout_s)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def restore(self) -> RecoveryReport:
        """Fold the store, rebuild state, reconcile the southbound.

        Returns the :class:`RecoveryReport`; also journals a
        ``recovery.completed`` record and finishes with a fresh
        checkpoint so the journal restarts on the new clock.
        """
        started = _time.monotonic()
        orch = self.orchestrator
        report = RecoveryReport()
        snapshot, tail = orch.store.load()
        state = ReplayState.restore(snapshot, tail)
        report.snapshot_lsn = orch.store.snapshot_lsn
        report.replayed_records = state.records_applied
        report.state_digest = state.digest()
        crash_time = state.time
        # Fresh processes restart the global request counter; recovered
        # ids must never be re-issued to new requests.  The fold's
        # high-water mark covers *every* journaled id — including
        # slices that terminated before the crash, whose images are
        # gone from the live/queued sets.
        if state.last_request_ordinal:
            ensure_request_counter_at_least(state.last_request_ordinal)
        # Resume feed numbering BEFORE anything below emits: adoption
        # events must not reuse pre-crash sequence numbers (consumer
        # cursors rely on seqs rising monotonically across restarts).
        orch.events.resume_from(state.last_event_seq)

        truth = self._southbound_truth()
        adopted_ids = self._reconcile_slices(state, truth, crash_time, report)
        self._compensate_orphans(truth, adopted_ids, report)
        self._restore_bookings(state, crash_time, report)
        self._requeue_admissions(state, report)
        self._requeue_broker_windows(state, report)
        self._restore_quotas(state, report)

        # A fresh checkpoint makes the journal compact and time-coherent
        # on the new clock (pre-crash records carry the old one); it is
        # also the durable-cursor replay floor, so the completion event
        # is journaled *after* it — the one record a consumer resuming
        # across the restart must be able to see.
        orch.checkpoint()
        report.duration_s = _time.monotonic() - started
        orch.events.emit(
            orch.sim.now, "recovery.completed", **{
                "adopted": report.slices_adopted,
                "lost": report.slices_lost,
                "requeued": report.admissions_requeued,
                "compensated": report.orphans_compensated,
            }
        )
        orch.store.append(
            "recovery.completed", time=orch.sim.now, report=report.to_dict()
        )
        return report

    # ------------------------------------------------------------------
    # Southbound ground truth
    # ------------------------------------------------------------------
    def _southbound_truth(self) -> Dict[str, Dict[str, Reservation]]:
        """domain → slice_id → live reservation, straight from drivers."""
        truth: Dict[str, Dict[str, Reservation]] = {}
        for driver in self.orchestrator.registry.drivers():
            truth[driver.domain] = {
                r.slice_id: r for r in driver.list_reservations()
            }
        return truth

    def _fully_committed(
        self, slice_id: str, truth: Dict[str, Dict[str, Reservation]]
    ) -> Optional[Dict[str, Reservation]]:
        """The slice's reservation per domain iff *every* registered
        domain reports it COMMITTED (None otherwise)."""
        reservations: Dict[str, Reservation] = {}
        for domain, held in truth.items():
            reservation = held.get(slice_id)
            if reservation is None or reservation.state is not ReservationState.COMMITTED:
                return None
            reservations[domain] = reservation
        return reservations if reservations else None

    # ------------------------------------------------------------------
    # Slice reconciliation
    # ------------------------------------------------------------------
    def _reconcile_slices(
        self,
        state: ReplayState,
        truth: Dict[str, Dict[str, Reservation]],
        crash_time: float,
        report: RecoveryReport,
    ) -> set:
        orch = self.orchestrator
        deploy_time = orch.config.deploy_time_s
        adopted_ids: set = set()
        # Acknowledged installs first (their calendar promises outrank
        # everything), then never-acked in-flight installs.
        for slice_id, image in list(state.live.items()) + list(state.in_flight.items()):
            acked = slice_id in state.live
            reservations = self._fully_committed(slice_id, truth)
            request = request_from_dict(image["request"])
            if reservations is not None:
                duration = request.sla.duration_s
                if image.get("status") == "active":
                    remaining = max(
                        0.0, image["activated_at"] + duration - crash_time
                    )
                    active_remaining_s: Optional[float] = remaining
                    deploy_remaining_s = None
                else:
                    installed_at = image.get("installed_at", image.get("started_at", crash_time))
                    active_remaining_s = None
                    deploy_remaining_s = max(
                        0.0, installed_at + deploy_time - crash_time
                    )
                window = image.get("window")
                window_remaining_s = (
                    max(0.0, window[1] - crash_time) if window else None
                )
                orch.adopt_recovered_slice(
                    request,
                    plmn_id=image.get("plmn"),
                    fraction=image.get("fraction", 1.0),
                    reservations=reservations,
                    active_remaining_s=active_remaining_s,
                    deploy_remaining_s=deploy_remaining_s,
                    window_remaining_s=window_remaining_s,
                )
                adopted_ids.add(slice_id)
                report.slices_adopted += 1
            elif acked:
                # Journal promised this slice; the southbound lost it.
                report.slices_lost += 1
                report.lost_slice_ids.append(slice_id)
            else:
                # Never acknowledged: the admission survives, the
                # half-done install does not.
                orch.enqueue_admitted(request, orch.default_profile(request))
                report.admissions_requeued += 1
        return adopted_ids

    # ------------------------------------------------------------------
    # Orphan compensation (async unwind)
    # ------------------------------------------------------------------
    def _compensate_orphans(
        self,
        truth: Dict[str, Dict[str, Reservation]],
        adopted_ids: set,
        report: RecoveryReport,
    ) -> None:
        """Every reservation not adopted is residue of a dead install
        (or of a slice the journal already closed out): roll back the
        PREPARED ones, release the COMMITTED ones — through the
        drivers' async surface so one hung backend cannot wedge the
        restart past the compensation budget."""
        orch = self.orchestrator
        futures: List[Future] = []
        for domain, held in truth.items():
            try:
                driver = orch.registry.get(domain)
            except DriverError:  # pragma: no cover - unregistered mid-restore
                continue
            for slice_id, reservation in held.items():
                if slice_id in adopted_ids:
                    continue
                try:
                    if reservation.state is ReservationState.PREPARED:
                        future = driver.rollback_async(reservation)
                    elif reservation.state is ReservationState.COMMITTED:
                        future = driver.release_async(slice_id)
                    else:
                        continue
                except Exception:
                    report.compensation_failures += 1
                    continue

                def audit(
                    done: Future,
                    domain: str = domain,
                    slice_id: str = slice_id,
                    reservation_id: str = reservation.reservation_id,
                ) -> None:
                    # Journal only what actually happened: a failed or
                    # cancelled unwind must not leave a durable record
                    # claiming the reservation was compensated.
                    landed = (
                        not done.cancelled() and done.exception() is None
                    )
                    orch.store.append(
                        "driver.compensated"
                        if landed
                        else "driver.compensation_failed",
                        time=orch.sim.now,
                        domain=domain,
                        slice_id=slice_id,
                        reservation_id=reservation_id,
                        reason="recovery orphan",
                    )

                future.add_done_callback(audit)
                futures.append(future)
        if not futures:
            return
        done, not_done = _wait(futures, timeout=self.compensation_timeout_s)
        for future in done:
            if future.exception() is not None:
                report.compensation_failures += 1
            else:
                report.orphans_compensated += 1
        report.compensation_failures += len(not_done)

    # ------------------------------------------------------------------
    # Calendar + queue + quotas
    # ------------------------------------------------------------------
    def _restore_bookings(
        self, state: ReplayState, crash_time: float, report: RecoveryReport
    ) -> None:
        orch = self.orchestrator
        for request_id, entry in state.advance.items():
            request = request_from_dict(entry["request"])
            start_in_s = entry["start_time"] - crash_time
            if start_in_s <= 0:
                # The promised start passed while we were down; install
                # as soon as the control plane breathes again.
                orch.enqueue_admitted(request, orch.default_profile(request))
                report.bookings_promoted += 1
            else:
                orch.restore_advance_booking(request, start_in_s=start_in_s)
                report.bookings_restored += 1

    def _requeue_admissions(self, state: ReplayState, report: RecoveryReport) -> None:
        orch = self.orchestrator
        for request_id, payload in state.queued.items():
            request = request_from_dict(payload)
            orch.enqueue_admitted(request, orch.default_profile(request))
            report.admissions_requeued += 1

    def _requeue_broker_windows(
        self, state: ReplayState, report: RecoveryReport
    ) -> None:
        """Re-offer requests that were sitting in a broker decision
        window the crash cut short (``broker.enqueued`` with no
        ``broker.decided``).  Unlike journaled admissions these were
        never *admitted* — the window died before deciding — so they go
        back through full online admission (``Orchestrator.submit``),
        not straight into the install queue; losers are booked as
        ordinary rejections.  The original ``on_decision`` callbacks
        died with the process."""
        orch = self.orchestrator
        for request_id, payload in state.broker_pending.items():
            if request_id in state.queued:
                continue  # already re-offered by _requeue_admissions
            request = request_from_dict(payload)
            orch.submit(request, orch.default_profile(request))
            report.broker_requeued += 1

    def _restore_quotas(self, state: ReplayState, report: RecoveryReport) -> None:
        if not state.quotas:
            return
        # Always park the recovered quotas on the orchestrator: its
        # checkpoint section carries them, so a service-less restore
        # followed by the final checkpoint cannot compact them away;
        # a SliceService constructed later seeds itself from here.
        self.orchestrator.recovered_quotas.update(
            {tenant: dict(payload) for tenant, payload in state.quotas.items()}
        )
        report.quotas_restored = len(state.quotas)
        if self.service is not None:
            self.service.apply_recovered_quotas(state.quotas)


__all__ = ["RecoveryError", "RecoveryManager", "RecoveryReport"]
