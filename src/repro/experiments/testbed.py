"""Canonical simulated testbed mirroring the demo's Fig. 2.

Layout (all links duplex):

    enb1-agg ──mmWave──┐
    enb1-agg ──µwave───┤
                       ├── of-switch ──fiber── edge-dc-gw   (edge DC)
    enb2-agg ──mmWave──┤        │
    enb2-agg ──µwave───┘        └────fiber──── core-rtr ──fiber── core-dc-gw  (core DC)

Two 20 MHz eNBs (100 PRBs each, ~49 Mb/s at the reference CQI, MOCN ×6),
parallel mmWave (1 Gb/s, 1 ms)
and µwave (400 Mb/s, 2 ms) wireless transport into the OpenFlow switch,
an edge DC hanging off the switch and a core DC two fibre hops away
(+5 ms on the core router hop, modelling the metro backhaul).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cloud.controller import CloudController
from repro.cloud.datacenter import ComputeNode, Datacenter, DatacenterTier
from repro.cloud.placement import BestFitPlacement, PlacementPolicy
from repro.core.allocation import MultiDomainAllocator
from repro.core.slices import PlmnPool
from repro.drivers.adapters import build_default_registry
from repro.drivers.registry import DriverRegistry
from repro.ran.controller import RanController
from repro.ran.enb import ENodeB
from repro.transport.controller import TransportController
from repro.transport.links import LinkKind
from repro.transport.switch import OpenFlowSwitch
from repro.transport.topology import Topology


@dataclass
class TestbedConfig:
    """Knobs of the canonical testbed.

    Defaults reproduce the demo deployment; benchmarks scale them.
    """

    __test__ = False  # name starts with "Test" but this is not a test class

    n_enbs: int = 2
    enb_bandwidth_mhz: float = 20.0
    max_plmns_per_enb: int = 6
    mmwave_capacity_mbps: float = 1_000.0
    mmwave_delay_ms: float = 1.0
    microwave_capacity_mbps: float = 400.0
    microwave_delay_ms: float = 2.0
    edge_nodes: int = 2
    edge_vcpus_per_node: int = 16
    core_nodes: int = 4
    core_vcpus_per_node: int = 32
    core_extra_delay_ms: float = 5.0
    edge_processing_delay_ms: float = 0.5
    core_processing_delay_ms: float = 1.0
    plmn_pool_size: int = 12
    placement: Optional[PlacementPolicy] = None


@dataclass
class Testbed:
    """The wired-up controllers, planner views and southbound drivers of
    one testbed instance.

    ``allocator`` is the *planning* surface (demand/free vectors,
    candidate DCs, latency budgets); every lifecycle operation — install,
    resize, release, repair — goes through ``registry``, the
    :class:`~repro.drivers.registry.DriverRegistry` of adapters over the
    same controllers.
    """

    __test__ = False  # name starts with "Test" but this is not a test class

    config: TestbedConfig
    ran: RanController
    transport: TransportController
    cloud: CloudController
    allocator: MultiDomainAllocator
    registry: DriverRegistry
    plmn_pool: PlmnPool
    switch: OpenFlowSwitch
    enbs: List[ENodeB] = field(default_factory=list)


def build_testbed(config: Optional[TestbedConfig] = None) -> Testbed:
    """Construct the Fig. 2 testbed (or a scaled variant)."""
    config = config or TestbedConfig()
    # --- RAN --------------------------------------------------------
    enbs = [
        ENodeB(
            enb_id=f"enb{i + 1}",
            bandwidth_mhz=config.enb_bandwidth_mhz,
            max_plmns=config.max_plmns_per_enb,
            transport_node=f"enb{i + 1}-agg",
        )
        for i in range(config.n_enbs)
    ]
    ran = RanController(enbs)
    # --- Transport ---------------------------------------------------
    topology = Topology()
    switch = OpenFlowSwitch("of-switch", n_ports=48)
    for enb in enbs:
        topology.add_duplex(
            f"{enb.enb_id}-mmwave",
            enb.transport_node,
            "of-switch",
            kind=LinkKind.MMWAVE,
            capacity_mbps=config.mmwave_capacity_mbps,
            delay_ms=config.mmwave_delay_ms,
        )
        topology.add_duplex(
            f"{enb.enb_id}-uwave",
            enb.transport_node,
            "of-switch",
            kind=LinkKind.MICROWAVE,
            capacity_mbps=config.microwave_capacity_mbps,
            delay_ms=config.microwave_delay_ms,
        )
    topology.add_duplex(
        "switch-edge", "of-switch", "edge-dc-gw", kind=LinkKind.FIBER
    )
    topology.add_duplex(
        "switch-core-rtr",
        "of-switch",
        "core-rtr",
        kind=LinkKind.FIBER,
        delay_ms=config.core_extra_delay_ms,
    )
    topology.add_duplex("core-rtr-dc", "core-rtr", "core-dc-gw", kind=LinkKind.FIBER)
    transport = TransportController(topology, switches=[switch])
    # --- Cloud -------------------------------------------------------
    edge_dc = Datacenter(
        "edge-dc",
        DatacenterTier.EDGE,
        nodes=[
            ComputeNode(f"edge-node{i + 1}", vcpus=config.edge_vcpus_per_node)
            for i in range(config.edge_nodes)
        ],
        gateway_node="edge-dc-gw",
        processing_delay_ms=config.edge_processing_delay_ms,
    )
    core_dc = Datacenter(
        "core-dc",
        DatacenterTier.CORE,
        nodes=[
            ComputeNode(f"core-node{i + 1}", vcpus=config.core_vcpus_per_node)
            for i in range(config.core_nodes)
        ],
        gateway_node="core-dc-gw",
        processing_delay_ms=config.core_processing_delay_ms,
    )
    cloud = CloudController(
        [edge_dc, core_dc], placement=config.placement or BestFitPlacement()
    )
    allocator = MultiDomainAllocator(ran, transport, cloud)
    registry = build_default_registry(allocator)
    plmn_pool = PlmnPool(size=config.plmn_pool_size)
    return Testbed(
        config=config,
        ran=ran,
        transport=transport,
        cloud=cloud,
        allocator=allocator,
        registry=registry,
        plmn_pool=plmn_pool,
        switch=switch,
        enbs=enbs,
    )


__all__ = ["Testbed", "TestbedConfig", "build_testbed"]
