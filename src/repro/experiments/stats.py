"""Multi-seed replication with confidence intervals.

Single-seed results can mislead; this helper replays a scenario across
seeds and reports per-metric means with Student-t confidence intervals,
the standard reporting discipline for simulation studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np
from scipy import stats

from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario


class StatsError(RuntimeError):
    """Raised on malformed replication inputs."""


@dataclass(frozen=True)
class MetricSummary:
    """Mean and confidence interval of one metric across seeds."""

    metric: str
    mean: float
    ci_low: float
    ci_high: float
    std: float
    n: int

    @property
    def ci_half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0


def summarize(metric: str, values: Sequence[float], confidence: float = 0.95) -> MetricSummary:
    """Mean ± t-interval of a sample.

    Raises:
        StatsError: On an empty sample or a bad confidence level.
    """
    if not 0.0 < confidence < 1.0:
        raise StatsError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise StatsError("cannot summarize an empty sample")
    mean = float(arr.mean())
    if arr.size == 1 or float(arr.std(ddof=1)) == 0.0:
        return MetricSummary(metric, mean, mean, mean, 0.0, int(arr.size))
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    t_crit = float(stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return MetricSummary(
        metric=metric,
        mean=mean,
        ci_low=mean - t_crit * sem,
        ci_high=mean + t_crit * sem,
        std=float(arr.std(ddof=1)),
        n=int(arr.size),
    )


def replicate(
    config_factory: Callable[[int], ScenarioConfig],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> Dict[str, MetricSummary]:
    """Run one scenario across seeds; summarize every result-row metric.

    Args:
        config_factory: Builds the scenario config for a given seed
            (everything but the seed should be held fixed).
        seeds: Seeds to replicate over (≥ 1).
        confidence: CI level.

    Returns:
        metric name → :class:`MetricSummary`.

    Raises:
        StatsError: If ``seeds`` is empty.
    """
    if not seeds:
        raise StatsError("need at least one seed")
    rows: List[Dict[str, float]] = []
    for seed in seeds:
        result: ScenarioResult = run_scenario(config_factory(seed))
        rows.append(result.row())
    metrics = rows[0].keys()
    return {
        metric: summarize(metric, [row[metric] for row in rows], confidence)
        for metric in metrics
    }


def summaries_table(summaries: Dict[str, MetricSummary]) -> str:
    """Render replication summaries as an aligned text table."""
    from repro.dashboard.reports import format_table

    rows = [
        [s.metric, s.mean, s.ci_low, s.ci_high, s.std, s.n]
        for s in summaries.values()
    ]
    return format_table(["metric", "mean", "ci_low", "ci_high", "std", "n"], rows)


__all__ = ["MetricSummary", "StatsError", "replicate", "summaries_table", "summarize"]
