"""Scenario runner: one workload through one orchestrator configuration.

Every D-experiment is a sweep over :class:`ScenarioConfig` fields; the
runner builds a fresh testbed, wires an orchestrator with the requested
policies, drives a Poisson request workload for the horizon, and
returns the aggregate :class:`ScenarioResult` the benchmark tables are
printed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.admission import AdmissionPolicy, FcfsPolicy
from repro.core.forecasting import Forecaster, HoltWintersForecaster
from repro.core.orchestrator import Orchestrator, OrchestratorConfig
from repro.core.overbooking import NoOverbooking, OverbookingPolicy
from repro.drivers.base import DomainDriver
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.generator import RequestGenerator, RequestMix


@dataclass
class ScenarioConfig:
    """One experiment point.

    Attributes:
        horizon_s: Simulated duration.
        arrival_rate_per_s: Poisson request rate λ.
        seed: Root random seed.
        admission: Admission policy (fresh instance per scenario).
        overbooking: Overbooking policy (fresh instance per scenario).
        forecaster_factory: Per-slice forecaster constructor.
        mix: Vertical request mixture.
        testbed: Testbed sizing.
        orchestrator: Orchestration-loop tunables.
        extra_drivers: Additional southbound drivers registered after
            the default four (e.g. a :class:`~repro.drivers.mock.MockDriver`
            for failure-injection experiments).
    """

    horizon_s: float = 4 * 3_600.0
    arrival_rate_per_s: float = 1.0 / 300.0
    seed: int = 0
    admission: Optional[AdmissionPolicy] = None
    overbooking: Optional[OverbookingPolicy] = None
    forecaster_factory: Optional[Callable[[], Forecaster]] = None
    mix: Optional[RequestMix] = None
    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    orchestrator: OrchestratorConfig = field(default_factory=OrchestratorConfig)
    extra_drivers: Optional[list] = None


@dataclass
class ScenarioResult:
    """Aggregates of one scenario run (the benchmark table row)."""

    requests: int
    admitted: int
    rejected: int
    acceptance_ratio: float
    gross_revenue: float
    total_penalties: float
    net_revenue: float
    rejected_revenue: float
    violation_rate: float
    mean_multiplexing_gain: float
    peak_multiplexing_gain: float
    events_processed: int
    final_active_slices: int

    def row(self) -> Dict[str, float]:
        """Dict view for table printing."""
        return {
            "requests": self.requests,
            "admitted": self.admitted,
            "acceptance": self.acceptance_ratio,
            "gross": self.gross_revenue,
            "penalties": self.total_penalties,
            "net": self.net_revenue,
            "viol_rate": self.violation_rate,
            "gain_mean": self.mean_multiplexing_gain,
            "gain_peak": self.peak_multiplexing_gain,
        }


class ScenarioRunner:
    """Builds and runs one scenario end-to-end."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.streams = RandomStreams(seed=config.seed)
        self.sim = Simulator()
        self.testbed: Testbed = build_testbed(config.testbed)
        self.registry = self.testbed.registry
        for driver in config.extra_drivers or []:
            if not isinstance(driver, DomainDriver):
                raise TypeError(
                    f"extra_drivers entries must be DomainDriver instances, "
                    f"got {driver!r}"
                )
            self.registry.register(driver)
        self.orchestrator = Orchestrator(
            sim=self.sim,
            allocator=self.testbed.allocator,
            registry=self.registry,
            plmn_pool=self.testbed.plmn_pool,
            admission=config.admission or FcfsPolicy(),
            overbooking=config.overbooking or NoOverbooking(),
            forecaster_factory=config.forecaster_factory
            or (lambda: HoltWintersForecaster(season_length=24)),
            config=config.orchestrator,
            streams=self.streams,
        )
        self.generator = RequestGenerator(
            rng=self.streams.stream("arrivals"),
            arrival_rate_per_s=config.arrival_rate_per_s,
            mix=config.mix,
        )

    def run(self) -> ScenarioResult:
        """Drive the workload for the horizon and aggregate the result."""
        self.orchestrator.start()
        self.generator.drive(
            self.sim,
            self.config.horizon_s,
            lambda request, profile: self.orchestrator.submit(request, profile),
        )
        self.sim.run_until(self.config.horizon_s)
        self.orchestrator.stop()
        ledger = self.orchestrator.ledger
        return ScenarioResult(
            requests=ledger.admissions + ledger.rejections,
            admitted=ledger.admissions,
            rejected=ledger.rejections,
            acceptance_ratio=ledger.acceptance_ratio(),
            gross_revenue=ledger.gross_revenue,
            total_penalties=ledger.total_penalties,
            net_revenue=ledger.net_revenue,
            rejected_revenue=ledger.rejected_revenue,
            violation_rate=self.orchestrator.sla_monitor.violation_rate(),
            mean_multiplexing_gain=self.orchestrator.gain_tracker.mean_gain(),
            peak_multiplexing_gain=self.orchestrator.gain_tracker.peak_gain(),
            events_processed=self.sim.events_processed,
            final_active_slices=len(self.orchestrator.active_slices()),
        )


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Convenience one-shot: build a runner and run it."""
    return ScenarioRunner(config).run()


__all__ = ["ScenarioConfig", "ScenarioResult", "ScenarioRunner", "run_scenario"]
