"""Experiment harness shared by the examples and benchmarks.

:func:`build_testbed` reconstructs the Fig. 2 demo testbed in
simulation; :class:`ScenarioRunner` drives a full workload through an
orchestrator and aggregates the metrics every D-experiment reports.
"""

from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.experiments.runner import ScenarioConfig, ScenarioResult, ScenarioRunner

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "ScenarioRunner",
    "Testbed",
    "TestbedConfig",
    "build_testbed",
]
