"""Result export: scenario results to CSV / JSON for external analysis."""

from __future__ import annotations

import csv
import io
import json
from typing import List, Optional, Sequence

from repro.experiments.runner import ScenarioResult


class ExportError(RuntimeError):
    """Raised on malformed export inputs."""


RESULT_FIELDS = [
    "requests",
    "admitted",
    "rejected",
    "acceptance_ratio",
    "gross_revenue",
    "total_penalties",
    "net_revenue",
    "rejected_revenue",
    "violation_rate",
    "mean_multiplexing_gain",
    "peak_multiplexing_gain",
    "events_processed",
    "final_active_slices",
]


def results_to_csv(
    results: Sequence[ScenarioResult],
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Serialize scenario results as CSV (one row per result).

    Args:
        results: Results to serialize.
        labels: Optional per-result label column (e.g. the sweep value).

    Raises:
        ExportError: If labels are given but mismatch results in length.
    """
    if labels is not None and len(labels) != len(results):
        raise ExportError(
            f"{len(labels)} labels for {len(results)} results"
        )
    buffer = io.StringIO()
    fieldnames = (["label"] if labels is not None else []) + RESULT_FIELDS
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, lineterminator="\n")
    writer.writeheader()
    for i, result in enumerate(results):
        row = {field: getattr(result, field) for field in RESULT_FIELDS}
        if labels is not None:
            row["label"] = labels[i]
        writer.writerow(row)
    return buffer.getvalue()


def results_to_json(
    results: Sequence[ScenarioResult],
    labels: Optional[Sequence[str]] = None,
    indent: Optional[int] = None,
) -> str:
    """Serialize scenario results as a JSON array of objects."""
    if labels is not None and len(labels) != len(results):
        raise ExportError(
            f"{len(labels)} labels for {len(results)} results"
        )
    payload: List[dict] = []
    for i, result in enumerate(results):
        row = {field: getattr(result, field) for field in RESULT_FIELDS}
        if labels is not None:
            row["label"] = labels[i]
        payload.append(row)
    return json.dumps(payload, indent=indent, sort_keys=True)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a unicode sparkline of a series (dashboard gain history).

    Values are min-max normalized onto eight block heights; the series
    is resampled to at most ``width`` points by striding.
    """
    blocks = "▁▂▃▄▅▆▇█"
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width <= 0:
        raise ExportError(f"width must be positive, got {width}")
    if len(vals) > width:
        stride = len(vals) / width
        vals = [vals[int(i * stride)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    if hi - lo < 1e-12:
        return blocks[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / (hi - lo) * (len(blocks) - 1))
        out.append(blocks[idx])
    return "".join(out)


__all__ = ["ExportError", "RESULT_FIELDS", "results_to_csv", "results_to_json", "sparkline"]
