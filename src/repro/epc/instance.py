"""Per-slice vEPC instance.

Wraps the Heat stack holding the four EPC VMs and exposes the
control-plane surface the attach procedure needs: subscriber
provisioning in the HSS and session/bearer state in SGW/PGW.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cloud.heat import HeatStack, StackState
from repro.epc.components import EPC_PROCESSING_MS


class EpcError(RuntimeError):
    """Raised on EPC control-plane violations."""


class EpcInstance:
    """One slice's virtualized core network.

    Args:
        slice_id: Owning slice.
        plmn_id: PLMN this core serves (UE IMSIs must start with it).
        stack: The CREATE_COMPLETE Heat stack hosting the four VMs.
    """

    def __init__(self, slice_id: str, plmn_id: str, stack: HeatStack) -> None:
        if stack.state is not StackState.CREATE_COMPLETE:
            raise EpcError(
                f"cannot bind EPC to stack in state {stack.state.value}"
            )
        self.slice_id = slice_id
        self.plmn_id = plmn_id
        self.stack = stack
        self._subscribers: Set[str] = set()  # provisioned IMSIs (HSS)
        self._sessions: Dict[str, int] = {}  # imsi -> bearer id (SGW/PGW)
        self._bearer_counter = 0
        self.running = True

    # ------------------------------------------------------------------
    # HSS surface
    # ------------------------------------------------------------------
    def provision_subscriber(self, imsi: str) -> None:
        """Add an IMSI to the HSS.

        Raises:
            EpcError: If the IMSI belongs to a foreign PLMN or is a
                duplicate.
        """
        if not imsi.startswith(self.plmn_id):
            raise EpcError(
                f"IMSI {imsi} does not belong to PLMN {self.plmn_id}"
            )
        if imsi in self._subscribers:
            raise EpcError(f"IMSI {imsi} already provisioned")
        self._subscribers.add(imsi)

    def is_subscriber(self, imsi: str) -> bool:
        """HSS lookup: whether the IMSI may attach."""
        return imsi in self._subscribers

    @property
    def subscriber_count(self) -> int:
        """Number of provisioned IMSIs."""
        return len(self._subscribers)

    # ------------------------------------------------------------------
    # Session management (SGW/PGW surface)
    # ------------------------------------------------------------------
    def create_session(self, imsi: str) -> int:
        """Establish the default bearer for an authenticated UE.

        Returns:
            The new bearer id.

        Raises:
            EpcError: If the EPC is down, the IMSI is unknown, or a
                session already exists.
        """
        if not self.running:
            raise EpcError(f"EPC of slice {self.slice_id} is not running")
        if imsi not in self._subscribers:
            raise EpcError(f"unknown IMSI {imsi} (authentication failure)")
        if imsi in self._sessions:
            raise EpcError(f"IMSI {imsi} already has an active session")
        self._bearer_counter += 1
        self._sessions[imsi] = self._bearer_counter
        return self._bearer_counter

    def delete_session(self, imsi: str) -> None:
        """Tear down the UE's bearer."""
        if imsi not in self._sessions:
            raise EpcError(f"IMSI {imsi} has no session")
        del self._sessions[imsi]

    def session_of(self, imsi: str) -> Optional[int]:
        """Bearer id of the IMSI (None if detached)."""
        return self._sessions.get(imsi)

    @property
    def active_sessions(self) -> int:
        """Count of established bearers."""
        return len(self._sessions)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop serving (stack deletion happens at the cloud controller)."""
        self.running = False
        self._sessions.clear()

    def control_plane_latency_ms(self) -> float:
        """Summed per-component processing latency of one attach pass."""
        return sum(EPC_PROCESSING_MS.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpcInstance({self.slice_id}, plmn={self.plmn_id}, "
            f"subs={self.subscriber_count}, sessions={self.active_sessions})"
        )


__all__ = ["EpcError", "EpcInstance"]
