"""Virtualized Evolved Packet Core substrate.

Replaces the demo's OpenEPC 7 deployment: each admitted slice gets its
own vEPC instance — MME, HSS, SGW and PGW as VMs launched from a Heat
template — and UEs provisioned with the slice's PLMN run the standard
attach procedure against it, with latency accounted along the real
control-plane path.
"""

from repro.epc.components import EPC_COMPONENT_FLAVORS, EpcComponentType, epc_template
from repro.epc.instance import EpcInstance, EpcError
from repro.epc.attach import AttachOutcome, AttachProcedure

__all__ = [
    "AttachOutcome",
    "AttachProcedure",
    "EPC_COMPONENT_FLAVORS",
    "EpcComponentType",
    "EpcError",
    "EpcInstance",
    "epc_template",
]
