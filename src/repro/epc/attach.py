"""UE attach procedure.

Reproduces the demo's closing moment: "after few seconds, user devices
associated with the PLMN-id of the new slices are allowed to connect".
The procedure walks the standard LTE message sequence (RRC setup →
Attach Request → HSS auth → Create Session → Attach Accept) and accounts
latency as signalling round trips over the slice's transport path plus
per-EPC-component processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.epc.instance import EpcError, EpcInstance
from repro.ran.enb import ENodeB
from repro.ran.ue import AttachState, UserEquipment

#: RRC connection establishment time over the air (ms).
RRC_SETUP_MS = 15.0

#: Number of one-way transport traversals in the attach sequence
#: (Attach Request up, auth down+up, Create Session up, Accept down).
SIGNALLING_TRAVERSALS = 5


@dataclass(frozen=True)
class AttachOutcome:
    """Result of one attach attempt.

    Attributes:
        success: Whether the UE reached ATTACHED.
        latency_ms: Total control-plane latency (0 when failed early).
        bearer_id: Default bearer id on success.
        failure_reason: Diagnostic on failure.
    """

    success: bool
    latency_ms: float
    bearer_id: Optional[int] = None
    failure_reason: Optional[str] = None


class AttachProcedure:
    """Executes attaches for one slice against its eNB + vEPC.

    Args:
        enb: The cell broadcasting the slice's PLMN.
        epc: The slice's vEPC instance.
        transport_delay_ms: One-way delay of the slice's transport path.
    """

    def __init__(self, enb: ENodeB, epc: EpcInstance, transport_delay_ms: float) -> None:
        if transport_delay_ms < 0:
            raise EpcError("transport delay cannot be negative")
        self.enb = enb
        self.epc = epc
        self.transport_delay_ms = float(transport_delay_ms)

    def expected_latency_ms(self) -> float:
        """Deterministic attach latency: RRC + signalling + EPC processing."""
        return (
            RRC_SETUP_MS
            + SIGNALLING_TRAVERSALS * self.transport_delay_ms
            + self.epc.control_plane_latency_ms()
        )

    def attach(self, ue: UserEquipment) -> AttachOutcome:
        """Run the full attach sequence for ``ue``.

        Fails (without raising) when the cell does not broadcast the
        UE's PLMN, the UE is out of coverage (CQI 0), the HSS does not
        know the IMSI, or the EPC is down.
        """
        if ue.state in (AttachState.IDLE, AttachState.DETACHED):
            ue.start_search()
        # Cell selection: the UE only finds a cell broadcasting its PLMN.
        if not self.enb.broadcasts(ue.plmn.plmn_id):
            return AttachOutcome(
                success=False,
                latency_ms=0.0,
                failure_reason=f"PLMN {ue.plmn} not broadcast by {self.enb.enb_id}",
            )
        if ue.channel.cqi() < 1:
            return AttachOutcome(
                success=False, latency_ms=0.0, failure_reason="out of coverage (CQI 0)"
            )
        ue.found_cell(self.enb.enb_id)
        # Attach Request → MME → HSS authentication.
        if not self.epc.is_subscriber(ue.imsi):
            ue.detach()
            return AttachOutcome(
                success=False,
                latency_ms=RRC_SETUP_MS + 2 * self.transport_delay_ms,
                failure_reason=f"IMSI {ue.imsi} rejected by HSS",
            )
        # Create Session at SGW/PGW: default bearer.
        try:
            bearer = self.epc.create_session(ue.imsi)
        except EpcError as exc:
            ue.detach()
            return AttachOutcome(
                success=False,
                latency_ms=RRC_SETUP_MS + 3 * self.transport_delay_ms,
                failure_reason=str(exc),
            )
        latency = self.expected_latency_ms()
        ue.attach_complete(latency / 1_000.0)
        return AttachOutcome(success=True, latency_ms=latency, bearer_id=bearer)

    def detach(self, ue: UserEquipment) -> None:
        """Tear down the UE's bearer and drop it from the cell."""
        if self.epc.session_of(ue.imsi) is not None:
            self.epc.delete_session(ue.imsi)
        ue.detach()


__all__ = [
    "AttachOutcome",
    "AttachProcedure",
    "RRC_SETUP_MS",
    "SIGNALLING_TRAVERSALS",
]
