"""EPC network functions and the per-slice vEPC Heat template.

OpenEPC 7 packages the core functions as separate VMs; we mirror the
canonical four-box split.  Flavors follow typical vEPC sizing for a
small-cell deployment (the control-plane boxes are small; the PGW, which
forwards user-plane traffic, is the largest).
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.cloud.flavors import FLAVORS, Flavor
from repro.cloud.heat import HeatTemplate, StackResource


class EpcComponentType(enum.Enum):
    """The four EPC network functions deployed per slice."""

    MME = "mme"  # mobility management entity (control plane)
    HSS = "hss"  # home subscriber server (subscription DB)
    SGW = "sgw"  # serving gateway (user plane anchor, RAN side)
    PGW = "pgw"  # packet data network gateway (user plane, internet side)


#: Flavor of each component's VM.
EPC_COMPONENT_FLAVORS: Dict[EpcComponentType, Flavor] = {
    EpcComponentType.MME: FLAVORS["m1.small"],
    EpcComponentType.HSS: FLAVORS["m1.small"],
    EpcComponentType.SGW: FLAVORS["m1.medium"],
    EpcComponentType.PGW: FLAVORS["m1.medium"],
}

#: Per-component processing latency (ms) added to control-plane procedures.
EPC_PROCESSING_MS: Dict[EpcComponentType, float] = {
    EpcComponentType.MME: 2.0,
    EpcComponentType.HSS: 1.5,
    EpcComponentType.SGW: 1.0,
    EpcComponentType.PGW: 1.0,
}


def epc_template(slice_id: str) -> HeatTemplate:
    """Build the Heat template instantiating one vEPC for ``slice_id``."""
    resources = tuple(
        StackResource(name=component.value, flavor=flavor)
        for component, flavor in EPC_COMPONENT_FLAVORS.items()
    )
    return HeatTemplate(name=f"vEPC-{slice_id}", resources=resources)


__all__ = [
    "EPC_COMPONENT_FLAVORS",
    "EPC_PROCESSING_MS",
    "EpcComponentType",
    "epc_template",
]
