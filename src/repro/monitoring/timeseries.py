"""Bounded in-memory time series.

The forecaster consumes per-slice demand histories; this store keeps
``(timestamp, value)`` pairs in arrival order with an optional retention
cap, and offers the window/resample/statistics operations the
forecasting and dashboard code need.  Timestamps must be non-decreasing
— the collector always appends at the current simulation time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np


class TimeSeriesError(RuntimeError):
    """Raised on time-series misuse (e.g. out-of-order appends)."""


class TimeSeries:
    """Append-only (time, value) sequence with bounded retention."""

    def __init__(self, name: str = "", max_points: Optional[int] = None) -> None:
        if max_points is not None and max_points <= 0:
            raise TimeSeriesError(f"max_points must be positive, got {max_points}")
        self.name = name
        self._points: Deque[Tuple[float, float]] = deque(maxlen=max_points)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def empty(self) -> bool:
        """Whether the series holds no points."""
        return not self._points

    def append(self, t: float, value: float) -> None:
        """Append a sample.

        Raises:
            TimeSeriesError: If ``t`` precedes the latest sample.
        """
        if self._points and t < self._points[-1][0]:
            raise TimeSeriesError(
                f"out-of-order append: t={t} < last t={self._points[-1][0]}"
            )
        self._points.append((float(t), float(value)))

    def last(self) -> Tuple[float, float]:
        """Latest (time, value) sample.

        Raises:
            TimeSeriesError: If the series is empty.
        """
        if not self._points:
            raise TimeSeriesError(f"series {self.name!r} is empty")
        return self._points[-1]

    def times(self) -> np.ndarray:
        """All timestamps as an array."""
        return np.array([t for t, _ in self._points], dtype=float)

    def values(self) -> np.ndarray:
        """All values as an array."""
        return np.array([v for _, v in self._points], dtype=float)

    def window(self, start_t: float, end_t: float) -> List[Tuple[float, float]]:
        """Samples with ``start_t ≤ t < end_t``."""
        if end_t < start_t:
            raise TimeSeriesError(f"bad window [{start_t}, {end_t})")
        return [(t, v) for t, v in self._points if start_t <= t < end_t]

    def tail(self, n: int) -> np.ndarray:
        """Values of the ``n`` most recent samples (fewer if short)."""
        if n <= 0:
            raise TimeSeriesError(f"n must be positive, got {n}")
        vals = self.values()
        return vals[-n:]

    def mean(self) -> float:
        """Mean of all retained values (0.0 when empty)."""
        return float(self.values().mean()) if self._points else 0.0

    def std(self) -> float:
        """Standard deviation of retained values (0.0 when < 2 points)."""
        if len(self._points) < 2:
            return 0.0
        return float(self.values().std(ddof=1))

    def quantile(self, q: float) -> float:
        """Empirical quantile of retained values.

        Raises:
            TimeSeriesError: If empty or ``q`` outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise TimeSeriesError(f"quantile must be in [0, 1], got {q}")
        if not self._points:
            raise TimeSeriesError(f"series {self.name!r} is empty")
        return float(np.quantile(self.values(), q))

    def resample(self, period: float, start_t: Optional[float] = None) -> np.ndarray:
        """Average values into fixed ``period``-wide bins.

        Empty bins carry the previous bin's value forward (or 0.0 at the
        start), giving the evenly-spaced series the forecasters expect.
        """
        if period <= 0:
            raise TimeSeriesError(f"period must be positive, got {period}")
        if not self._points:
            return np.array([], dtype=float)
        t0 = self._points[0][0] if start_t is None else start_t
        t_end = self._points[-1][0]
        n_bins = max(1, int((t_end - t0) / period) + 1)
        sums = np.zeros(n_bins)
        counts = np.zeros(n_bins)
        for t, v in self._points:
            if t < t0:
                continue
            idx = min(int((t - t0) / period), n_bins - 1)
            sums[idx] += v
            counts[idx] += 1
        out = np.zeros(n_bins)
        prev = 0.0
        for i in range(n_bins):
            if counts[i] > 0:
                prev = sums[i] / counts[i]
            out[i] = prev
        return out


__all__ = ["TimeSeries", "TimeSeriesError"]
