"""Periodic telemetry collector.

Every monitoring epoch the collector snapshots the three domain
controllers (the "real-time monitoring" box of Fig. 1) and records the
numbers the rest of the system feeds on: per-slice demand and delivered
throughput for the forecaster and SLA monitor, and per-domain
utilization for the dashboard.
"""

from __future__ import annotations

from typing import Dict

from repro.monitoring.metrics import MetricsRegistry


class TelemetryCollector:
    """Snapshots domain controllers into a :class:`MetricsRegistry`.

    Args:
        metrics: Destination registry.
        ran: Object with a ``utilization() -> dict`` method (RAN controller).
        transport: Likewise for the transport controller.
        cloud: Likewise for the cloud controller.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        ran=None,
        transport=None,
        cloud=None,
    ) -> None:
        self.metrics = metrics
        self.ran = ran
        self.transport = transport
        self.cloud = cloud
        self.epochs_collected = 0

    def collect_domains(self, t: float) -> Dict[str, dict]:
        """Poll each controller's utilization API and record gauges.

        Returns:
            The raw per-domain snapshots (also useful to the dashboard).
        """
        snapshots: Dict[str, dict] = {}
        if self.ran is not None:
            snap = self.ran.utilization()
            snapshots["ran"] = snap
            total = max(1, snap["total_prbs"])
            self.metrics.record(t, "ran.effective_utilization", snap["effective_reserved"] / total)
            self.metrics.record(t, "ran.nominal_utilization", snap["nominal_reserved"] / total)
        if self.transport is not None:
            snap = self.transport.utilization()
            snapshots["transport"] = snap
            total = max(1e-9, snap["total_capacity_mbps"])
            self.metrics.record(
                t, "transport.effective_utilization", snap["effective_reserved_mbps"] / total
            )
            self.metrics.record(
                t, "transport.nominal_utilization", snap["nominal_reserved_mbps"] / total
            )
        if self.cloud is not None:
            snap = self.cloud.utilization()
            snapshots["cloud"] = snap
            total = max(1, snap["total_vcpus"])
            used = total - snap["free_vcpus"]
            self.metrics.record(t, "cloud.vcpu_utilization", used / total)
        self.epochs_collected += 1
        return snapshots

    def record_slice_epoch(
        self,
        t: float,
        slice_id: str,
        demand_mbps: float,
        delivered_mbps: float,
        violated: bool,
    ) -> None:
        """Record one slice's epoch: demand, delivery and violation flag."""
        self.metrics.record(t, "slice.demand_mbps", demand_mbps, label=slice_id)
        self.metrics.record(t, "slice.delivered_mbps", delivered_mbps, label=slice_id)
        self.metrics.record(t, "slice.violated", 1.0 if violated else 0.0, label=slice_id)

    def demand_history(self, slice_id: str):
        """The slice's demand series (for the forecaster)."""
        return self.metrics.series("slice.demand_mbps", label=slice_id)


__all__ = ["TelemetryCollector"]
