"""Metrics registry: named time series with label support."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.monitoring.timeseries import TimeSeries


class MetricsRegistry:
    """Flat registry of named time series.

    Metric keys follow ``"area.metric{label}"`` informally — e.g.
    ``"slice.demand_mbps{slice-000001}"``.  The registry creates series
    lazily and caps retention uniformly.
    """

    def __init__(self, max_points_per_series: Optional[int] = 10_000) -> None:
        self._series: Dict[str, TimeSeries] = {}
        self._max_points = max_points_per_series

    @staticmethod
    def key(metric: str, label: str = "") -> str:
        """Canonical series key for a metric + label pair."""
        return f"{metric}{{{label}}}" if label else metric

    def series(self, metric: str, label: str = "") -> TimeSeries:
        """Get (creating if needed) the series for ``metric``/``label``."""
        k = self.key(metric, label)
        if k not in self._series:
            self._series[k] = TimeSeries(name=k, max_points=self._max_points)
        return self._series[k]

    def record(self, t: float, metric: str, value: float, label: str = "") -> None:
        """Append one sample."""
        self.series(metric, label).append(t, value)

    def has(self, metric: str, label: str = "") -> bool:
        """Whether the series exists (has been recorded at least once)."""
        return self.key(metric, label) in self._series

    def latest(self, metric: str, label: str = "", default: float = 0.0) -> float:
        """Most recent value, or ``default`` if the series is absent/empty."""
        k = self.key(metric, label)
        s = self._series.get(k)
        if s is None or s.empty:
            return default
        return s.last()[1]

    def names(self) -> List[str]:
        """All series keys."""
        return list(self._series)

    def labels_of(self, metric: str) -> List[str]:
        """Labels for which ``metric`` has a series."""
        prefix = f"{metric}{{"
        out = []
        for k in self._series:
            if k.startswith(prefix) and k.endswith("}"):
                out.append(k[len(prefix):-1])
        return out

    def snapshot(self) -> Dict[str, Tuple[float, float]]:
        """Latest (t, value) of every non-empty series."""
        return {
            k: s.last() for k, s in self._series.items() if not s.empty
        }

    def to_prometheus(self) -> str:
        """Latest values in the Prometheus text exposition format.

        ``area.metric{label}`` becomes ``area_metric{slice="label"}``;
        timestamps are the simulation time in milliseconds.
        """
        lines = []
        for key in sorted(self._series):
            series = self._series[key]
            if series.empty:
                continue
            t, value = series.last()
            if "{" in key:
                metric, label = key[:-1].split("{", 1)
                name = metric.replace(".", "_").replace("-", "_")
                lines.append(f'{name}{{slice="{label}"}} {value} {int(t * 1000)}')
            else:
                name = key.replace(".", "_").replace("-", "_")
                lines.append(f"{name} {value} {int(t * 1000)}")
        return "\n".join(lines) + ("\n" if lines else "")


__all__ = ["MetricsRegistry"]
