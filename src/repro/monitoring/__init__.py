"""Monitoring substrate: time-series storage and telemetry collection.

The demo's orchestrator "collects information about network utilization"
through the domain controllers' REST APIs and feeds it to the
forecasting engine.  This package provides the in-memory time-series
store, a metrics registry, and the periodic collector that snapshots
every domain each monitoring epoch.
"""

from repro.monitoring.timeseries import TimeSeries, TimeSeriesError
from repro.monitoring.metrics import MetricsRegistry
from repro.monitoring.collector import TelemetryCollector

__all__ = [
    "MetricsRegistry",
    "TelemetryCollector",
    "TimeSeries",
    "TimeSeriesError",
]
