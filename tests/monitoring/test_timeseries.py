"""Tests for the time-series store."""

from __future__ import annotations

import pytest

from repro.monitoring.timeseries import TimeSeries, TimeSeriesError


@pytest.fixture
def series():
    ts = TimeSeries("demand")
    for i in range(10):
        ts.append(float(i), float(i * 2))
    return ts


class TestAppend:
    def test_append_and_len(self, series):
        assert len(series) == 10
        assert not series.empty

    def test_out_of_order_rejected(self, series):
        with pytest.raises(TimeSeriesError):
            series.append(5.0, 1.0)

    def test_equal_timestamps_allowed(self):
        ts = TimeSeries()
        ts.append(1.0, 1.0)
        ts.append(1.0, 2.0)
        assert len(ts) == 2

    def test_retention_cap(self):
        ts = TimeSeries(max_points=3)
        for i in range(10):
            ts.append(float(i), float(i))
        assert len(ts) == 3
        assert ts.values().tolist() == [7.0, 8.0, 9.0]

    def test_bad_cap_rejected(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(max_points=0)


class TestQueries:
    def test_last(self, series):
        assert series.last() == (9.0, 18.0)

    def test_last_on_empty_rejected(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries().last()

    def test_window_half_open(self, series):
        window = series.window(2.0, 5.0)
        assert [t for t, _ in window] == [2.0, 3.0, 4.0]

    def test_bad_window_rejected(self, series):
        with pytest.raises(TimeSeriesError):
            series.window(5.0, 2.0)

    def test_tail(self, series):
        assert series.tail(3).tolist() == [14.0, 16.0, 18.0]
        assert series.tail(100).size == 10
        with pytest.raises(TimeSeriesError):
            series.tail(0)

    def test_stats(self, series):
        assert series.mean() == pytest.approx(9.0)
        assert series.std() > 0
        assert series.quantile(0.5) == pytest.approx(9.0)
        assert series.quantile(1.0) == 18.0

    def test_stats_on_empty(self):
        ts = TimeSeries()
        assert ts.mean() == 0.0
        assert ts.std() == 0.0
        with pytest.raises(TimeSeriesError):
            ts.quantile(0.5)

    def test_bad_quantile_rejected(self, series):
        with pytest.raises(TimeSeriesError):
            series.quantile(1.1)


class TestResample:
    def test_bins_average(self):
        ts = TimeSeries()
        ts.append(0.0, 10.0)
        ts.append(0.5, 20.0)
        ts.append(1.0, 30.0)
        out = ts.resample(1.0)
        assert out.tolist() == [15.0, 30.0]

    def test_empty_bins_carry_forward(self):
        ts = TimeSeries()
        ts.append(0.0, 5.0)
        ts.append(3.0, 9.0)
        out = ts.resample(1.0)
        assert out.tolist() == [5.0, 5.0, 5.0, 9.0]

    def test_empty_series(self):
        assert TimeSeries().resample(1.0).size == 0

    def test_bad_period_rejected(self, series):
        with pytest.raises(TimeSeriesError):
            series.resample(0.0)
