"""Tests for the metrics registry and telemetry collector."""

from __future__ import annotations


from repro.monitoring.collector import TelemetryCollector
from repro.monitoring.metrics import MetricsRegistry


class TestRegistry:
    def test_record_and_latest(self):
        registry = MetricsRegistry()
        registry.record(1.0, "x", 5.0)
        registry.record(2.0, "x", 7.0)
        assert registry.latest("x") == 7.0

    def test_latest_default(self):
        assert MetricsRegistry().latest("missing", default=-1.0) == -1.0

    def test_labels_create_separate_series(self):
        registry = MetricsRegistry()
        registry.record(1.0, "demand", 5.0, label="s1")
        registry.record(1.0, "demand", 9.0, label="s2")
        assert registry.latest("demand", label="s1") == 5.0
        assert registry.latest("demand", label="s2") == 9.0

    def test_labels_of(self):
        registry = MetricsRegistry()
        registry.record(1.0, "demand", 5.0, label="s1")
        registry.record(1.0, "demand", 9.0, label="s2")
        registry.record(1.0, "other", 1.0)
        assert sorted(registry.labels_of("demand")) == ["s1", "s2"]

    def test_key_format(self):
        assert MetricsRegistry.key("m", "l") == "m{l}"
        assert MetricsRegistry.key("m") == "m"

    def test_has(self):
        registry = MetricsRegistry()
        assert not registry.has("x")
        registry.record(0.0, "x", 1.0)
        assert registry.has("x")

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.record(1.0, "a", 2.0)
        assert registry.snapshot() == {"a": (1.0, 2.0)}

    def test_retention_applied(self):
        registry = MetricsRegistry(max_points_per_series=2)
        for i in range(5):
            registry.record(float(i), "x", float(i))
        assert len(registry.series("x")) == 2


class TestCollector:
    def test_collect_domains_records_gauges(self, testbed):
        registry = MetricsRegistry()
        collector = TelemetryCollector(
            registry,
            ran=testbed.ran,
            transport=testbed.transport,
            cloud=testbed.cloud,
        )
        snapshots = collector.collect_domains(10.0)
        assert set(snapshots) == {"ran", "transport", "cloud"}
        assert registry.has("ran.effective_utilization")
        assert registry.has("transport.nominal_utilization")
        assert registry.has("cloud.vcpu_utilization")
        assert collector.epochs_collected == 1

    def test_partial_controllers(self, testbed):
        registry = MetricsRegistry()
        collector = TelemetryCollector(registry, ran=testbed.ran)
        snapshots = collector.collect_domains(0.0)
        assert set(snapshots) == {"ran"}

    def test_record_slice_epoch(self):
        registry = MetricsRegistry()
        collector = TelemetryCollector(registry)
        collector.record_slice_epoch(5.0, "s1", demand_mbps=10.0, delivered_mbps=8.0, violated=True)
        assert registry.latest("slice.demand_mbps", label="s1") == 10.0
        assert registry.latest("slice.violated", label="s1") == 1.0
        history = collector.demand_history("s1")
        assert len(history) == 1
