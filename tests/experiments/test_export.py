"""Tests for result export helpers."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.experiments.export import (
    ExportError,
    RESULT_FIELDS,
    results_to_csv,
    results_to_json,
    sparkline,
)
from repro.experiments.runner import ScenarioResult


def fake_result(net=100.0):
    return ScenarioResult(
        requests=10,
        admitted=7,
        rejected=3,
        acceptance_ratio=0.7,
        gross_revenue=120.0,
        total_penalties=20.0,
        net_revenue=net,
        rejected_revenue=30.0,
        violation_rate=0.05,
        mean_multiplexing_gain=1.3,
        peak_multiplexing_gain=1.6,
        events_processed=500,
        final_active_slices=4,
    )


class TestCsv:
    def test_round_trip(self):
        text = results_to_csv([fake_result(), fake_result(net=50.0)])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert float(rows[0]["net_revenue"]) == 100.0
        assert float(rows[1]["net_revenue"]) == 50.0
        assert set(rows[0]) == set(RESULT_FIELDS)

    def test_labels_column(self):
        text = results_to_csv([fake_result()], labels=["factor=1.5"])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["label"] == "factor=1.5"

    def test_label_mismatch_rejected(self):
        with pytest.raises(ExportError):
            results_to_csv([fake_result()], labels=["a", "b"])

    def test_empty_results(self):
        text = results_to_csv([])
        assert text.strip().split(",")[0] == RESULT_FIELDS[0]


class TestJson:
    def test_round_trip(self):
        payload = json.loads(results_to_json([fake_result()], labels=["x"]))
        assert payload[0]["label"] == "x"
        assert payload[0]["admitted"] == 7

    def test_label_mismatch_rejected(self):
        with pytest.raises(ExportError):
            results_to_json([fake_result()], labels=[])


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 5

    def test_flat_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_resampled_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_empty(self):
        assert sparkline([]) == ""

    def test_bad_width_rejected(self):
        with pytest.raises(ExportError):
            sparkline([1.0], width=0)
