"""Tests for the scenario runner."""

from __future__ import annotations

import pytest

from repro.core.admission import KnapsackPolicy
from repro.core.overbooking import FixedOverbooking, NoOverbooking
from repro.experiments.runner import ScenarioConfig, run_scenario


def quick_config(**overrides):
    defaults = dict(
        horizon_s=1_800.0,
        arrival_rate_per_s=1 / 120.0,
        seed=11,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def test_runner_produces_consistent_counts():
    result = run_scenario(quick_config())
    assert result.requests == result.admitted + result.rejected
    assert 0.0 <= result.acceptance_ratio <= 1.0
    assert result.net_revenue == pytest.approx(
        result.gross_revenue - result.total_penalties
    )
    assert result.events_processed > 0


def test_deterministic_given_seed():
    a = run_scenario(quick_config())
    b = run_scenario(quick_config())
    assert a.row() == b.row()


def test_seed_changes_outcome():
    a = run_scenario(quick_config(seed=1))
    b = run_scenario(quick_config(seed=2))
    assert a.row() != b.row()


def test_overbooking_raises_gain():
    base = run_scenario(quick_config(overbooking=NoOverbooking()))
    overbooked = run_scenario(quick_config(overbooking=FixedOverbooking(1.8)))
    assert overbooked.peak_multiplexing_gain >= base.peak_multiplexing_gain


def test_row_keys_stable():
    result = run_scenario(quick_config())
    assert set(result.row()) == {
        "requests",
        "admitted",
        "acceptance",
        "gross",
        "penalties",
        "net",
        "viol_rate",
        "gain_mean",
        "gain_peak",
    }


def test_policies_pluggable():
    result = run_scenario(quick_config(admission=KnapsackPolicy()))
    assert result.requests > 0
