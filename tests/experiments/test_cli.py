"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_defaults(self):
        args = build_parser().parse_args(["scenario"])
        assert args.hours == 2.0
        assert args.admission == "fcfs"

    def test_overbooking_specs(self):
        from repro.core.overbooking import (
            AdaptiveOverbooking,
            FixedOverbooking,
            NoOverbooking,
        )

        parse = lambda spec: build_parser().parse_args(
            ["scenario", "--overbooking", spec]
        ).overbooking
        assert isinstance(parse("none"), NoOverbooking)
        fixed = parse("fixed:2.0")
        assert isinstance(fixed, FixedOverbooking) and fixed.factor == 2.0
        adaptive = parse("adaptive:0.1")
        assert isinstance(adaptive, AdaptiveOverbooking)
        assert adaptive.violation_budget == 0.1

    def test_bad_overbooking_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "--overbooking", "magic"])

    def test_mix_spec(self):
        args = build_parser().parse_args(["scenario", "--mix", "urllc"])
        assert args.mix is not None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "--mix", "quantum"])


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("D1", "D5", "D10"):
            assert experiment_id in out

    def test_scenario_table(self, capsys):
        code = main(
            ["scenario", "--hours", "0.5", "--interarrival", "300", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "requests" in out and "net" in out

    def test_scenario_json(self, capsys):
        code = main(
            [
                "scenario",
                "--hours",
                "0.5",
                "--interarrival",
                "300",
                "--seed",
                "1",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "net" in payload and "requests" in payload

    def test_scenario_with_policies(self, capsys):
        code = main(
            [
                "scenario",
                "--hours",
                "0.5",
                "--admission",
                "knapsack",
                "--overbooking",
                "fixed:1.5",
                "--mix",
                "embb",
                "--json",
            ]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["requests"] >= 0

    def test_sweep_table(self, capsys):
        code = main(["sweep", "--hours", "0.5", "--factors", "1.0", "2.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "factor" in out
        assert out.count("\n") >= 3  # header + rule + 2 rows

    def test_demo_renders_dashboard(self, capsys):
        code = main(["demo", "--hours", "0.5", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "multiplexing gain" in out
        assert "--- Slices ---" in out
