"""Tests for the canonical testbed builder."""

from __future__ import annotations


from repro.cloud.datacenter import DatacenterTier
from repro.experiments.testbed import TestbedConfig, build_testbed


def test_default_layout(testbed):
    assert len(testbed.enbs) == 2
    assert testbed.ran.free_prbs() == {"enb1": 100, "enb2": 100}
    tiers = {dc.tier for dc in testbed.cloud.datacenters()}
    assert tiers == {DatacenterTier.EDGE, DatacenterTier.CORE}


def test_parallel_wireless_links(testbed):
    links = testbed.transport.topology.out_links("enb1-agg")
    kinds = sorted(l.kind.value for l in links)
    assert kinds == ["microwave", "mmwave"]


def test_core_is_farther_than_edge(testbed):
    from repro.transport.paths import PathRequest, constrained_shortest_path

    edge = constrained_shortest_path(
        testbed.transport.topology,
        PathRequest("enb1-agg", "edge-dc-gw", min_bandwidth_mbps=1, max_delay_ms=100),
    )
    core = constrained_shortest_path(
        testbed.transport.topology,
        PathRequest("enb1-agg", "core-dc-gw", min_bandwidth_mbps=1, max_delay_ms=100),
    )
    assert core.delay_ms > edge.delay_ms


def test_core_has_more_compute(testbed):
    edge = testbed.cloud.datacenter("edge-dc")
    core = testbed.cloud.datacenter("core-dc")
    assert core.total_vcpus > edge.total_vcpus


def test_scaled_config():
    testbed = build_testbed(TestbedConfig(n_enbs=4, plmn_pool_size=24))
    assert len(testbed.enbs) == 4
    assert testbed.plmn_pool.capacity == 24
    # Every eNB has both wireless uplinks.
    for enb in testbed.enbs:
        assert len(testbed.transport.topology.out_links(enb.transport_node)) == 2


def test_switch_registered(testbed):
    assert testbed.transport.switch("of-switch") is testbed.switch
