"""Tests for multi-seed replication statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import ScenarioConfig
from repro.experiments.stats import (
    StatsError,
    replicate,
    summaries_table,
    summarize,
)


class TestSummarize:
    def test_mean_and_interval(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 2.0, 50)
        summary = summarize("x", sample)
        assert summary.mean == pytest.approx(10.0, abs=1.0)
        assert summary.ci_low < summary.mean < summary.ci_high
        assert summary.n == 50

    def test_single_value_degenerate_interval(self):
        summary = summarize("x", [5.0])
        assert summary.mean == summary.ci_low == summary.ci_high == 5.0
        assert summary.ci_half_width == 0.0

    def test_constant_sample_zero_width(self):
        summary = summarize("x", [3.0] * 10)
        assert summary.ci_half_width == 0.0
        assert summary.std == 0.0

    def test_higher_confidence_wider_interval(self):
        sample = list(np.random.default_rng(1).normal(0, 1, 30))
        narrow = summarize("x", sample, confidence=0.8)
        wide = summarize("x", sample, confidence=0.99)
        assert wide.ci_half_width > narrow.ci_half_width

    def test_coverage_calibration(self):
        """~95% of 95% CIs should contain the true mean."""
        rng = np.random.default_rng(2)
        hits = 0
        trials = 200
        for _ in range(trials):
            sample = rng.normal(7.0, 3.0, 15)
            summary = summarize("x", sample, confidence=0.95)
            if summary.ci_low <= 7.0 <= summary.ci_high:
                hits += 1
        assert hits / trials > 0.88

    def test_empty_sample_rejected(self):
        with pytest.raises(StatsError):
            summarize("x", [])

    def test_bad_confidence_rejected(self):
        with pytest.raises(StatsError):
            summarize("x", [1.0], confidence=1.0)


class TestReplicate:
    def test_replication_over_seeds(self):
        summaries = replicate(
            lambda seed: ScenarioConfig(
                horizon_s=1_200.0, arrival_rate_per_s=1 / 120.0, seed=seed
            ),
            seeds=[0, 1, 2],
        )
        assert "net" in summaries and "acceptance" in summaries
        assert summaries["net"].n == 3
        assert summaries["acceptance"].ci_low <= summaries["acceptance"].mean

    def test_empty_seeds_rejected(self):
        with pytest.raises(StatsError):
            replicate(lambda seed: ScenarioConfig(), seeds=[])

    def test_table_rendering(self):
        summaries = replicate(
            lambda seed: ScenarioConfig(
                horizon_s=600.0, arrival_rate_per_s=1 / 120.0, seed=seed
            ),
            seeds=[0, 1],
        )
        table = summaries_table(summaries)
        assert "metric" in table and "ci_low" in table
