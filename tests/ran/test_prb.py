"""Tests for PRB grid accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ran.prb import PrbError, PrbGrid, prbs_for_bandwidth


class TestGridTable:
    @pytest.mark.parametrize(
        "mhz,prbs", [(1.4, 6), (3.0, 15), (5.0, 25), (10.0, 50), (15.0, 75), (20.0, 100)]
    )
    def test_standard_bandwidths(self, mhz, prbs):
        assert prbs_for_bandwidth(mhz) == prbs

    def test_nonstandard_rejected(self):
        with pytest.raises(PrbError):
            prbs_for_bandwidth(7.0)


class TestReservations:
    def test_reserve_and_query(self):
        grid = PrbGrid(10.0)
        grid.reserve("s1", nominal=20, effective=15)
        assert grid.effective_reserved == 15
        assert grid.nominal_reserved == 20
        assert grid.free_prbs == 35
        assert grid.has("s1")

    def test_duplicate_rejected(self):
        grid = PrbGrid(10.0)
        grid.reserve("s1", 10, 10)
        with pytest.raises(PrbError):
            grid.reserve("s1", 5, 5)

    def test_effective_cannot_exceed_budget(self):
        grid = PrbGrid(10.0)  # 50 PRBs
        grid.reserve("s1", 40, 40)
        with pytest.raises(PrbError):
            grid.reserve("s2", 20, 20)
        # But nominal overbooking is fine as long as effective fits.
        grid.reserve("s2", 20, 10)
        assert grid.overbooking_ratio == pytest.approx(60 / 50)

    def test_effective_cannot_exceed_nominal(self):
        grid = PrbGrid(10.0)
        with pytest.raises(PrbError):
            grid.reserve("s1", nominal=10, effective=11)

    def test_zero_prbs_rejected(self):
        grid = PrbGrid(10.0)
        with pytest.raises(PrbError):
            grid.reserve("s1", 0, 0)

    def test_release(self):
        grid = PrbGrid(10.0)
        grid.reserve("s1", 20, 20)
        grid.release("s1")
        assert grid.free_prbs == 50
        assert not grid.has("s1")

    def test_release_unknown_rejected(self):
        with pytest.raises(PrbError):
            PrbGrid(10.0).release("ghost")

    def test_reservation_lookup(self):
        grid = PrbGrid(10.0)
        grid.reserve("s1", 20, 15)
        r = grid.reservation("s1")
        assert (r.nominal, r.effective) == (20, 15)
        with pytest.raises(PrbError):
            grid.reservation("ghost")


class TestResize:
    def test_resize_down_then_up(self):
        grid = PrbGrid(10.0)
        grid.reserve("s1", 30, 30)
        grid.resize("s1", 10)
        assert grid.effective_reserved == 10
        grid.resize("s1", 30)
        assert grid.effective_reserved == 30

    def test_resize_above_nominal_rejected(self):
        grid = PrbGrid(10.0)
        grid.reserve("s1", 30, 20)
        with pytest.raises(PrbError):
            grid.resize("s1", 31)

    def test_resize_that_does_not_fit_rejected(self):
        grid = PrbGrid(10.0)
        grid.reserve("s1", 40, 20)
        grid.reserve("s2", 30, 30)
        with pytest.raises(PrbError):
            grid.resize("s1", 25)

    def test_resize_unknown_rejected(self):
        with pytest.raises(PrbError):
            PrbGrid(10.0).resize("ghost", 5)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["reserve", "release", "resize"]),
            st.integers(min_value=0, max_value=7),  # slice index
            st.integers(min_value=1, max_value=60),  # nominal
            st.integers(min_value=1, max_value=60),  # effective
        ),
        max_size=40,
    )
)
def test_property_effective_never_exceeds_budget(ops):
    """Whatever legal/illegal op sequence we throw at the grid, the
    physical-budget invariant holds after every step."""
    grid = PrbGrid(10.0)
    for op, idx, nominal, effective in ops:
        slice_id = f"s{idx}"
        try:
            if op == "reserve":
                grid.reserve(slice_id, nominal, min(effective, nominal))
            elif op == "release":
                grid.release(slice_id)
            else:
                grid.resize(slice_id, effective)
        except PrbError:
            pass
        grid.check_invariants()
        assert grid.effective_reserved + grid.free_prbs == grid.total_prbs
