"""Tests for the UE model."""

from __future__ import annotations

import pytest

from repro.core.slices import PLMN
from repro.ran.ue import AttachState, UeError, UserEquipment


@pytest.fixture
def ue():
    return UserEquipment(PLMN("001", "01"), "s1")


def test_imsi_derived_from_plmn(ue):
    assert ue.imsi.startswith("00101")
    assert len(ue.imsi) == 15


def test_imsis_unique():
    plmn = PLMN("001", "01")
    a = UserEquipment(plmn, "s1")
    b = UserEquipment(plmn, "s1")
    assert a.imsi != b.imsi


def test_explicit_bad_imsi_rejected():
    with pytest.raises(UeError):
        UserEquipment(PLMN("001", "01"), "s1", imsi="123")


def test_attach_flow(ue):
    ue.start_search()
    assert ue.state is AttachState.SEARCHING
    ue.found_cell("enb1")
    assert ue.state is AttachState.ATTACHING
    ue.attach_complete(0.05)
    assert ue.attached
    assert ue.serving_enb == "enb1"
    assert ue.attach_latency_s == 0.05


def test_cannot_skip_states(ue):
    with pytest.raises(UeError):
        ue.found_cell("enb1")
    with pytest.raises(UeError):
        ue.attach_complete(0.1)


def test_cannot_search_while_attached(ue):
    ue.start_search()
    ue.found_cell("enb1")
    ue.attach_complete(0.1)
    with pytest.raises(UeError):
        ue.start_search()


def test_detach_then_reattach(ue):
    ue.start_search()
    ue.found_cell("enb1")
    ue.attach_complete(0.1)
    ue.detach()
    assert ue.state is AttachState.DETACHED
    assert ue.serving_enb is None
    ue.start_search()
    assert ue.state is AttachState.SEARCHING


def test_negative_attach_latency_rejected(ue):
    ue.start_search()
    ue.found_cell("enb1")
    with pytest.raises(UeError):
        ue.attach_complete(-0.1)


def test_cqi_reports_in_range(ue):
    for _ in range(50):
        assert 0 <= ue.report_cqi(1.0) <= 15
