"""Tests for the eNodeB / MOCN model."""

from __future__ import annotations

import pytest

from repro.core.slices import PLMN
from repro.ran.enb import ENodeB, RanConfigError
from repro.ran.ue import UserEquipment


@pytest.fixture
def enb():
    return ENodeB("enb1", bandwidth_mhz=20.0, max_plmns=3)


def plmn(i: int) -> PLMN:
    return PLMN("001", f"{i:02d}")


class TestDimensioning:
    def test_prbs_for_throughput_ceils(self, enb):
        per_prb = enb.throughput_per_prb()
        assert enb.prbs_for_throughput(per_prb * 3.2) == 4

    def test_minimum_one_prb(self, enb):
        assert enb.prbs_for_throughput(0.001) == 1

    def test_nonpositive_throughput_rejected(self, enb):
        with pytest.raises(RanConfigError):
            enb.prbs_for_throughput(0.0)

    def test_capacity_is_prbs_times_rate(self, enb):
        assert enb.capacity_mbps() == pytest.approx(100 * enb.throughput_per_prb())

    def test_bad_reference_cqi_rejected(self):
        with pytest.raises(RanConfigError):
            ENodeB("x", reference_cqi=0)


class TestMocn:
    def test_install_broadcasts_plmn(self, enb):
        enb.install_slice("s1", plmn(1), nominal_prbs=10, effective_prbs=10)
        assert enb.broadcasts("00101")
        assert enb.installed_slices() == ["s1"]

    def test_plmn_limit_enforced(self, enb):
        for i in range(3):
            enb.install_slice(f"s{i}", plmn(i + 1), 5, 5)
        with pytest.raises(RanConfigError):
            enb.install_slice("s4", plmn(4), 5, 5)

    def test_duplicate_slice_rejected(self, enb):
        enb.install_slice("s1", plmn(1), 5, 5)
        with pytest.raises(RanConfigError):
            enb.install_slice("s1", plmn(2), 5, 5)

    def test_duplicate_plmn_rejected(self, enb):
        enb.install_slice("s1", plmn(1), 5, 5)
        with pytest.raises(RanConfigError):
            enb.install_slice("s2", plmn(1), 5, 5)

    def test_remove_frees_plmn_and_prbs(self, enb):
        enb.install_slice("s1", plmn(1), 10, 10)
        enb.remove_slice("s1")
        assert not enb.broadcasts("00101")
        assert enb.grid.free_prbs == 100

    def test_remove_unknown_rejected(self, enb):
        with pytest.raises(RanConfigError):
            enb.remove_slice("ghost")

    def test_resize_slice(self, enb):
        enb.install_slice("s1", plmn(1), 20, 20)
        enb.resize_slice("s1", 10)
        assert enb.grid.reservation("s1").effective == 10


class TestUes:
    def test_register_requires_installed_slice(self, enb):
        ue = UserEquipment(plmn(1), "s1")
        with pytest.raises(RanConfigError):
            enb.register_ue(ue)

    def test_register_and_count(self, enb):
        enb.install_slice("s1", plmn(1), 5, 5)
        ue = UserEquipment(plmn(1), "s1")
        enb.register_ue(ue)
        assert len(enb.ues_of("s1")) == 1
        assert enb.attached_count("s1") == 0  # not attached yet

    def test_remove_slice_detaches_ues(self, enb):
        enb.install_slice("s1", plmn(1), 5, 5)
        ue = UserEquipment(plmn(1), "s1")
        enb.register_ue(ue)
        ue.start_search()
        ue.found_cell("enb1")
        ue.attach_complete(0.1)
        enb.remove_slice("s1")
        assert not ue.attached


class TestSliceCapacity:
    def test_slice_capacity_uses_effective(self, enb):
        enb.install_slice("s1", plmn(1), nominal_prbs=20, effective_prbs=10)
        assert enb.slice_capacity_mbps("s1") == pytest.approx(
            10 * enb.throughput_per_prb()
        )

    def test_utilization_snapshot(self, enb):
        enb.install_slice("s1", plmn(1), 20, 10)
        snap = enb.utilization()
        assert snap["effective_reserved"] == 10
        assert snap["nominal_reserved"] == 20
        assert snap["plmns"] == ["00101"]
        assert snap["overbooking_ratio"] == pytest.approx(0.2)
