"""Tests for QoS-priority-aware spare-capacity redistribution."""

from __future__ import annotations

import pytest

from repro.core.slices import ServiceType
from repro.ran.scheduler import SchedulerError, SliceAwareScheduler
from tests.conftest import make_request


class TestPriorityDispatch:
    def test_high_priority_takes_pool_first(self):
        """Two overloaded slices, pool of 20: priority 3 gets satisfied
        before priority 1 sees anything."""
        scheduler = SliceAwareScheduler(total_prbs=100)
        grants = scheduler.dispatch(
            demands_prbs={"urllc": 55.0, "embb": 80.0},
            reservations={"urllc": 40, "embb": 40},
            priorities={"urllc": 3, "embb": 1},
        )
        assert grants["urllc"] == pytest.approx(55.0)  # fully met from pool
        assert grants["embb"] == pytest.approx(45.0)  # reservation + leftover

    def test_equal_priority_proportional(self):
        scheduler = SliceAwareScheduler(total_prbs=100)
        grants = scheduler.dispatch(
            demands_prbs={"a": 60.0, "b": 70.0},
            reservations={"a": 40, "b": 40},
            priorities={"a": 2, "b": 2},
        )
        # Pool of 20 split 20:30 between unmet demands of 20 and 30.
        assert grants["a"] == pytest.approx(40 + 20 * 20 / 50)
        assert grants["b"] == pytest.approx(40 + 20 * 30 / 50)

    def test_no_priorities_is_single_level(self):
        scheduler = SliceAwareScheduler(total_prbs=100)
        with_p = scheduler.dispatch(
            {"a": 60.0, "b": 70.0}, {"a": 40, "b": 40}, priorities={"a": 0, "b": 0}
        )
        without_p = scheduler.dispatch({"a": 60.0, "b": 70.0}, {"a": 40, "b": 40})
        assert with_p == without_p

    def test_reservations_still_guaranteed_regardless_of_priority(self):
        """Low priority never loses its own reservation to a high one."""
        scheduler = SliceAwareScheduler(total_prbs=100)
        grants = scheduler.dispatch(
            demands_prbs={"urllc": 200.0, "embb": 50.0},
            reservations={"urllc": 50, "embb": 50},
            priorities={"urllc": 3, "embb": 1},
        )
        assert grants["embb"] == pytest.approx(50.0)
        assert grants["urllc"] == pytest.approx(50.0)

    def test_mismatched_priority_map_rejected(self):
        scheduler = SliceAwareScheduler(total_prbs=100)
        with pytest.raises(SchedulerError):
            scheduler.dispatch({"a": 1.0}, {"a": 10}, priorities={"b": 1})

    def test_grants_still_sound_with_priorities(self):
        scheduler = SliceAwareScheduler(total_prbs=100)
        demands = {"a": 90.0, "b": 90.0, "c": 5.0}
        reservations = {"a": 30, "b": 30, "c": 30}
        grants = scheduler.dispatch(
            demands, reservations, priorities={"a": 2, "b": 1, "c": 3}
        )
        assert sum(grants.values()) <= 100 + 1e-6
        for s in demands:
            assert grants[s] <= demands[s] + 1e-6
            assert grants[s] >= min(demands[s], reservations[s]) - 1e-6


class TestDefaultPriorities:
    def test_urllc_outranks_embb(self):
        urllc = make_request(service_type=ServiceType.URLLC)
        embb = make_request(service_type=ServiceType.EMBB)
        assert urllc.priority > embb.priority

    def test_explicit_priority_respected(self):
        request = make_request(service_type=ServiceType.EMBB)
        assert request.priority == 1
        from repro.core.slices import SLA, SliceRequest

        custom = SliceRequest(
            tenant_id="t",
            service_type=ServiceType.EMBB,
            sla=SLA(throughput_mbps=1, max_latency_ms=10, duration_s=60),
            price=1.0,
            penalty_rate=0.0,
            priority=5,
        )
        assert custom.priority == 5

    def test_negative_priority_rejected(self):
        from repro.core.slices import SLA, SliceError, SliceRequest

        with pytest.raises(SliceError):
            SliceRequest(
                tenant_id="t",
                service_type=ServiceType.EMBB,
                sla=SLA(throughput_mbps=1, max_latency_ms=10, duration_s=60),
                price=1.0,
                penalty_rate=0.0,
                priority=-1,
            )


class TestControllerIntegration:
    def test_priorities_flow_through_serve_epoch(self, testbed):
        from repro.core.slices import PLMN

        controller = testbed.ran
        # Both on enb1, each reserving 30 of 100 PRBs; pool = 40.
        controller.install_slice("hi", PLMN("001", "01"), 14.0, enb_id="enb1")
        controller.install_slice("lo", PLMN("001", "02"), 14.0, enb_id="enb1")
        per_prb = controller.enb("enb1").throughput_per_prb()
        cell_capacity = 100 * per_prb
        # Both demand 60% of the cell: together infeasible.
        demand = cell_capacity * 0.6
        delivered = controller.serve_epoch(
            {"hi": demand, "lo": demand}, priorities={"hi": 3, "lo": 1}
        )
        assert delivered["hi"] > delivered["lo"]
        assert delivered["hi"] == pytest.approx(demand, rel=0.01)
