"""Tests for the RAN domain controller."""

from __future__ import annotations

import pytest

from repro.core.slices import PLMN
from repro.ran.controller import RanController
from repro.ran.enb import ENodeB, RanConfigError


@pytest.fixture
def controller():
    return RanController([ENodeB("enb1"), ENodeB("enb2")])


def plmn(i: int) -> PLMN:
    return PLMN("001", f"{i:02d}")


class TestInventory:
    def test_duplicate_enb_rejected(self, controller):
        with pytest.raises(RanConfigError):
            controller.add_enb(ENodeB("enb1"))

    def test_unknown_enb_rejected(self, controller):
        with pytest.raises(RanConfigError):
            controller.enb("ghost")

    def test_free_prbs_per_cell(self, controller):
        assert controller.free_prbs() == {"enb1": 100, "enb2": 100}


class TestInstall:
    def test_install_picks_emptiest_cell(self, controller):
        a = controller.install_slice("s1", plmn(1), throughput_mbps=20.0)
        b = controller.install_slice("s2", plmn(2), throughput_mbps=20.0)
        assert {a.enb_id, b.enb_id} == {"enb1", "enb2"}

    def test_explicit_target_cell(self, controller):
        allocation = controller.install_slice(
            "s1", plmn(1), throughput_mbps=10.0, enb_id="enb2"
        )
        assert allocation.enb_id == "enb2"
        assert controller.serving_enb_of("s1") == "enb2"

    def test_effective_fraction_applied(self, controller):
        allocation = controller.install_slice(
            "s1", plmn(1), throughput_mbps=20.0, effective_fraction=0.5
        )
        assert allocation.effective_prbs == max(1, round(allocation.nominal_prbs * 0.5))

    def test_no_capacity_anywhere_rejected(self, controller):
        with pytest.raises(RanConfigError):
            controller.install_slice("s1", plmn(1), throughput_mbps=1_000.0)

    def test_duplicate_slice_rejected(self, controller):
        controller.install_slice("s1", plmn(1), 10.0)
        with pytest.raises(RanConfigError):
            controller.install_slice("s1", plmn(2), 10.0)

    def test_plmn_slots_bound_install(self):
        controller = RanController([ENodeB("enb1", max_plmns=2)])
        controller.install_slice("s1", plmn(1), 1.0)
        controller.install_slice("s2", plmn(2), 1.0)
        with pytest.raises(RanConfigError):
            controller.install_slice("s3", plmn(3), 1.0)

    def test_bad_fraction_rejected(self, controller):
        with pytest.raises(RanConfigError):
            controller.install_slice("s1", plmn(1), 10.0, effective_fraction=0.0)


class TestLifecycle:
    def test_remove_frees_resources(self, controller):
        controller.install_slice("s1", plmn(1), 20.0)
        controller.remove_slice("s1")
        assert controller.serving_enb_of("s1") is None
        assert controller.free_prbs() == {"enb1": 100, "enb2": 100}

    def test_remove_unknown_rejected(self, controller):
        with pytest.raises(RanConfigError):
            controller.remove_slice("ghost")

    def test_resize(self, controller):
        allocation = controller.install_slice("s1", plmn(1), 20.0)
        controller.resize_slice("s1", allocation.nominal_prbs // 2)
        enb = controller.enb(allocation.enb_id)
        assert enb.grid.reservation("s1").effective == allocation.nominal_prbs // 2

    def test_resize_unknown_rejected(self, controller):
        with pytest.raises(RanConfigError):
            controller.resize_slice("ghost", 5)


class TestServeEpoch:
    def test_delivered_caps_at_demand(self, controller):
        controller.install_slice("s1", plmn(1), 20.0)
        delivered = controller.serve_epoch({"s1": 5.0})
        assert delivered["s1"] == pytest.approx(5.0, rel=0.01)

    def test_two_slices_one_cell_share(self, controller):
        controller.install_slice("s1", plmn(1), 20.0, enb_id="enb1")
        controller.install_slice("s2", plmn(2), 20.0, enb_id="enb1")
        delivered = controller.serve_epoch({"s1": 20.0, "s2": 20.0})
        assert delivered["s1"] == pytest.approx(20.0, rel=0.05)
        assert delivered["s2"] == pytest.approx(20.0, rel=0.05)

    def test_overbooked_cell_shortfall_on_simultaneous_peaks(self, controller):
        """Two slices nominal 30 Mb/s each, shrunk to 50%: simultaneous
        full-rate demand cannot both be served at nominal."""
        controller.install_slice("s1", plmn(1), 30.0, effective_fraction=0.5, enb_id="enb1")
        controller.install_slice("s2", plmn(2), 30.0, effective_fraction=0.5, enb_id="enb1")
        controller.install_slice("s3", plmn(3), 30.0, effective_fraction=0.5, enb_id="enb1")
        delivered = controller.serve_epoch({"s1": 30.0, "s2": 30.0, "s3": 30.0})
        total_capacity = controller.enb("enb1").capacity_mbps()
        assert sum(delivered.values()) <= total_capacity * 1.01
        assert any(d < 30.0 for d in delivered.values())

    def test_empty_epoch(self, controller):
        assert controller.serve_epoch({}) == {}

    def test_utilization_aggregates(self, controller):
        controller.install_slice("s1", plmn(1), 20.0)
        snap = controller.utilization()
        assert snap["domain"] == "ran"
        assert snap["total_prbs"] == 200
        assert snap["effective_reserved"] > 0
