"""Tests for the CQI/MCS channel model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ran.channel import (
    CQI_TABLE,
    ChannelModel,
    cqi_for_snr,
    efficiency_for_cqi,
    throughput_per_prb_mbps,
)


class TestCqiTable:
    def test_sixteen_entries(self):
        assert len(CQI_TABLE) == 16

    def test_efficiency_monotone(self):
        effs = [entry.efficiency for entry in CQI_TABLE]
        assert effs == sorted(effs)

    def test_known_values(self):
        assert efficiency_for_cqi(15) == pytest.approx(5.5547)
        assert efficiency_for_cqi(1) == pytest.approx(0.1523)
        assert efficiency_for_cqi(0) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            efficiency_for_cqi(16)
        with pytest.raises(ValueError):
            efficiency_for_cqi(-1)

    def test_modulation_progression(self):
        assert CQI_TABLE[1].modulation == "QPSK"
        assert CQI_TABLE[7].modulation == "16QAM"
        assert CQI_TABLE[15].modulation == "64QAM"


class TestSnrMapping:
    def test_deep_fade_gives_zero(self):
        assert cqi_for_snr(-20.0) == 0

    def test_high_snr_caps_at_15(self):
        assert cqi_for_snr(40.0) == 15

    def test_monotone_in_snr(self):
        snrs = np.linspace(-10, 30, 50)
        cqis = [cqi_for_snr(s) for s in snrs]
        assert cqis == sorted(cqis)


class TestThroughputPerPrb:
    def test_cqi15_near_peak(self):
        # 5.5547 b/RE × 168 RE/ms × 0.75 ≈ 0.70 Mb/s.
        assert throughput_per_prb_mbps(15) == pytest.approx(0.6999, abs=0.01)

    def test_cqi0_is_zero(self):
        assert throughput_per_prb_mbps(0) == 0.0

    def test_overhead_scales_linearly(self):
        full = throughput_per_prb_mbps(10, overhead=0.0)
        half = throughput_per_prb_mbps(10, overhead=0.5)
        assert half == pytest.approx(full / 2)

    def test_bad_overhead_rejected(self):
        with pytest.raises(ValueError):
            throughput_per_prb_mbps(10, overhead=1.0)

    def test_cell_capacity_sanity(self):
        """100 PRBs at CQI 15 ≈ 70 Mb/s — the right order for 20 MHz SISO."""
        assert 60 < 100 * throughput_per_prb_mbps(15) < 80


class TestChannelModel:
    def test_reverts_to_mean(self):
        rng = np.random.default_rng(0)
        model = ChannelModel(mean_snr_db=12.0, volatility_db=2.0, rng=rng)
        samples = [model.advance(1.0) for _ in range(500)]
        mean_cqi = np.mean(samples[100:])
        assert abs(mean_cqi - cqi_for_snr(12.0)) < 2.0

    def test_expected_cqi(self):
        model = ChannelModel(mean_snr_db=12.0)
        assert model.expected_cqi() == cqi_for_snr(12.0)

    def test_zero_volatility_is_constant(self):
        model = ChannelModel(mean_snr_db=10.0, volatility_db=0.0)
        cqis = {model.advance(1.0) for _ in range(10)}
        assert cqis == {cqi_for_snr(10.0)}

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            ChannelModel().advance(0.0)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            ChannelModel(volatility_db=-1.0)
        with pytest.raises(ValueError):
            ChannelModel(reversion_rate=0.0)

    def test_deterministic_given_rng(self):
        a = ChannelModel(rng=np.random.default_rng(5))
        b = ChannelModel(rng=np.random.default_rng(5))
        assert [a.advance() for _ in range(20)] == [b.advance() for _ in range(20)]
