"""Tests for the MAC schedulers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.slices import PLMN
from repro.ran.channel import ChannelModel
from repro.ran.scheduler import (
    ProportionalFairScheduler,
    RoundRobinScheduler,
    SchedulerError,
    SliceAwareScheduler,
)
from repro.ran.ue import UserEquipment


def make_ues(n: int, mean_snr: float = 15.0, attach: bool = True):
    plmn = PLMN("001", "01")
    ues = []
    for i in range(n):
        channel = ChannelModel(mean_snr_db=mean_snr, volatility_db=0.0)
        ue = UserEquipment(plmn, "s1", channel=channel)
        if attach:
            ue.start_search()
            ue.found_cell("enb1")
            ue.attach_complete(0.1)
        ues.append(ue)
    return ues


class TestRoundRobin:
    def test_equal_shares(self):
        grants = RoundRobinScheduler().allocate(make_ues(4), prbs=20)
        assert len(grants) == 4
        assert all(share == pytest.approx(5.0) for share in grants.values())

    def test_unattached_excluded(self):
        ues = make_ues(2) + make_ues(2, attach=False)
        grants = RoundRobinScheduler().allocate(ues, prbs=10)
        assert len(grants) == 2

    def test_out_of_coverage_excluded(self):
        good = make_ues(1)
        bad = make_ues(1, mean_snr=-30.0)
        grants = RoundRobinScheduler().allocate(good + bad, prbs=10)
        assert list(grants) == [good[0].imsi]

    def test_empty_inputs(self):
        assert RoundRobinScheduler().allocate([], 10) == {}
        assert RoundRobinScheduler().allocate(make_ues(2), 0) == {}

    def test_negative_budget_rejected(self):
        with pytest.raises(SchedulerError):
            RoundRobinScheduler().allocate(make_ues(1), -1)


class TestProportionalFair:
    def test_shares_sum_to_budget(self):
        grants = ProportionalFairScheduler().allocate(make_ues(5), prbs=30)
        assert sum(grants.values()) == pytest.approx(30.0)

    def test_starved_ue_catches_up(self):
        """A UE that got nothing for a while should receive a larger share."""
        scheduler = ProportionalFairScheduler(ewma_alpha=0.5)
        ues = make_ues(2)
        # Warm up with only the first UE present.
        for _ in range(10):
            scheduler.allocate(ues[:1], prbs=10)
        grants = scheduler.allocate(ues, prbs=10)
        assert grants[ues[1].imsi] >= grants[ues[0].imsi]

    def test_equal_history_equal_grants(self):
        grants = ProportionalFairScheduler().allocate(make_ues(4), prbs=20)
        values = list(grants.values())
        assert max(values) - min(values) < 1e-9

    def test_bad_alpha_rejected(self):
        with pytest.raises(SchedulerError):
            ProportionalFairScheduler(ewma_alpha=0.0)


class TestSliceAware:
    def test_grants_capped_by_demand(self):
        scheduler = SliceAwareScheduler(total_prbs=100)
        grants = scheduler.dispatch(
            demands_prbs={"a": 10.0, "b": 5.0},
            reservations={"a": 40, "b": 40},
        )
        assert grants["a"] == pytest.approx(10.0)
        assert grants["b"] == pytest.approx(5.0)

    def test_unused_reservation_redistributed(self):
        scheduler = SliceAwareScheduler(total_prbs=100)
        grants = scheduler.dispatch(
            demands_prbs={"idle": 5.0, "hot": 90.0},
            reservations={"idle": 50, "hot": 50},
        )
        assert grants["idle"] == pytest.approx(5.0)
        assert grants["hot"] == pytest.approx(90.0)  # borrowed 40 + pool

    def test_overload_leaves_shortfall(self):
        scheduler = SliceAwareScheduler(total_prbs=100)
        grants = scheduler.dispatch(
            demands_prbs={"a": 80.0, "b": 80.0},
            reservations={"a": 50, "b": 50},
        )
        assert sum(grants.values()) == pytest.approx(100.0)
        assert grants["a"] == pytest.approx(80.0 * 100 / 160, abs=20)

    def test_reservation_guarantee(self):
        """A slice demanding exactly its reservation always gets it."""
        scheduler = SliceAwareScheduler(total_prbs=100)
        grants = scheduler.dispatch(
            demands_prbs={"a": 50.0, "b": 999.0},
            reservations={"a": 50, "b": 50},
        )
        assert grants["a"] == pytest.approx(50.0)

    def test_mismatched_maps_rejected(self):
        with pytest.raises(SchedulerError):
            SliceAwareScheduler(100).dispatch({"a": 1.0}, {"b": 1})

    def test_overcommitted_reservations_rejected(self):
        with pytest.raises(SchedulerError):
            SliceAwareScheduler(100).dispatch(
                {"a": 1.0, "b": 1.0}, {"a": 60, "b": 60}
            )

    def test_negative_demand_rejected(self):
        with pytest.raises(SchedulerError):
            SliceAwareScheduler(100).dispatch({"a": -1.0}, {"a": 10})

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=200.0),  # demand
                st.integers(min_value=1, max_value=30),  # reservation
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_property_grants_sound(self, data):
        """Invariants: Σ grants ≤ budget; grant ≤ demand; grant ≥
        min(demand, reservation)."""
        total = 100
        demands = {f"s{i}": d for i, (d, _) in enumerate(data)}
        reservations = {f"s{i}": r for i, (_, r) in enumerate(data)}
        if sum(reservations.values()) > total:
            return  # infeasible input, covered by the rejection test
        grants = SliceAwareScheduler(total).dispatch(demands, reservations)
        assert sum(grants.values()) <= total + 1e-6
        for slice_id, grant in grants.items():
            assert grant <= demands[slice_id] + 1e-6
            assert grant >= min(demands[slice_id], reservations[slice_id]) - 1e-6
