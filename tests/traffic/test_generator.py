"""Tests for vertical presets and the request generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.slices import ServiceType
from repro.sim.engine import Simulator
from repro.traffic.generator import RequestGenerator, RequestMix
from repro.traffic.verticals import VERTICALS, vertical_for


class TestVerticals:
    def test_every_service_type_has_preset(self):
        assert set(VERTICALS) == set(ServiceType)

    def test_sampled_request_within_ranges(self, rng):
        spec = vertical_for(ServiceType.EMBB)
        request = spec.sample_request("t", rng, arrival_time=5.0)
        lo, hi = spec.throughput_range_mbps
        assert lo <= request.sla.throughput_mbps <= hi
        lo, hi = spec.latency_range_ms
        assert lo <= request.sla.max_latency_ms <= hi
        assert request.arrival_time == 5.0
        assert request.price > 0
        assert request.penalty_rate > 0

    def test_urllc_latency_tighter_than_embb(self, rng):
        urllc = vertical_for(ServiceType.URLLC).sample_request("t", rng)
        embb = vertical_for(ServiceType.EMBB).sample_request("t", rng)
        assert urllc.sla.max_latency_ms < embb.sla.max_latency_ms

    def test_profile_peak_matches_request(self, rng):
        spec = vertical_for(ServiceType.EMBB)
        profile = spec.sample_profile(25.0, rng)
        assert profile.peak_mbps == 25.0

    def test_price_scales_with_throughput_and_duration(self, rng):
        spec = vertical_for(ServiceType.EMBB)
        rng1 = np.random.default_rng(0)
        requests = [spec.sample_request("t", rng1) for _ in range(50)]
        # Price per Mb/s-hour should be constant by construction.
        for request in requests:
            hours = request.sla.duration_s / 3_600.0
            implied = request.price / (request.sla.throughput_mbps * hours)
            assert implied == pytest.approx(spec.price_per_mbps_hour)


class TestMix:
    def test_default_mix_covers_all(self, rng):
        mix = RequestMix()
        drawn = {mix.sample_type(rng) for _ in range(500)}
        assert drawn == set(ServiceType)

    def test_single_mix(self, rng):
        mix = RequestMix.single(ServiceType.URLLC)
        assert {mix.sample_type(rng) for _ in range(50)} == {ServiceType.URLLC}

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            RequestMix(weights={})

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            RequestMix(weights={ServiceType.EMBB: 0.0})


class TestGenerator:
    def test_batch_respects_horizon(self, rng):
        generator = RequestGenerator(rng, arrival_rate_per_s=0.1)
        batch = generator.batch(horizon_s=1_000.0)
        assert all(0 <= req.arrival_time < 1_000.0 for req, _ in batch)
        assert generator.generated == len(batch)

    def test_rate_controls_count(self):
        slow = RequestGenerator(np.random.default_rng(1), arrival_rate_per_s=0.01)
        fast = RequestGenerator(np.random.default_rng(1), arrival_rate_per_s=0.1)
        assert len(fast.batch(10_000.0)) > len(slow.batch(10_000.0))

    def test_poisson_count_statistics(self):
        rng = np.random.default_rng(3)
        generator = RequestGenerator(rng, arrival_rate_per_s=0.05)
        n = len(generator.batch(100_000.0))
        assert 4_200 < n < 5_800  # λT = 5000 ± ~6σ

    def test_bad_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            RequestGenerator(rng, arrival_rate_per_s=0.0)

    def test_drive_schedules_on_simulator(self, rng):
        sim = Simulator()
        generator = RequestGenerator(rng, arrival_rate_per_s=0.05)
        received = []
        n = generator.drive(sim, 500.0, lambda req, prof: received.append(req))
        sim.run_until(500.0)
        assert len(received) == n
        arrival_times = [r.arrival_time for r in received]
        assert arrival_times == sorted(arrival_times)

    def test_deterministic_given_seed(self):
        a = RequestGenerator(np.random.default_rng(7), 0.05).batch(1_000.0)
        b = RequestGenerator(np.random.default_rng(7), 0.05).batch(1_000.0)
        assert [r.arrival_time for r, _ in a] == [r.arrival_time for r, _ in b]
        assert [r.sla.throughput_mbps for r, _ in a] == [
            r.sla.throughput_mbps for r, _ in b
        ]

    def test_iter_arrivals_lazy_equivalent(self):
        eager = RequestGenerator(np.random.default_rng(9), 0.05).batch(1_000.0)
        lazy = list(
            RequestGenerator(np.random.default_rng(9), 0.05).iter_arrivals(1_000.0)
        )
        assert [r.arrival_time for r, _ in eager] == [r.arrival_time for r, _ in lazy]
